"""Batched execution with budgets and latency accounting.

:class:`BatchEngine` is the one execution layer every serving surface
goes through:

* documents of a request are scored in **micro-batches** of at most
  ``max_batch_size`` rows (adapters guarantee chunk-invariant scoring,
  so batching never changes a single bit of the output);
* the request is **priced before execution** against the scorer's
  calibrated cost model, and construction fails when the price exceeds
  the latency budget — the paper's design rule enforced at deployment
  time;
* per-request wall latencies are recorded into :class:`ServiceStats`,
  which reports p50/p95/p99 percentiles alongside the running volume
  counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError
from repro.runtime.base import Scorer
from repro.utils.validation import check_array_2d


class BudgetExceededError(ReproError):
    """The model's predicted cost exceeds the service's latency budget."""


@dataclass
class ServiceStats:
    """Running counters and latency percentiles of a scoring service."""

    requests: int = 0
    documents: int = 0
    wall_seconds: float = 0.0
    predicted_us_per_doc: float = field(default=float("nan"))
    _request_seconds: list[float] = field(
        default_factory=list, repr=False, compare=False
    )

    def record(self, n_docs: int, seconds: float) -> None:
        """Account one request of ``n_docs`` documents."""
        self.requests += 1
        self.documents += int(n_docs)
        self.wall_seconds += seconds
        self._request_seconds.append(seconds)

    @property
    def mean_docs_per_request(self) -> float:
        return self.documents / self.requests if self.requests else 0.0

    def latency_percentile_us(self, q: float) -> float:
        """The ``q``-th percentile of per-request wall latency, in µs."""
        if not self._request_seconds:
            return float("nan")
        return float(np.percentile(self._request_seconds, q) * 1e6)

    @property
    def p50_us(self) -> float:
        """Median per-request latency (µs)."""
        return self.latency_percentile_us(50.0)

    @property
    def p95_us(self) -> float:
        """95th-percentile per-request latency (µs)."""
        return self.latency_percentile_us(95.0)

    @property
    def p99_us(self) -> float:
        """99th-percentile per-request latency (µs)."""
        return self.latency_percentile_us(99.0)

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 per-request latency in µs."""
        return {"p50_us": self.p50_us, "p95_us": self.p95_us, "p99_us": self.p99_us}


class BatchEngine:
    """Micro-batched, budget-checked execution of one scorer.

    Parameters
    ----------
    scorer:
        Any :class:`~repro.runtime.base.Scorer` (see ``make_scorer``).
    max_batch_size:
        Largest micro-batch handed to the scorer in one call; ``None``
        disables splitting.  Non-batchable scorers (cascades) always
        receive the request whole.
    budget_us_per_doc:
        Optional per-document budget; construction raises
        :class:`BudgetExceededError` when the scorer's calibrated price
        exceeds it.
    stats:
        Optional pre-existing :class:`ServiceStats` to accumulate into.
    """

    def __init__(
        self,
        scorer: Scorer,
        *,
        max_batch_size: int | None = 256,
        budget_us_per_doc: float | None = None,
        stats: ServiceStats | None = None,
    ) -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        self.scorer = scorer
        self.max_batch_size = max_batch_size
        self.stats = stats or ServiceStats()
        predicted = scorer.predicted_us_per_doc
        self.stats.predicted_us_per_doc = predicted
        if budget_us_per_doc is not None and predicted > budget_us_per_doc:
            raise BudgetExceededError(
                f"model predicted at {predicted:.2f} us/doc exceeds the "
                f"{budget_us_per_doc:.2f} us/doc budget"
            )
        self.budget_us_per_doc = budget_us_per_doc

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score one request, micro-batched, updating the running stats."""
        x = check_array_2d(features, "features")
        start = time.perf_counter()
        scores = self._score_chunked(x)
        self.stats.record(len(x), time.perf_counter() - start)
        return scores

    def _score_chunked(self, x: np.ndarray) -> np.ndarray:
        size = self.max_batch_size
        if (
            size is None
            or len(x) <= size
            or not getattr(self.scorer, "batchable", True)
        ):
            return np.asarray(self.scorer.score(x), dtype=np.float64)
        out = np.empty(len(x), dtype=np.float64)
        for lo in range(0, len(x), size):
            chunk = x[lo : lo + size]
            out[lo : lo + len(chunk)] = self.scorer.score(chunk)
        return out

    # ------------------------------------------------------------------
    def rank(self, features) -> np.ndarray:
        """Document indices in descending score order."""
        return np.argsort(-self.score(features), kind="stable")

    def top_k(self, features, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scored documents.

        Selects the winners with ``argpartition`` (O(n)) and sorts only
        those ``k``, instead of a full argsort per request.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scores = self.score(features)
        if k >= len(scores):
            return np.argsort(-scores, kind="stable")
        winners = np.argpartition(-scores, k - 1)[:k]
        return winners[np.argsort(-scores[winners], kind="stable")]
