"""Batched execution with budgets and latency accounting.

:class:`BatchEngine` is the one execution layer every serving surface
goes through:

* documents of a request are scored in **micro-batches** of at most
  ``max_batch_size`` rows (adapters guarantee chunk-invariant scoring,
  so batching never changes a single bit of the output);
* many concurrent requests can be **coalesced** into one cross-request
  micro-batch (:meth:`BatchEngine.score_coalesced`) — the asyncio
  front-end's path: one GEMM for N users' candidate lists, sliced back
  out bit-identically, with per-request latency accounted
  enqueue→response while drift keeps pricing kernel time;
* the request is **priced before execution** against the scorer's
  calibrated cost model, and construction fails when the price exceeds
  the latency budget — the paper's design rule enforced at deployment
  time;
* per-request wall latencies are recorded into :class:`ServiceStats`,
  which reports p50/p95/p99 percentiles alongside the running volume
  counters, at **bounded memory**: latencies feed a fixed-capacity
  :class:`~repro.obs.metrics.StreamingHistogram` (exact percentiles up
  to the reservoir capacity, unbiased estimates beyond), so a
  long-lived service never grows with request count;
* every executed request also feeds the per-backend
  predicted-vs-measured **drift** series (:mod:`repro.obs.drift`) and,
  when the process-wide tracer is enabled, an ``engine.score`` span.
"""

from __future__ import annotations

import contextlib
import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import ReproError
from repro.obs.metrics import StreamingHistogram
from repro.obs.requests import activate_batch
from repro.runtime.base import Scorer, pinned_scope
from repro.utils.validation import check_array_2d

#: Reservoir size of the per-service latency histogram.  Percentiles are
#: exact up to this many requests and sampled estimates beyond.
LATENCY_RESERVOIR_CAPACITY = 4096


class BudgetExceededError(ReproError):
    """The model's predicted cost exceeds the service's latency budget."""


@dataclass
class ServiceStats:
    """Running counters and latency percentiles of a scoring service.

    Memory is bounded regardless of traffic: per-request latencies live
    in a fixed-capacity streaming histogram, not an ever-growing list.

    Two time axes are kept apart. ``wall_seconds`` accumulates *scorer
    execution* time and is the denominator of ``measured_us_per_doc`` /
    ``drift_pct`` — the deployment audit of the calibrated kernel price.
    The latency percentiles instead cover whatever ``record`` was handed
    as ``seconds``: for the synchronous engine that *is* kernel wall
    time, but the coalescing path passes enqueue→response wall time (and
    the kernel share separately via ``kernel_seconds``), so a queued
    request's percentile reflects what the client actually waited while
    the drift series keeps pricing kernels only.  ``queued_seconds``
    holds the accumulated difference.

    Thread-safe: ``record`` may be called concurrently from the asyncio
    event loop's executor and :class:`~repro.runtime.parallel.
    ShardedScorer` pool threads — counter updates happen under one lock
    (the histogram has its own).
    """

    requests: int = 0
    documents: int = 0
    wall_seconds: float = 0.0
    queued_seconds: float = 0.0
    predicted_us_per_doc: float = field(default=float("nan"))
    _latency_us: StreamingHistogram = field(
        default_factory=lambda: StreamingHistogram(
            capacity=LATENCY_RESERVOIR_CAPACITY
        ),
        repr=False,
        compare=False,
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(
        self,
        n_docs: int,
        seconds: float,
        *,
        kernel_seconds: float | None = None,
    ) -> None:
        """Account one request of ``n_docs`` documents.

        ``seconds`` feeds the latency percentiles; ``kernel_seconds``
        (defaulting to ``seconds``) feeds the measured-cost/drift
        accumulators.  A coalesced request passes its enqueue→response
        wall time as ``seconds`` and its share of the batch's kernel
        time as ``kernel_seconds``.
        """
        n = int(n_docs)
        if n < 1:
            raise ReproError(
                f"a request must contain at least one document, got {n_docs}"
            )
        if not math.isfinite(seconds) or seconds < 0:
            raise ReproError(
                f"request wall time must be finite and >= 0 seconds, "
                f"got {seconds}"
            )
        if kernel_seconds is None:
            kernel_seconds = seconds
        elif not math.isfinite(kernel_seconds) or kernel_seconds < 0:
            raise ReproError(
                f"kernel time must be finite and >= 0 seconds, "
                f"got {kernel_seconds}"
            )
        with self._lock:
            self.requests += 1
            self.documents += n
            self.wall_seconds += kernel_seconds
            self.queued_seconds += max(seconds - kernel_seconds, 0.0)
        self._latency_us.add(seconds * 1e6)

    @property
    def mean_docs_per_request(self) -> float:
        return self.documents / self.requests if self.requests else 0.0

    @property
    def measured_us_per_doc(self) -> float:
        """Running measured unit cost over all recorded traffic."""
        if not self.documents:
            return float("nan")
        return self.wall_seconds * 1e6 / self.documents

    @property
    def drift_pct(self) -> float:
        """Measured vs predicted unit cost, as a signed percentage.

        Positive when the model serves *slower* than the calibrated
        price said it would; ``nan`` until traffic arrives or when the
        scorer has no finite price.
        """
        predicted = self.predicted_us_per_doc
        measured = self.measured_us_per_doc
        if not (math.isfinite(predicted) and predicted > 0):
            return float("nan")
        if not math.isfinite(measured):
            return float("nan")
        return (measured - predicted) / predicted * 100.0

    def latency_percentile_us(self, q: float) -> float:
        """The ``q``-th percentile of per-request wall latency, in µs."""
        if not 0.0 <= q <= 100.0:
            raise ReproError(
                f"latency percentile q must be in [0, 100], got {q}"
            )
        if not self.requests:
            return float("nan")
        return self._latency_us.percentile(q)

    @property
    def p50_us(self) -> float:
        """Median per-request latency (µs)."""
        return self.latency_percentile_us(50.0)

    @property
    def p95_us(self) -> float:
        """95th-percentile per-request latency (µs)."""
        return self.latency_percentile_us(95.0)

    @property
    def p99_us(self) -> float:
        """99th-percentile per-request latency (µs)."""
        return self.latency_percentile_us(99.0)

    def latency_summary(self) -> dict[str, float]:
        """p50/p95/p99 per-request latency in µs."""
        return {"p50_us": self.p50_us, "p95_us": self.p95_us, "p99_us": self.p99_us}

    def drift_summary(self) -> dict[str, float]:
        """Predicted vs measured unit cost, the deployment-time audit."""
        return {
            "predicted_us_per_doc": self.predicted_us_per_doc,
            "measured_us_per_doc": self.measured_us_per_doc,
            "drift_pct": self.drift_pct,
        }


class BatchEngine:
    """Micro-batched, budget-checked execution of one scorer.

    Parameters
    ----------
    scorer:
        Any :class:`~repro.runtime.base.Scorer` (see ``make_scorer``).
    max_batch_size:
        Largest micro-batch handed to the scorer in one call; ``None``
        disables splitting.  Non-batchable scorers (cascades) always
        receive the request whole.
    budget_us_per_doc:
        Optional per-document budget; construction raises
        :class:`BudgetExceededError` when the scorer's calibrated price
        exceeds it.  A budget must be finite and positive, and a scorer
        whose price is *non-finite* (NaN/inf) also fails admission —
        ``nan > budget`` is ``False``, so without this check an unpriced
        model would silently slip past the paper's design rule.
    allow_unpriced:
        Explicitly admit a scorer with a non-finite price under a
        budget (the budget then only documents intent; it cannot be
        checked).
    stats:
        Optional pre-existing :class:`ServiceStats` to accumulate into.
    parallel:
        Optional :class:`~repro.runtime.parallel.ParallelConfig`; when
        given, the scorer is wrapped in a :class:`~repro.runtime.
        parallel.ShardedScorer` so each (micro-)batch is scored on a
        worker pool — bit-identically to the unwrapped scorer.  Pair
        with ``max_batch_size=None`` to hand the sharder whole requests.
    """

    def __init__(
        self,
        scorer: Scorer,
        *,
        max_batch_size: int | None = 256,
        budget_us_per_doc: float | None = None,
        allow_unpriced: bool = False,
        stats: ServiceStats | None = None,
        parallel=None,
    ) -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if parallel is not None:
            from repro.runtime.parallel import ShardedScorer

            if not isinstance(scorer, ShardedScorer):
                scorer = ShardedScorer(scorer, parallel)
        self.scorer = scorer
        self.max_batch_size = max_batch_size
        self.stats = stats or ServiceStats()
        predicted = scorer.predicted_us_per_doc
        self.stats.predicted_us_per_doc = predicted
        if budget_us_per_doc is not None:
            if not math.isfinite(budget_us_per_doc) or budget_us_per_doc <= 0:
                raise ValueError(
                    f"budget_us_per_doc must be finite and > 0, "
                    f"got {budget_us_per_doc}"
                )
            if not math.isfinite(predicted):
                if not allow_unpriced:
                    raise BudgetExceededError(
                        f"scorer {scorer.backend!r} has a non-finite "
                        f"predicted cost ({predicted}) and cannot pass the "
                        f"{budget_us_per_doc:.2f} us/doc budget check; pass "
                        "allow_unpriced=True to admit it explicitly"
                    )
            elif predicted > budget_us_per_doc:
                raise BudgetExceededError(
                    f"model predicted at {predicted:.2f} us/doc exceeds the "
                    f"{budget_us_per_doc:.2f} us/doc budget"
                )
        self.budget_us_per_doc = budget_us_per_doc
        self.allow_unpriced = allow_unpriced

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score one request, micro-batched, updating the running stats.

        Beyond the per-engine :class:`ServiceStats`, every request feeds
        the process-wide per-backend drift series (predicted vs measured
        µs/doc — see :mod:`repro.obs.drift`) and, when tracing is
        enabled, opens an ``engine.score`` span.

        Zero-document requests are legal no-ops: they return an empty
        score array without touching the stats, drift series or tracer
        (:class:`ServiceStats` correctly rejects ``n_docs < 1``).
        """
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 2 and x.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        x = check_array_2d(x, "features")
        with obs.span("engine.score", backend=self.scorer.backend) as sp:
            start = time.perf_counter()
            with pinned_scope(1):
                scores = self._score_chunked(x)
            elapsed = time.perf_counter() - start
            sp.set(docs=len(x), us=round(elapsed * 1e6, 1))
        self.stats.record(len(x), elapsed)
        obs.record_request(
            backend=self.scorer.backend,
            n_docs=len(x),
            seconds=elapsed,
            predicted_us_per_doc=self.stats.predicted_us_per_doc,
        )
        return scores

    def score_coalesced(
        self,
        requests,
        *,
        enqueue_times=None,
        clock=time.perf_counter,
        request_contexts=None,
    ) -> list[np.ndarray]:
        """Score several requests as **one cross-request micro-batch**.

        The asyncio front-end's execution path: many concurrent users'
        small candidate lists are concatenated row-wise, pushed through
        the scorer in one go (one GEMM instead of N), and sliced back
        out per request.  For chunk-invariant scorers — ``stable=True``
        compiled plans, the einsum network adapters, row-independent
        QuickScorer traversal — the slices are **bit-identical** to
        scoring each request alone.  Non-batchable scorers (cascades
        rank within a request) are scored request-by-request instead;
        the accounting below is identical either way.

        Accounting: each request's latency percentile entry is its
        **enqueue→response wall time** (``clock()`` at completion minus
        its entry in ``enqueue_times``, which must be timestamps on the
        same clock), while the drift/measured-cost series receive only
        the request's *share of kernel time* — queue wait must show up
        in p99, but it is not evidence against the calibrated kernel
        price, and admission keeps judging the priced kernel µs.
        Without ``enqueue_times`` both axes fall back to kernel time.

        Zero-document requests yield empty score arrays and touch no
        stats.  Returns one float64 score vector per request, in order.

        ``request_contexts`` (optional, one
        :class:`~repro.obs.requests.RequestContext` or ``None`` per
        request) is the request-tracing hook: the engine stamps each
        context's ``coalesce`` (executor handoff + concatenation) and
        ``kernel`` stages with ``clock``, and binds the live contexts
        into the calling thread's context
        (:func:`~repro.obs.requests.activate_batch`) for the duration
        of the kernel so deeper layers — sharded scorer, compiled plans
        — can annotate them without parameter threading.  Scores are
        unaffected.
        """
        items: list[np.ndarray] = []
        sizes: list[int] = []
        for index, features in enumerate(requests):
            x = np.asarray(features, dtype=np.float64)
            if not (x.ndim == 2 and x.shape[0] == 0):
                x = check_array_2d(x, f"requests[{index}]")
            items.append(x)
            sizes.append(len(x))
        if enqueue_times is not None and len(enqueue_times) != len(items):
            raise ReproError(
                f"got {len(enqueue_times)} enqueue times for "
                f"{len(items)} requests"
            )
        if request_contexts is not None and len(request_contexts) != len(items):
            raise ReproError(
                f"got {len(request_contexts)} request contexts for "
                f"{len(items)} requests"
            )
        total = sum(sizes)
        if total == 0:
            return [np.zeros(0, dtype=np.float64) for _ in items]
        live: list[np.ndarray] = []
        live_ctx_list: list = []
        for index, x in enumerate(items):
            if not len(x):
                continue
            live.append(x)
            live_ctx_list.append(
                request_contexts[index]
                if request_contexts is not None
                else None
            )
        live_contexts = tuple(c for c in live_ctx_list if c is not None)
        with obs.span(
            "engine.coalesced",
            backend=self.scorer.backend,
            requests=len(items),
        ) as sp:
            start = clock()
            for ctx in live_contexts:
                # Coalesce covers drain→kernel-start: the executor
                # handoff plus batch assembly, anchored to the previous
                # stage so the timeline stays gap-free.
                ctx.stage(
                    "coalesce",
                    ctx.last_stage_end(start),
                    start,
                    requests=len(items),
                )
            ctx_scope = (
                activate_batch(live_contexts)
                if live_contexts
                else contextlib.nullcontext()
            )
            with ctx_scope, pinned_scope(len(live)):
                if getattr(self.scorer, "batchable", True):
                    stacked = (
                        live[0] if len(live) == 1 else np.concatenate(live)
                    )
                    flat = self._score_chunked(stacked)
                else:
                    # Non-batchable scorers run request-by-request, so
                    # narrow the live-context binding to each request's
                    # own: a cascade's stage spans and annotations must
                    # land on the request being scored, not the whole
                    # coalesced batch.
                    parts = []
                    for x, ctx in zip(live, live_ctx_list):
                        scope = (
                            activate_batch((ctx,))
                            if ctx is not None
                            else contextlib.nullcontext()
                        )
                        with scope:
                            parts.append(
                                np.asarray(
                                    self.scorer.score(x), dtype=np.float64
                                )
                            )
                    flat = np.concatenate(parts)
            end = clock()
            kernel = max(end - start, 0.0)
            sp.set(docs=total, us=round(kernel * 1e6, 1))
        out: list[np.ndarray] = []
        offset = 0
        for index, n in enumerate(sizes):
            if n == 0:
                out.append(np.zeros(0, dtype=np.float64))
                continue
            out.append(flat[offset : offset + n])
            offset += n
            kernel_share = kernel * (n / total)
            if request_contexts is not None:
                ctx = request_contexts[index]
                if ctx is not None:
                    ctx.stage(
                        "kernel",
                        start,
                        end,
                        share_us=round(kernel_share * 1e6, 3),
                        batch_docs=total,
                        backend=self.scorer.backend,
                    )
            if enqueue_times is None:
                seconds = kernel_share
            else:
                seconds = max(end - enqueue_times[index], kernel_share)
            self.stats.record(n, seconds, kernel_seconds=kernel_share)
        obs.record_request(
            backend=self.scorer.backend,
            n_docs=total,
            seconds=kernel,
            predicted_us_per_doc=self.stats.predicted_us_per_doc,
        )
        return out

    def _score_chunked(self, x: np.ndarray) -> np.ndarray:
        size = self.max_batch_size
        if (
            size is None
            or len(x) <= size
            or not getattr(self.scorer, "batchable", True)
        ):
            return np.asarray(self.scorer.score(x), dtype=np.float64)
        out = np.empty(len(x), dtype=np.float64)
        for lo in range(0, len(x), size):
            chunk = x[lo : lo + size]
            out[lo : lo + len(chunk)] = self.scorer.score(chunk)
        return out

    # ------------------------------------------------------------------
    def rank(self, features) -> np.ndarray:
        """Document indices in descending score order."""
        return np.argsort(-self.score(features), kind="stable")

    def top_k(self, features, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scored documents.

        Selects the winners with ``argpartition`` (O(n)) and sorts only
        those ``k``, instead of a full argsort per request.  Ties are
        broken by ascending document index — the order ``rank``
        produces — so ``top_k(x, k)`` always equals ``rank(x)[:k]``,
        even when scores tie across the selection boundary (where
        ``argpartition`` alone picks arbitrary indices).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scores = self.score(features)
        if k >= len(scores):
            return np.argsort(-scores, kind="stable")
        winners = np.argpartition(-scores, k - 1)[:k]
        # ``winners`` holds the right k *values* but, at the boundary
        # score, arbitrary index choices.  Rebuild the selection so the
        # boundary ties resolve to the lowest indices.
        boundary = scores[winners].min()
        above = np.flatnonzero(scores > boundary)
        ties = np.flatnonzero(scores == boundary)
        chosen = np.concatenate([above, ties[: k - len(above)]])
        return chosen[np.argsort(-scores[chosen], kind="stable")]
