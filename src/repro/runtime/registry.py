"""Backend registry: ``make_scorer`` dispatch without ``isinstance`` ladders.

Every scorer backend is a named :class:`ScorerBackend` entry pairing a
``matches(model, opts)`` predicate with a ``build(model, context,
**opts)`` factory.  ``make_scorer`` resolves the *last registered* entry
whose predicate accepts the model — so downstream code can register a
new backend (an oblivious-forest variant, a GPU engine, a remote
scorer) and every call site (serving, pipeline, CLI, cascades,
benchmarks) picks it up without modification.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.design.cascade import EarlyExitCascade
from repro.distill.student import DistilledStudent
from repro.exceptions import ReproError
from repro.forest.ensemble import TreeEnsemble
from repro.runtime import adapters
from repro.runtime.base import Scorer
from repro.runtime.context import PricingContext, default_context


class UnknownBackendError(ReproError):
    """``make_scorer``/``price`` was asked for an unregistered backend."""


@dataclass(frozen=True)
class ScorerBackend:
    """One pluggable scoring backend.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"sparse-network"``.
    matches:
        ``(model, opts) -> bool`` — whether this backend auto-dispatches
        for the model under the given ``make_scorer`` keyword options.
    build:
        ``(model, context, **opts) -> Scorer`` factory.
    description:
        One line for documentation and error messages.
    """

    name: str
    matches: Callable[[Any, Mapping[str, Any]], bool]
    build: Callable[..., Scorer]
    description: str = field(default="")


_REGISTRY: dict[str, ScorerBackend] = {}


def register_backend(backend: ScorerBackend, *, replace: bool = False) -> None:
    """Add a backend to the registry.

    Later registrations win auto-dispatch ties, so a more specific
    backend registered downstream shadows the built-ins it refines.
    """
    if backend.name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {backend.name!r} is already registered "
            "(pass replace=True to override)"
        )
    # Re-insert to refresh registration order even on replace.
    _REGISTRY.pop(backend.name, None)
    _REGISTRY[backend.name] = backend


def unregister_backend(name: str) -> ScorerBackend:
    """Remove and return a registered backend."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Names of all registered backends, in registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> ScorerBackend:
    """Look up a backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def make_scorer(
    model,
    *,
    backend: str | None = None,
    context: PricingContext | None = None,
    **opts,
) -> Scorer:
    """Adapt ``model`` to the :class:`Scorer` protocol.

    With ``backend`` the named backend is used directly; otherwise the
    most recently registered backend whose predicate matches wins.
    Keyword options are forwarded to the backend factory (e.g.
    ``quantized_bits=8``, ``device="gpu"``, ``false_fraction=...``).
    """
    ctx = context or default_context()
    if backend is not None:
        return get_backend(backend).build(model, ctx, **opts)
    for entry in reversed(list(_REGISTRY.values())):
        if entry.matches(model, opts):
            return entry.build(model, ctx, **opts)
    raise TypeError(
        f"unsupported model type {type(model).__name__}; no registered "
        f"backend matches (registered: {', '.join(_REGISTRY)})"
    )


# ----------------------------------------------------------------------
# Built-in backends.  Registration order defines auto-dispatch priority
# (later entries are tried first), so the most specific matchers come
# last.
# ----------------------------------------------------------------------
def _sparsity_over_threshold(model: Any, threshold: float = 0.5) -> bool:
    return (
        isinstance(model, DistilledStudent)
        and model.first_layer_sparsity() > threshold
    )


register_backend(
    ScorerBackend(
        name="quickscorer",
        matches=lambda m, opts: isinstance(m, TreeEnsemble),
        build=lambda m, ctx, **o: adapters.QuickScorerAdapter(m, ctx, **o),
        description="tree ensembles via the (exact) QuickScorer traversal",
    )
)
register_backend(
    ScorerBackend(
        name="dense-network",
        matches=lambda m, opts: isinstance(m, DistilledStudent),
        build=lambda m, ctx, **o: adapters.DenseNetworkScorer(m, ctx, **o),
        description="distilled students priced by the dense predictor",
    )
)
register_backend(
    ScorerBackend(
        name="sparse-network",
        matches=lambda m, opts: _sparsity_over_threshold(m),
        build=lambda m, ctx, **o: adapters.SparseNetworkScorer(m, ctx, **o),
        description="first-layer-pruned students priced by the hybrid model",
    )
)
register_backend(
    ScorerBackend(
        name="quantized-network",
        matches=lambda m, opts: (
            isinstance(m, DistilledStudent) and bool(opts.get("quantized_bits"))
        ),
        build=lambda m, ctx, **o: adapters.QuantizedNetworkScorer(m, ctx, **o),
        description="fake-quantized students priced by the int timing model",
    )
)
register_backend(
    ScorerBackend(
        name="cascade",
        matches=lambda m, opts: isinstance(m, EarlyExitCascade),
        build=lambda m, ctx, **o: adapters.CascadeScorer(m, ctx, **o),
        description="early-exit cascades served per request",
    )
)
register_backend(
    ScorerBackend(
        name="compiled-network",
        matches=lambda m, opts: (
            isinstance(m, DistilledStudent)
            and bool(
                opts.get("compiled")
                or opts.get("quantize")
                or opts.get("block_sparse")
            )
        ),
        build=lambda m, ctx, **o: adapters.CompiledNetworkScorer(m, ctx, **o),
        description="students executed through ahead-of-time compiled plans",
    )
)
register_backend(
    ScorerBackend(
        name="quickscorer-gpu",
        matches=lambda m, opts: (
            isinstance(m, TreeEnsemble) and opts.get("device") == "gpu"
        ),
        build=lambda m, ctx, *, device="gpu", **o: (
            adapters.GpuQuickScorerAdapter(m, ctx, **o)
        ),
        description="tree ensembles priced by the GPU QuickScorer model",
    )
)
