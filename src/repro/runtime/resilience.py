"""Resilient serving: retries, deadlines, circuit breaking, fallbacks.

The paper prices every architecture against a latency budget *before*
it serves; this module keeps the service inside that budget when the
chosen model misbehaves at runtime.  Three cooperating pieces, all
deterministic under an injectable ``clock``/``sleep`` pair:

* :class:`ResilientScorer` — wraps one
  :class:`~repro.runtime.base.Scorer` with retry-with-backoff
  (:class:`RetryPolicy`), per-request deadline enforcement, a finite-
  score check (NaN output is a failure, not a result), and a
  :class:`CircuitBreaker` whose trip conditions are a sliding-window
  failure rate and — the paper-specific twist — the predicted-vs-
  measured latency *drift* the existing
  :class:`~repro.runtime.batching.ServiceStats` series already tracks;
* :class:`FallbackChain` — the degradation ladder: a primary backend
  (say ``quickscorer`` or ``dense-network``) backed by progressively
  cheaper tiers (``sparse-network``, a :class:`StubScorer`), tried in
  order whenever a tier's breaker is open, its deadline is breached or
  its retries are exhausted.  The chain itself satisfies the
  :class:`~repro.runtime.base.Scorer` protocol, so it drops into
  :class:`~repro.runtime.batching.BatchEngine` and
  :class:`~repro.serving.ScoringService` unchanged and is priced by its
  primary tier;
* every retry, failure, breaker transition and fallback feeds the
  ``resilience.*`` metric series (:mod:`repro.obs.resilience`), read
  back by :func:`repro.obs.resilience_report`.

Pair with :mod:`repro.runtime.faults` to script failures
deterministically; see ``docs/resilience.md`` for the tuning guide.
"""

from __future__ import annotations

import math
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.exceptions import ReproError
from repro.obs.resilience import (
    record_breaker_state,
    record_failure,
    record_fallback,
    record_retry,
    record_served,
)
from repro.runtime.base import is_scorer
from repro.runtime.batching import ServiceStats

__all__ = [
    "AllTiersFailedError",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "CircuitOpenError",
    "DeadlineExceededError",
    "FallbackChain",
    "ResilienceError",
    "ResilientScorer",
    "RetryPolicy",
    "ScorerFaultError",
    "StubScorer",
    "make_fallback_chain",
]


class ResilienceError(ReproError):
    """Base class of the resilience layer's failures."""


class DeadlineExceededError(ResilienceError):
    """A request (including retries and backoff) overran its deadline."""


class CircuitOpenError(ResilienceError):
    """The tier's circuit breaker is open; the call was not attempted."""


class ScorerFaultError(ResilienceError):
    """A scorer returned unusable output (non-finite or mis-shaped)."""


class AllTiersFailedError(ResilienceError):
    """Every tier of a fallback chain failed the request."""


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retries (fail fast into the fallback chain), ``3`` allows two
    re-attempts.  The backoff before retry ``r`` (1-based) is
    ``backoff_seconds * backoff_multiplier ** (r - 1)``, capped at
    ``max_backoff_seconds`` — no jitter, so schedules replay exactly.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.001
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}"
            )
        if self.max_backoff_seconds < self.backoff_seconds:
            raise ValueError(
                f"max_backoff_seconds must be >= backoff_seconds, "
                f"got {self.max_backoff_seconds} < {self.backoff_seconds}"
            )

    def backoff_before(self, retry: int) -> float:
        """Seconds to pause before the ``retry``-th re-attempt (1-based)."""
        if retry < 1:
            raise ValueError(f"retry must be >= 1, got {retry}")
        raw = self.backoff_seconds * self.backoff_multiplier ** (retry - 1)
        return min(raw, self.max_backoff_seconds)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Trip and recovery tuning of a :class:`CircuitBreaker`.

    The breaker trips when, over a sliding window of the last ``window``
    outcomes (at least ``min_samples`` of them), the failure rate
    reaches ``failure_rate_threshold`` — or, independently, when the
    tier's measured-vs-predicted latency drift exceeds
    ``drift_pct_limit`` percent (``None`` disables the drift trip).
    After ``cooldown_seconds`` an open breaker admits probe traffic
    (half-open); ``half_open_probes`` consecutive successes close it,
    any probe failure reopens it and restarts the cooldown.
    """

    window: int = 8
    min_samples: int = 4
    failure_rate_threshold: float = 0.5
    cooldown_seconds: float = 1.0
    half_open_probes: int = 2
    drift_pct_limit: float | None = None

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError(
                f"min_samples must be in [1, window], got {self.min_samples}"
            )
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ValueError(
                f"failure_rate_threshold must be in (0, 1], "
                f"got {self.failure_rate_threshold}"
            )
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """closed → open → half-open state machine over call outcomes.

    Deterministic by construction: state only changes in response to
    :meth:`record_success` / :meth:`record_failure` and to the injected
    ``clock`` crossing the cooldown boundary.  ``history`` records every
    transition (state, reason) in order, which is what the property
    tests assert on.
    """

    def __init__(
        self,
        config: CircuitBreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        drift_fn: Callable[[], float] | None = None,
        backend: str = "scorer",
    ) -> None:
        self.config = config or CircuitBreakerConfig()
        self.backend = backend
        self._clock = clock
        self._drift_fn = drift_fn
        #: Sliding window of outcomes; ``True`` marks a failure.
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._state = BreakerState.CLOSED
        self._opened_at = float("-inf")
        self._probe_successes = 0
        self.last_trip_reason: str | None = None
        self.history: list[tuple[BreakerState, str]] = []
        record_breaker_state(backend, self._state, transition=False)

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """Current state; an expired cooldown surfaces as half-open."""
        self._maybe_half_open()
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed (half-open admits probe traffic)."""
        return self.state is not BreakerState.OPEN

    def failure_rate(self) -> float:
        """Failure fraction over the current window (0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """Fold one successful call into the window / probe count."""
        state = self.state
        if state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._outcomes.clear()
                self._transition(BreakerState.CLOSED, "probes succeeded")
            return
        self._outcomes.append(False)
        limit = self.config.drift_pct_limit
        if limit is not None and self._drift_fn is not None:
            drift = self._drift_fn()
            if math.isfinite(drift) and drift > limit:
                self._trip(f"latency drift {drift:.1f}% > {limit:.1f}%")

    def record_failure(self) -> None:
        """Fold one failed call; may trip or (half-open) reopen."""
        state = self.state
        if state is BreakerState.HALF_OPEN:
            self._trip("half-open probe failed")
            return
        if state is BreakerState.OPEN:
            return
        self._outcomes.append(True)
        if len(self._outcomes) >= self.config.min_samples:
            rate = self.failure_rate()
            if rate >= self.config.failure_rate_threshold:
                self._trip(
                    f"failure rate {rate:.2f} >= "
                    f"{self.config.failure_rate_threshold:.2f} "
                    f"over {len(self._outcomes)} calls"
                )

    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        if self._state is BreakerState.OPEN and (
            self._clock() - self._opened_at >= self.config.cooldown_seconds
        ):
            self._probe_successes = 0
            self._transition(BreakerState.HALF_OPEN, "cooldown elapsed")

    def _trip(self, reason: str) -> None:
        self.last_trip_reason = reason
        self._opened_at = self._clock()
        self._outcomes.clear()
        self._probe_successes = 0
        self._transition(BreakerState.OPEN, reason)

    def _transition(self, to: BreakerState, reason: str) -> None:
        if to is self._state:
            return
        self._state = to
        self.history.append((to, reason))
        record_breaker_state(self.backend, to)

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker [{self.backend}] {self._state.value} "
            f"rate={self.failure_rate():.2f}>"
        )


# ----------------------------------------------------------------------
# Resilient scorer
# ----------------------------------------------------------------------
class ResilientScorer:
    """One scorer hardened with retries, a deadline and a breaker.

    Satisfies the :class:`~repro.runtime.base.Scorer` protocol with the
    wrapped scorer's backend name, price, batchability and input
    dimension, so hardening is transparent to engines and chains.  A
    call fails — and feeds the breaker — when the scorer raises, returns
    non-finite scores, or comes back after ``deadline_us``; successes
    within the deadline are returned *bit-identically* (the output array
    is not copied or re-rounded).

    The per-tier :class:`ServiceStats` records successful calls, which
    is what arms the breaker's latency-drift trip: ``drift_pct`` of
    those stats is the breaker's ``drift_fn``.
    """

    backend = "resilient"
    batchable = True

    def __init__(
        self,
        scorer,
        *,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | CircuitBreakerConfig | None = None,
        deadline_us: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        stats: ServiceStats | None = None,
    ) -> None:
        if not is_scorer(scorer):
            raise TypeError(
                f"expected a Scorer, got {type(scorer).__name__} "
                "(build one with make_scorer)"
            )
        if deadline_us is not None and deadline_us <= 0:
            raise ValueError(f"deadline_us must be > 0, got {deadline_us}")
        self.inner = scorer
        self.backend = scorer.backend
        self.batchable = getattr(scorer, "batchable", True)
        self.retry = retry or RetryPolicy()
        self.deadline_us = deadline_us
        self._clock = clock
        self._sleep = sleep
        self.stats = stats or ServiceStats()
        if isinstance(breaker, CircuitBreaker):
            self.breaker = breaker
        else:
            self.breaker = CircuitBreaker(
                breaker,
                clock=clock,
                drift_fn=lambda: self.stats.drift_pct,
                backend=scorer.backend,
            )
        # Pricing is lazy and can be expensive (GFLOPS calibration), so
        # only force it when the drift trip actually needs a reference.
        self._needs_price = self.breaker.config.drift_pct_limit is not None
        self.retries = 0
        self.failures = 0

    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int | None:
        return self.inner.input_dim

    @property
    def predicted_us_per_doc(self) -> float:
        return self.inner.predicted_us_per_doc

    def describe(self) -> str:
        return f"resilient({self.inner.describe()})"

    def __repr__(self) -> str:
        return (
            f"<ResilientScorer [{self.backend}] "
            f"breaker={self.breaker.state.value} retries={self.retries}>"
        )

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score with retries inside the deadline, feeding the breaker."""
        if not self.breaker.allow():
            record_failure(self.backend, "CircuitOpenError")
            reason = self.breaker.last_trip_reason
            raise CircuitOpenError(
                f"circuit open for backend {self.backend!r}"
                + (f" ({reason})" if reason else "")
            )
        if self._needs_price and math.isnan(self.stats.predicted_us_per_doc):
            self.stats.predicted_us_per_doc = float(
                self.inner.predicted_us_per_doc
            )
        deadline_s = (
            self.deadline_us * 1e-6 if self.deadline_us is not None else None
        )
        start = self._clock()
        last_exc: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                if not self.breaker.allow():
                    raise CircuitOpenError(
                        f"circuit opened mid-request for backend "
                        f"{self.backend!r}"
                    ) from last_exc
                pause = self.retry.backoff_before(attempt - 1)
                if deadline_s is not None and (
                    self._clock() - start + pause >= deadline_s
                ):
                    record_failure(self.backend, "DeadlineExceededError")
                    raise DeadlineExceededError(
                        f"no deadline budget left to retry backend "
                        f"{self.backend!r} ({self.deadline_us:.0f} us)"
                    ) from last_exc
                if pause > 0:
                    self._sleep(pause)
                self.retries += 1
                record_retry(self.backend)
            call_start = self._clock()
            try:
                scores = np.asarray(
                    self.inner.score(features), dtype=np.float64
                )
                if not np.all(np.isfinite(scores)):
                    raise ScorerFaultError(
                        f"backend {self.backend!r} returned non-finite scores"
                    )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                last_exc = exc
                self.failures += 1
                self.breaker.record_failure()
                record_failure(self.backend, type(exc).__name__)
                continue
            elapsed = max(self._clock() - call_start, 0.0)
            if deadline_s is not None and self._clock() - start > deadline_s:
                # The call came back, but past the deadline: the client
                # has already lost its budget, so degrade instead.
                self.failures += 1
                self.breaker.record_failure()
                record_failure(self.backend, "DeadlineExceededError")
                raise DeadlineExceededError(
                    f"backend {self.backend!r} answered after the "
                    f"{self.deadline_us:.0f} us deadline"
                )
            self.breaker.record_success()
            if len(scores):
                self.stats.record(len(scores), elapsed)
            return scores
        assert last_exc is not None
        raise last_exc


# ----------------------------------------------------------------------
# Fallback chain
# ----------------------------------------------------------------------
class FallbackChain:
    """The degradation ladder: primary scorer, then cheaper stand-ins.

    Tiers are tried in order; a tier is skipped (and the next one
    serves) when its breaker is open, its deadline is breached or its
    retries are exhausted.  Tiers that are not already
    :class:`ResilientScorer` instances are wrapped with the shared
    ``retry``/``breaker``/``deadline_us`` settings (each tier gets its
    *own* breaker built from the shared config).

    The chain satisfies the Scorer protocol under the **primary's**
    backend name and price — the paper's budget admission check judges
    the architecture you intend to serve, not the emergency stand-ins —
    and when no fault fires the primary's scores pass through
    bit-identically.
    """

    backend = "fallback-chain"
    batchable = True

    def __init__(
        self,
        tiers: Sequence,
        *,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreakerConfig | None = None,
        deadline_us: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not tiers:
            raise ValueError("a fallback chain needs at least one scorer")
        built: list[ResilientScorer] = []
        for tier in tiers:
            if isinstance(tier, ResilientScorer):
                built.append(tier)
            elif is_scorer(tier):
                built.append(
                    ResilientScorer(
                        tier,
                        retry=retry,
                        breaker=breaker,
                        deadline_us=deadline_us,
                        clock=clock,
                        sleep=sleep,
                    )
                )
            else:
                raise TypeError(
                    f"tier must be a Scorer or ResilientScorer, got "
                    f"{type(tier).__name__} (build one with make_scorer "
                    "or make_fallback_chain)"
                )
        self.tiers: tuple[ResilientScorer, ...] = tuple(built)
        self.primary = self.tiers[0]
        self.backend = self.primary.backend
        self.batchable = all(t.batchable for t in self.tiers)
        self.served = [0] * len(self.tiers)
        self.fallbacks = 0

    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int | None:
        return self.primary.input_dim

    @property
    def predicted_us_per_doc(self) -> float:
        return self.primary.predicted_us_per_doc

    @property
    def requests(self) -> int:
        """Requests the chain has answered (any tier)."""
        return sum(self.served)

    @property
    def fallback_ratio(self) -> float:
        """Fraction of answered requests a non-primary tier served."""
        return self.fallbacks / self.requests if self.requests else 0.0

    def describe(self) -> str:
        ladder = " -> ".join(t.backend for t in self.tiers)
        return f"fallback chain [{ladder}]"

    def __repr__(self) -> str:
        return (
            f"<FallbackChain [{self.backend}] tiers={len(self.tiers)} "
            f"fallback_ratio={self.fallback_ratio:.1%}>"
        )

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Serve the request from the first tier that can answer it."""
        errors: list[tuple[str, Exception]] = []
        for index, tier in enumerate(self.tiers):
            try:
                scores = tier.score(features)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                errors.append((tier.backend, exc))
                continue
            self.served[index] += 1
            record_served(self.backend, tier.backend)
            if index > 0:
                self.fallbacks += 1
                record_fallback(self.backend, tier.backend)
            return scores
        raise AllTiersFailedError(
            "every tier failed the request: "
            + "; ".join(
                f"{backend}: {type(exc).__name__}: {exc}"
                for backend, exc in errors
            )
        )

    def tier_summary(self) -> list[dict[str, object]]:
        """Per-tier serving/breaker/retry snapshot, primary first."""
        return [
            {
                "backend": tier.backend,
                "served": self.served[index],
                "retries": tier.retries,
                "failures": tier.failures,
                "breaker": tier.breaker.state.value,
                "predicted_us_per_doc": tier.stats.predicted_us_per_doc,
            }
            for index, tier in enumerate(self.tiers)
        ]


# ----------------------------------------------------------------------
# Last-resort stub tier
# ----------------------------------------------------------------------
class StubScorer:
    """A last-resort, near-zero-cost linear scorer.

    The degradation ladder wants a final tier that cannot realistically
    fail: one numpy reduction per request (``features @ weights``, or
    the per-row feature mean when no weights are given), priced at a
    nominal ``price_us_per_doc``.  Quality is whatever a linear model
    gives — the point is answering *something* inside the budget when
    every learned tier is down, mirroring a distilled-to-the-bone
    student.
    """

    backend = "stub"
    batchable = True

    def __init__(
        self,
        *,
        weights=None,
        input_dim: int | None = None,
        price_us_per_doc: float = 0.01,
    ) -> None:
        if weights is not None:
            self.weights = np.asarray(weights, dtype=np.float64).ravel()
            if not self.weights.size:
                raise ValueError("weights must be non-empty")
            input_dim = self.weights.size
        else:
            self.weights = None
        self._input_dim = input_dim
        self._price = float(price_us_per_doc)

    @property
    def input_dim(self) -> int | None:
        return self._input_dim

    @property
    def predicted_us_per_doc(self) -> float:
        return self._price

    def score(self, features) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(
                f"features must be 2-dimensional, got shape {x.shape}"
            )
        if self.weights is None:
            return x.mean(axis=1) if x.shape[1] else np.zeros(len(x))
        if x.shape[1] != self.weights.size:
            raise ValueError(
                f"expected {self.weights.size} features, got {x.shape[1]}"
            )
        return x @ self.weights

    def describe(self) -> str:
        kind = "weighted" if self.weights is not None else "feature-mean"
        return f"stub linear scorer ({kind})"

    def __repr__(self) -> str:
        return f"<StubScorer [{self.backend}] {self.describe()}>"


# ----------------------------------------------------------------------
# Registry-integrated construction
# ----------------------------------------------------------------------
def make_fallback_chain(
    models: Sequence,
    *,
    backends: Sequence[str | None] | None = None,
    context=None,
    retry: RetryPolicy | None = None,
    breaker: CircuitBreakerConfig | None = None,
    deadline_us: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> FallbackChain:
    """Build a :class:`FallbackChain` straight from models.

    Each entry of ``models`` may be a raw model (adapted through the
    backend registry, optionally pinned by the matching ``backends``
    name) or an already-built scorer.  Order is the degradation order:
    primary first, cheapest stand-in last.
    """
    from repro.runtime.registry import make_scorer

    if backends is not None and len(backends) != len(models):
        raise ValueError(
            f"backends must match models one-to-one, got "
            f"{len(backends)} backends for {len(models)} models"
        )
    tiers = []
    for index, model in enumerate(models):
        if is_scorer(model):
            tiers.append(model)
        else:
            backend = backends[index] if backends is not None else None
            tiers.append(make_scorer(model, backend=backend, context=context))
    return FallbackChain(
        tiers,
        retry=retry,
        breaker=breaker,
        deadline_us=deadline_us,
        clock=clock,
        sleep=sleep,
    )
