"""Sharded parallel scoring with a per-row score cache.

The analytic cost models the library prices against (oneDNN, LIBXSMM)
are multi-core kernels, yet every backend scores a request on a single
thread.  This module closes that gap without giving up the runtime's
defining property — bit-identical output no matter how a request is
split:

* :class:`ShardPlan` — deterministic row-shard planning.  Three
  strategies: ``even`` (one shard per worker, sizes within one row of
  each other), ``size-capped`` (as many equal shards as needed to keep
  every shard at or below a row cap) and ``cost-weighted`` (the row cap
  is derived from the scorer's calibrated ``price()`` so each shard
  lands near a target microsecond budget).  Same inputs, same plan —
  always.
* :class:`ScoreCache` — a thread-safe LRU over *(model fingerprint,
  feature-row digest)* → score.  Repeated documents (hot queries, shared
  candidates) short-circuit straight to their previously computed bits.
* :class:`ShardedScorer` — wraps any :class:`~repro.runtime.base.Scorer`
  with a persistent thread pool; shards are scored concurrently and
  reassembled in row order.  Adapters guarantee chunk-invariant scoring
  (``stable_forward`` / row-independent tree traversal), so the
  reassembled vector is **bit-identical** to an unsharded call.

Why threads help at all: the heavy numpy kernels (``einsum``, BLAS
matmuls, the QuickScorer bitvector loops) release the GIL while they
run, so row shards genuinely overlap on multi-core hosts.  See
``docs/parallel.md`` for the full rationale and tuning guide.

Non-batchable scorers (cascades rank *within* a request) are passed
through whole — no sharding, no per-row cache — because their scores
depend on the entire request.
"""

from __future__ import annotations

import hashlib
import math
import time
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import RLock

import numpy as np

from repro.exceptions import ConfigError, ReproError
from repro.utils.validation import check_array_2d

__all__ = [
    "ParallelConfig",
    "ParallelError",
    "PoolClosedError",
    "SHARD_STRATEGIES",
    "ScoreCache",
    "ShardPlan",
    "ShardedScorer",
    "plan_shards",
    "scorer_fingerprint",
]

#: Supported shard-planning strategies.
SHARD_STRATEGIES = ("even", "size-capped", "cost-weighted")


class ParallelError(ReproError):
    """A shard plan, cache or worker pool was misused or misconfigured."""


class PoolClosedError(ParallelError):
    """A :class:`ShardedScorer` was asked to score after ``close()``."""


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelConfig:
    """Tuning of a :class:`ShardedScorer` (and its optional cache).

    Parameters
    ----------
    workers:
        Size of the persistent thread pool.  ``1`` scores inline (still
        through the planner, so behaviour is identical minus the pool).
    strategy:
        One of :data:`SHARD_STRATEGIES`.  ``even`` makes one shard per
        worker; ``size-capped`` caps every shard at ``max_shard_rows``;
        ``cost-weighted`` derives the cap from the scorer's calibrated
        µs/doc price and ``target_shard_us``.
    max_shard_rows:
        Row cap per shard (required by ``size-capped``).
    target_shard_us:
        Target shard duration in µs (required by ``cost-weighted``).
    cache_entries:
        Capacity of the per-scorer :class:`ScoreCache`; ``0`` disables
        caching.
    """

    workers: int = 2
    strategy: str = "even"
    max_shard_rows: int | None = None
    target_shard_us: float | None = None
    cache_entries: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.strategy not in SHARD_STRATEGIES:
            raise ConfigError(
                f"strategy must be one of {', '.join(SHARD_STRATEGIES)}, "
                f"got {self.strategy!r}"
            )
        if self.strategy == "size-capped":
            if self.max_shard_rows is None or self.max_shard_rows < 1:
                raise ConfigError(
                    "size-capped sharding needs max_shard_rows >= 1, "
                    f"got {self.max_shard_rows}"
                )
        if self.strategy == "cost-weighted":
            if self.target_shard_us is None or self.target_shard_us <= 0:
                raise ConfigError(
                    "cost-weighted sharding needs target_shard_us > 0, "
                    f"got {self.target_shard_us}"
                )
        if self.cache_entries < 0:
            raise ConfigError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "workers": self.workers,
            "strategy": self.strategy,
            "max_shard_rows": self.max_shard_rows,
            "target_shard_us": self.target_shard_us,
            "cache_entries": self.cache_entries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParallelConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        unknown = set(data) - {
            "workers",
            "strategy",
            "max_shard_rows",
            "target_shard_us",
            "cache_entries",
        }
        if unknown:
            raise ConfigError(
                f"unknown ParallelConfig keys: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``n_rows`` into contiguous spans.

    ``spans`` is a tuple of half-open ``(lo, hi)`` row ranges that cover
    ``[0, n_rows)`` in order with no gaps.  Construction validates the
    invariant, so a plan in hand is always safe to execute.
    """

    n_rows: int
    spans: tuple[tuple[int, int], ...]
    strategy: str = "even"

    def __post_init__(self) -> None:
        if self.n_rows < 0:
            raise ParallelError(f"n_rows must be >= 0, got {self.n_rows}")
        expected = 0
        for lo, hi in self.spans:
            if lo != expected or hi <= lo:
                raise ParallelError(
                    f"spans must be contiguous, ordered and non-empty; "
                    f"got {self.spans}"
                )
            expected = hi
        if expected != self.n_rows:
            raise ParallelError(
                f"spans cover {expected} rows, expected {self.n_rows}"
            )

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.spans)

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.spans)

    @property
    def balance(self) -> float:
        """Largest shard over the mean shard size (1.0 = perfectly even)."""
        if not self.spans:
            return float("nan")
        sizes = self.sizes
        return max(sizes) * len(sizes) / sum(sizes)

    def describe(self) -> str:
        return (
            f"{self.strategy} plan: {self.n_rows} rows in "
            f"{self.n_shards} shards (balance {self.balance:.2f})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def even(cls, n_rows: int, n_shards: int) -> "ShardPlan":
        """Split into at most ``n_shards`` spans, sizes within one row."""
        if n_shards < 1:
            raise ParallelError(f"n_shards must be >= 1, got {n_shards}")
        if n_rows <= 0:
            return cls(max(n_rows, 0), (), "even")
        shards = min(n_shards, n_rows)
        base, extra = divmod(n_rows, shards)
        spans = []
        lo = 0
        for index in range(shards):
            hi = lo + base + (1 if index < extra else 0)
            spans.append((lo, hi))
            lo = hi
        return cls(n_rows, tuple(spans), "even")

    @classmethod
    def size_capped(cls, n_rows: int, max_rows: int) -> "ShardPlan":
        """As many near-equal spans as needed to keep each <= ``max_rows``."""
        if max_rows < 1:
            raise ParallelError(f"max_rows must be >= 1, got {max_rows}")
        if n_rows <= 0:
            return cls(max(n_rows, 0), (), "size-capped")
        shards = -(-n_rows // max_rows)  # ceil division
        plan = cls.even(n_rows, shards)
        return cls(n_rows, plan.spans, "size-capped")

    @classmethod
    def cost_weighted(
        cls, n_rows: int, us_per_doc: float, target_shard_us: float
    ) -> "ShardPlan":
        """Cap shard size so each shard costs about ``target_shard_us``.

        The per-row price comes from the runtime's calibrated cost
        models (``Scorer.predicted_us_per_doc`` / ``price()``), putting
        the paper's analytic predictors to work a third time: design,
        admission, and now shard sizing.
        """
        if not (math.isfinite(us_per_doc) and us_per_doc > 0):
            raise ParallelError(
                "cost-weighted sharding needs a finite positive µs/doc "
                f"price, got {us_per_doc} (is the scorer unpriced?)"
            )
        if not (math.isfinite(target_shard_us) and target_shard_us > 0):
            raise ParallelError(
                f"target_shard_us must be finite and > 0, "
                f"got {target_shard_us}"
            )
        rows = max(1, int(target_shard_us / us_per_doc))
        plan = cls.size_capped(n_rows, rows)
        return cls(plan.n_rows, plan.spans, "cost-weighted")


def plan_shards(
    n_rows: int,
    config: ParallelConfig,
    *,
    us_per_doc: float = float("nan"),
) -> ShardPlan:
    """Build the :class:`ShardPlan` ``config`` asks for over ``n_rows``."""
    if config.strategy == "even":
        return ShardPlan.even(n_rows, config.workers)
    if config.strategy == "size-capped":
        return ShardPlan.size_capped(n_rows, config.max_shard_rows)
    return ShardPlan.cost_weighted(
        n_rows, us_per_doc, config.target_shard_us
    )


# ----------------------------------------------------------------------
# Score cache
# ----------------------------------------------------------------------
def scorer_fingerprint(scorer) -> str:
    """A cache-keying identity for ``scorer``.

    A scorer may publish its own ``fingerprint()`` (e.g. a weights
    digest); otherwise the default ties cache entries to the *instance*
    — a new scorer never reuses another's entries, which is the safe
    direction.  Mutating a live scorer's model in place is the caller's
    responsibility: call :meth:`ScoreCache.clear` afterwards.
    """
    fingerprint = getattr(scorer, "fingerprint", None)
    if callable(fingerprint):
        return str(fingerprint())
    return (
        f"{type(scorer).__qualname__}:{getattr(scorer, 'backend', '?')}:"
        f"{id(scorer):#x}"
    )


def _row_digests(x: np.ndarray) -> list[bytes]:
    """16-byte BLAKE2b digest of each (contiguous float64) feature row."""
    return [
        hashlib.blake2b(row.tobytes(), digest_size=16).digest() for row in x
    ]


class ScoreCache:
    """Thread-safe LRU of per-document scores.

    Keys are ``(model fingerprint, feature-row digest)`` so two models —
    or two instances of the same model — never share entries, and a row
    hits only when its float64 bytes match exactly (bit-identity is
    preserved by construction: a hit returns the very bits the scorer
    produced).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ParallelError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = RLock()
        self._entries: OrderedDict[tuple[str, bytes], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Hits over all lookups (``nan`` before any traffic)."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    # ------------------------------------------------------------------
    def get_many(
        self, model_key: str, digests: Sequence[bytes]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Look up ``digests``; returns ``(values, hit_mask)``.

        ``values[i]`` is meaningful only where ``hit_mask[i]`` is true
        (scores may legitimately be any float, so there is no sentinel).
        """
        values = np.zeros(len(digests), dtype=np.float64)
        mask = np.zeros(len(digests), dtype=bool)
        with self._lock:
            for index, digest in enumerate(digests):
                key = (model_key, digest)
                try:
                    values[index] = self._entries[key]
                except KeyError:
                    self.misses += 1
                    continue
                self._entries.move_to_end(key)
                mask[index] = True
                self.hits += 1
        return values, mask

    def put_many(
        self,
        model_key: str,
        digests: Sequence[bytes],
        scores: np.ndarray,
    ) -> None:
        """Insert freshly computed scores, evicting LRU entries."""
        if len(digests) != len(scores):
            raise ParallelError(
                f"got {len(digests)} digests for {len(scores)} scores"
            )
        evicted = 0
        with self._lock:
            for digest, score in zip(digests, scores):
                key = (model_key, digest)
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = float(score)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    evicted += 1
        if evicted:
            from repro.obs.parallel import record_cache_eviction

            record_cache_eviction(evicted)

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry keyed by ``fingerprint``; returns the count.

        The hot-swap hook: when a model version is promoted, the
        lifecycle manager invalidates the *outgoing* version's entries
        by its plan fingerprint so the cache never pins a retired
        model's bits in memory.  (Correctness never depended on this —
        keys are fingerprint-scoped, so a new version cannot hit an old
        version's rows — but a swapped-out model's entries are dead
        weight that would otherwise age out one eviction at a time.)
        """
        key = str(fingerprint)
        with self._lock:
            doomed = [k for k in self._entries if k[0] == key]
            for entry_key in doomed:
                del self._entries[entry_key]
            self.invalidations += len(doomed)
        if doomed:
            from repro.obs.parallel import record_cache_invalidation

            record_cache_invalidation(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict[str, float]:
        """Counters + occupancy, for summaries and metrics."""
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
                "invalidations": float(self.invalidations),
                "hit_ratio": self.hit_ratio,
            }

    def __repr__(self) -> str:
        return (
            f"<ScoreCache {len(self._entries)}/{self.capacity} "
            f"hit_ratio={self.hit_ratio:.1%}>"
        )


# ----------------------------------------------------------------------
# Sharded scorer
# ----------------------------------------------------------------------
class ShardedScorer:
    """Any scorer, scored shard-parallel with order-preserving reassembly.

    Satisfies the :class:`~repro.runtime.base.Scorer` protocol under the
    wrapped scorer's backend name, price, batchability and input
    dimension, so it drops into :class:`~repro.runtime.batching.
    BatchEngine`, :class:`~repro.runtime.resilience.FallbackChain` and
    :class:`~repro.serving.ScoringService` unchanged.

    Output is **bit-identical** to ``inner.score`` on the whole matrix:
    adapters are chunk-invariant, shards are contiguous row spans, and
    reassembly writes each shard back at its own offset.  Cached rows
    return the bits the same scorer computed earlier, so warm requests
    are bit-identical too.

    Non-batchable scorers (cascades) are served whole with no cache —
    their scores depend on the entire request.
    """

    backend = "sharded"
    batchable = True

    def __init__(
        self,
        scorer,
        config: ParallelConfig | None = None,
        *,
        cache: ScoreCache | None = None,
    ) -> None:
        from repro.runtime.base import is_scorer

        if not is_scorer(scorer):
            raise TypeError(
                f"expected a Scorer, got {type(scorer).__name__} "
                "(build one with make_scorer)"
            )
        self.inner = scorer
        self.config = config or ParallelConfig()
        self.backend = scorer.backend
        self.batchable = getattr(scorer, "batchable", True)
        if self.batchable:
            # `is not None`, not truthiness: an empty shared ScoreCache
            # is falsy (it has __len__) but must still be adopted
            self.cache = (
                cache
                if cache is not None
                else (
                    ScoreCache(self.config.cache_entries)
                    if self.config.cache_entries
                    else None
                )
            )
        else:
            self.cache = None  # per-row entries are meaningless here
        self._fingerprint = scorer_fingerprint(scorer)
        #: Scorers that publish a callable ``fingerprint()`` may change
        #: identity over their lifetime (a versioned registry scorer
        #: after a hot swap); re-read those per request instead of
        #: trusting the construction-time value.
        self._dynamic_fingerprint = callable(
            getattr(scorer, "fingerprint", None)
        )
        self._pool: ThreadPoolExecutor | None = None
        if self.batchable and self.config.workers > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix=f"repro-shard-{self.backend}",
            )
        self._closed = False
        self.requests = 0
        self.shards_executed = 0
        self.last_plan: ShardPlan | None = None
        self.last_utilization = float("nan")

    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int | None:
        return self.inner.input_dim

    @property
    def predicted_us_per_doc(self) -> float:
        return self.inner.predicted_us_per_doc

    def describe(self) -> str:
        return (
            f"sharded[{self.config.workers}w/{self.config.strategy}]"
            f"({self.inner.describe()})"
        )

    def __repr__(self) -> str:
        return (
            f"<ShardedScorer [{self.backend}] workers={self.config.workers} "
            f"requests={self.requests}>"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down; further scoring raises."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._closed = True

    def __enter__(self) -> "ShardedScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score one request shard-parallel; bit-identical to unsharded."""
        from repro.obs.parallel import record_parallel_request
        from repro.obs.requests import annotate_requests

        if self._closed:
            raise PoolClosedError(
                f"sharded scorer over {self.backend!r} is closed"
            )
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 2 and x.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        x = np.ascontiguousarray(check_array_2d(x, "features"))
        n = len(x)
        self.requests += 1
        if not self.batchable:
            scores = np.asarray(self.inner.score(x), dtype=np.float64)
            self.shards_executed += 1
            self.last_plan = ShardPlan(n, ((0, n),), "whole-request")
            self.last_utilization = 1.0
            record_parallel_request(
                self.backend, n_shards=1, balance=1.0, utilization=1.0
            )
            annotate_requests(shards=1, pool_utilization=1.0)
            return scores
        out = np.empty(n, dtype=np.float64)
        hits = misses = 0
        model_key = self._model_key()
        if self.cache is not None:
            digests = _row_digests(x)
            values, mask = self.cache.get_many(model_key, digests)
            out[mask] = values[mask]
            miss_idx = np.flatnonzero(~mask)
            hits, misses = int(mask.sum()), int(len(x) - mask.sum())
        else:
            digests = None
            miss_idx = np.arange(n)
            misses = n
        plan = None
        utilization = float("nan")
        if len(miss_idx):
            sub = x if len(miss_idx) == n else np.ascontiguousarray(
                x[miss_idx]
            )
            plan = self._plan(len(sub))
            fresh, utilization = self._execute(sub, plan)
            out[miss_idx] = fresh
            if self.cache is not None:
                self.cache.put_many(
                    model_key,
                    [digests[i] for i in miss_idx],
                    fresh,
                )
            self.shards_executed += plan.n_shards
            self.last_plan = plan
            self.last_utilization = utilization
        record_parallel_request(
            self.backend,
            n_shards=plan.n_shards if plan is not None else 0,
            balance=plan.balance if plan is not None else float("nan"),
            utilization=utilization,
            cache_hits=hits,
            cache_misses=misses if self.cache is not None else 0,
        )
        # Request tracing: attribute the shard fan-out to whichever
        # coalesced requests are live in this thread's context (no-op
        # outside a traced engine call).
        annotate_requests(
            shards=plan.n_shards if plan is not None else 0,
            pool_utilization=(
                round(utilization, 3) if math.isfinite(utilization) else None
            ),
            cache_hits=hits,
        )
        return out

    # ------------------------------------------------------------------
    def _model_key(self) -> str:
        """The cache-keying fingerprint, re-read when the inner scorer
        publishes a dynamic one (read once per request, so cached rows
        and fresh rows of one request always share a key)."""
        if self._dynamic_fingerprint:
            return str(self.inner.fingerprint())
        return self._fingerprint

    def _plan(self, n_rows: int) -> ShardPlan:
        us_per_doc = (
            self.inner.predicted_us_per_doc
            if self.config.strategy == "cost-weighted"
            else float("nan")
        )
        return plan_shards(n_rows, self.config, us_per_doc=us_per_doc)

    def _execute(
        self, x: np.ndarray, plan: ShardPlan
    ) -> tuple[np.ndarray, float]:
        """Run the plan; returns ``(scores, pool utilization)``."""

        def score_span(lo: int, hi: int) -> tuple[np.ndarray, float]:
            start = time.perf_counter()
            scores = np.asarray(
                self.inner.score(x[lo:hi]), dtype=np.float64
            )
            return scores, time.perf_counter() - start

        wall_start = time.perf_counter()
        if self._pool is None or plan.n_shards <= 1:
            parts = [score_span(lo, hi) for lo, hi in plan.spans]
            lanes = 1
        else:
            futures = [
                self._pool.submit(score_span, lo, hi)
                for lo, hi in plan.spans
            ]
            parts = [future.result() for future in futures]
            lanes = min(self.config.workers, plan.n_shards)
        wall = max(time.perf_counter() - wall_start, 1e-12)
        busy = sum(seconds for _, seconds in parts)
        utilization = min(busy / (lanes * wall), 1.0)
        if len(parts) == 1:
            return parts[0][0], utilization
        return np.concatenate([scores for scores, _ in parts]), utilization

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Shard/pool/cache snapshot for services and probes."""
        return {
            "backend": self.backend,
            "workers": self.config.workers,
            "strategy": self.config.strategy,
            "requests": self.requests,
            "shards_executed": self.shards_executed,
            "last_shards": (
                self.last_plan.n_shards if self.last_plan else 0
            ),
            "last_balance": (
                self.last_plan.balance if self.last_plan else float("nan")
            ),
            "last_utilization": self.last_utilization,
            "cache": self.cache.snapshot() if self.cache else None,
        }
