"""Self-checking compiled-inference smoke run (``make compile-smoke``).

Exercises :func:`repro.runtime.compile.compile_network` end to end on a
90%-pruned-first-layer network and *asserts* the outcomes, so CI can
gate on ``python -m repro.runtime.compile_smoke``:

1. **Bit identity** — a forced-dense float64 plan must reproduce
   ``FeedForwardNetwork.predict`` bit for bit at every probed batch
   size (including 0 and 1); the auto-selected hybrid plan must match
   :func:`~repro.runtime.compile.reference_scores` the same way.
2. **Serving stability** — a stable-mode plan (what the
   ``compiled-network`` adapter ships) must be chunk-invariant: scoring
   under arbitrary shard boundaries reproduces the whole-batch bits.
3. **Zero steady-state allocations** — repeated
   :meth:`~repro.runtime.compile.InferencePlan.execute_into` calls at a
   fixed batch size must not grow the heap (``tracemalloc``).
4. **Speedup** — the float32 plan must beat naive ``predict`` by >=
   1.3x µs/doc at batch 256 on the pruned network, with a bounded
   max-abs-error against the float64 reference.
5. **Observability** — the ``compile.*`` series must have recorded the
   plans and the report must render.

Exits non-zero on any violation.
"""

from __future__ import annotations

import sys
import time
import tracemalloc

import numpy as np

#: Architecture of the probe network (the paper's 136-feature setting).
INPUT_DIM = 136
HIDDEN = (400, 200, 200, 100)
PRUNE_LEVEL = 0.90
BATCH = 256
#: Heap growth tolerated across the measured window, in bytes —
#: tracemalloc itself shows ~1 KiB of jitter; real per-call temporaries
#: for a 256x400 float64 activation would be ~800 KiB per execute.
ALLOC_TOLERANCE = 16 * 1024
#: float32 error bound; the probe net's scores sit in ReLU6's [0, 6]
#: range, so absolute error is the meaningful scale.
F32_MAX_ABS_ERR = 1e-4
MIN_SPEEDUP = 1.3


def _pruned_network():
    from repro.nn.network import FeedForwardNetwork
    from repro.pruning import LevelPruner

    network = FeedForwardNetwork(INPUT_DIM, HIDDEN, seed=3)
    LevelPruner(PRUNE_LEVEL).apply(network.first_layer)
    return network


def check_bit_identity(network, features) -> None:
    """Native float64 plans must honour the layered bit contract."""
    from repro.runtime import compile_network, reference_scores
    from repro.runtime.compile import DENSE_KERNEL, SPARSE_KERNEL

    auto = compile_network(network)
    kernels = [lp.kernel for lp in auto.layers]
    assert kernels[0] == SPARSE_KERNEL, (
        f"predictors kept the {PRUNE_LEVEL:.0%}-pruned first layer dense"
    )
    dense_plan = compile_network(
        network, kernels=[DENSE_KERNEL] * network.n_layers
    )
    for n in (0, 1, 2, 3, 17, BATCH, len(features)):
        chunk = features[:n]
        got = auto.score(chunk)
        np.testing.assert_array_equal(
            got,
            reference_scores(network, auto, chunk),
            err_msg=f"hybrid float64 plan diverged at batch {n}",
        )
        np.testing.assert_array_equal(
            got,
            reference_scores(network, auto, chunk, strict_spmm=True),
            err_msg=f"hybrid plan diverged from strict SpMM at batch {n}",
        )
        if n > 0:  # predict rejects empty input by contract
            np.testing.assert_array_equal(
                dense_plan.score(chunk),
                network.predict(chunk),
                err_msg=f"forced-dense float64 plan != predict at batch {n}",
            )
    print(
        f"bit-identity: float64 plans reproduce predict and the hybrid "
        f"reference exactly (kernels: {', '.join(kernels)})"
    )


def check_serving_stability(network, features) -> None:
    """Stable plans must not change bits under shard boundaries."""
    from repro.runtime import compile_network, reference_scores

    plan = compile_network(network, stable=True)
    whole = plan.score(features)
    np.testing.assert_array_equal(
        whole,
        reference_scores(network, plan, features),
        err_msg="stable float64 plan diverged from its einsum reference",
    )
    for shard in (1, 3, 17, 70, BATCH):
        parts = [
            plan.score(features[i : i + shard])
            for i in range(0, len(features), shard)
        ]
        np.testing.assert_array_equal(
            np.concatenate(parts),
            whole,
            err_msg=f"stable plan is not chunk-invariant at shard {shard}",
        )
    print("stability: stable plan is bit-identical under every shard size")


def check_zero_allocations(network, features) -> None:
    """Steady-state ``execute_into`` must not touch the heap."""
    from repro.runtime import compile_network

    plan = compile_network(network)
    chunk = np.ascontiguousarray(features[:BATCH])
    out = np.empty(BATCH)
    plan.execute_into(chunk, out)  # build the views for this batch size
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    for _ in range(100):
        plan.execute_into(chunk, out)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    grown = after - before
    assert grown <= ALLOC_TOLERANCE, (
        f"steady-state scoring grew the heap by {grown} bytes "
        f"(tolerance {ALLOC_TOLERANCE})"
    )
    print(f"allocations: 100 steady-state executes grew {grown} bytes")


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_speedup(network, features) -> None:
    """float32 plan >= 1.3x over naive predict, with bounded error."""
    from repro.runtime import compile_network

    chunk = np.ascontiguousarray(features[:BATCH])
    f32 = compile_network(network, dtype="float32")
    reference = network.predict(chunk)
    err = float(np.abs(f32.score(chunk) - reference).max())
    assert err <= F32_MAX_ABS_ERR, (
        f"float32 plan error {err:.2e} exceeds the {F32_MAX_ABS_ERR:.0e} bound"
    )
    naive = _best_of(lambda: network.predict(chunk)) * 1e6 / BATCH
    compiled = _best_of(lambda: f32.score(chunk)) * 1e6 / BATCH
    speedup = naive / compiled
    assert speedup >= MIN_SPEEDUP, (
        f"float32 plan must be >= {MIN_SPEEDUP}x over predict, got "
        f"{speedup:.2f}x (naive {naive:.1f} us/doc, plan {compiled:.1f})"
    )
    print(
        f"speedup: float32 plan {speedup:.2f}x over predict "
        f"({naive:.1f} -> {compiled:.1f} us/doc at batch {BATCH}, "
        f"max abs err {err:.1e})"
    )


def check_observability() -> None:
    """The compile.* series must reflect the plans just built."""
    from repro import obs

    report = obs.compile_report()
    assert report.rows, "no compile.* series recorded"
    f64 = report.dtype("float64")
    assert f64 is not None and f64.plans >= 3, "float64 plans not recorded"
    assert f64.sparse_layers > 0, "no sparse kernel choices recorded"
    assert f64.buffer_bytes > 0 and f64.compile_us > 0
    rendered = report.render()
    assert "Compiled plans" in rendered and "float64" in rendered
    print(
        f"obs: {sum(row.plans for row in report.rows)} plans recorded, "
        f"float64 sparse share {f64.sparse_share:.0%}"
    )


def main() -> int:
    from repro.runtime import compile_network

    rng = np.random.default_rng(11)
    network = _pruned_network()
    features = rng.standard_normal((512, INPUT_DIM))

    check_bit_identity(network, features)
    check_serving_stability(network, features)
    check_zero_allocations(network, features)
    check_speedup(network, features)
    check_observability()

    from repro import obs

    plan = compile_network(network)
    print()
    print(plan.describe())
    for lp in plan.layers:
        print(f"  {lp.describe()}")
    print()
    print(obs.compile_report().render())
    print(
        "compile-smoke: plans are bit-exact, allocation-free and faster "
        "than naive scoring"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
