"""Self-checking quantized/block-sparse kernel smoke (``make quant-smoke``).

Exercises the quantized int8/int16 and block-CSR compiled kernels end to
end on the paper's 136-feature architecture with a column-block-pruned
first layer, and *asserts* the outcomes so CI can gate on
``python -m repro.runtime.quant_smoke``:

1. **Kernel mix** — ``compile_network`` must auto-select at least three
   distinct kernel kinds on a representative network (block-SpMM for
   the structured-pruned first layer, int8 GEMM where the
   exact-accumulation bound allows, int16 on wider layers), visible in
   ``kernel_counts()`` and ``describe()``.
2. **Tolerance contract** — every quantized plan's measured deviation
   from :func:`~repro.runtime.compile.reference_scores` must stay
   within its declared ``score_tolerance``; ``quantize="auto"`` must
   honour an explicit budget.
3. **Chunk invariance** — a ``stable=True`` int8 plan must produce
   bit-identical scores under arbitrary shard boundaries (exact integer
   accumulation needs no einsum fallback).
4. **Speedup** — the int8/block plan must beat the plain float32 plan
   by >= 1.3x µs/doc at batch 256 on the pruned-90% headline shape,
   with ranking agreement (top-10 overlap) intact.
5. **Zero steady-state allocations** — repeated ``execute_into`` calls
   through the single-panel block kernel must not grow the heap.
6. **Composition** — quantized plans must ride the existing serving
   stack unchanged: registry dispatch (``quantize=`` / ``block_sparse=``
   options), :class:`~repro.runtime.parallel.ShardedScorer`,
   :class:`~repro.runtime.batching.BatchEngine` and a
   :class:`~repro.runtime.lifecycle.ModelRegistry` hot swap, with
   distinct fingerprints per kernel configuration (so score caches
   never mix plans).
7. **Observability** — the ``compile.*`` series must record the new
   kernel kinds.

Exits non-zero on any violation.
"""

from __future__ import annotations

import sys
import time
import tracemalloc

import numpy as np

#: The paper's 136-feature setting; the wide variant forces the int16
#: fallback (in_width > INT8_MAX_IN_WIDTH on the following layer).
INPUT_DIM = 136
HIDDEN = (400, 200, 100)
WIDE_HIDDEN = (400, 1280, 100)
PRUNE_LEVEL = 0.90
BLOCK_SHAPE = (64, 8)
BATCH = 256
MIN_SPEEDUP = 1.3
TOP_K = 10
ALLOC_TOLERANCE = 16 * 1024


def _pruned_network(hidden=HIDDEN, seed: int = 3):
    from repro.nn.network import FeedForwardNetwork
    from repro.pruning import ColumnBlockPruner

    network = FeedForwardNetwork(INPUT_DIM, hidden, seed=seed)
    ColumnBlockPruner(PRUNE_LEVEL, block_cols=BLOCK_SHAPE[1]).apply(
        network.first_layer
    )
    network.apply_masks()
    return network


def _student(network):
    from repro.datasets import ZNormalizer
    from repro.distill.student import DistilledStudent

    rng = np.random.default_rng(29)
    normalizer = ZNormalizer()
    normalizer.fit(rng.standard_normal((64, INPUT_DIM)))
    return DistilledStudent(network, normalizer)


def _deviation(network, plan, features) -> float:
    from repro.runtime import reference_scores

    return float(
        np.max(np.abs(plan.score(features) - reference_scores(network, plan, features)))
    )


def check_kernel_mix() -> None:
    """>= 3 distinct kernel kinds on the wide representative network."""
    from repro.runtime import compile_network
    from repro.runtime.compile import (
        BLOCK_KERNEL,
        INT8_KERNEL,
        INT16_KERNEL,
        INT8_MAX_IN_WIDTH,
    )

    network = _pruned_network(WIDE_HIDDEN)
    plan = compile_network(
        network,
        dtype="float32",
        quantize="int8",
        block_sparse=True,
        block_shape=BLOCK_SHAPE,
    )
    counts = plan.kernel_counts()
    assert len(counts) >= 3, f"expected >= 3 kernel kinds, got {counts}"
    assert counts.get(BLOCK_KERNEL, 0) >= 1, counts
    assert counts.get(INT8_KERNEL, 0) >= 1, counts
    assert counts.get(INT16_KERNEL, 0) >= 1, (
        f"the {WIDE_HIDDEN[1]}-wide layer exceeds the int8 bound "
        f"({INT8_MAX_IN_WIDTH}) and must fall back to int16: {counts}"
    )
    for lp in plan.layers:
        if lp.kernel == INT8_KERNEL:
            assert lp.in_width <= INT8_MAX_IN_WIDTH, lp.describe()
    described = plan.describe()
    for name in (BLOCK_KERNEL, INT8_KERNEL, INT16_KERNEL):
        assert name in described, described
    print(f"kernel mix: {counts} ({described})")


def check_tolerance_contract(network, features) -> None:
    """Measured deviation must sit inside the declared tolerance."""
    from repro.runtime import compile_network

    int8 = compile_network(
        network, dtype="float32", quantize="int8", block_sparse=True
    )
    assert int8.score_tolerance is not None
    dev = _deviation(network, int8, features)
    assert dev <= int8.score_tolerance, (
        f"int8 plan deviates {dev:.3g}, above its declared tolerance "
        f"{int8.score_tolerance:.3g}"
    )

    budget = 0.02
    auto = compile_network(
        network,
        dtype="float32",
        quantize="auto",
        tolerance=budget,
        block_sparse=True,
    )
    assert auto.score_tolerance == budget
    auto_dev = _deviation(network, auto, features)
    assert auto_dev <= budget, (
        f"auto plan deviates {auto_dev:.3g}, above the {budget} budget"
    )
    print(
        f"tolerance: int8 dev {dev:.2e} <= declared "
        f"{int8.score_tolerance:.2e}; auto dev {auto_dev:.2e} <= "
        f"budget {budget}"
    )


def check_stable_invariance(network, features) -> None:
    """Stable quantized plans must be chunk-invariant bit for bit."""
    from repro.runtime import compile_network

    plan = compile_network(
        network, dtype="float32", quantize="int8", block_sparse=True,
        stable=True,
    )
    whole = plan.score(features)
    for shard in (1, 3, 17, 70, BATCH):
        parts = [
            plan.score(features[i : i + shard])
            for i in range(0, len(features), shard)
        ]
        np.testing.assert_array_equal(
            np.concatenate(parts),
            whole,
            err_msg=f"stable int8 plan is not chunk-invariant at shard {shard}",
        )
    print("stability: stable int8 plan is bit-identical under every shard size")


def _best_of(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_speedup(network, features) -> None:
    """int8/block plan >= 1.3x over the plain float32 plan."""
    from repro.runtime import compile_network, reference_scores

    chunk = np.ascontiguousarray(features[:BATCH])
    f32 = compile_network(network, dtype="float32")
    quant = compile_network(
        network, dtype="float32", quantize="int8", block_sparse=True
    )
    baseline_us = _best_of(lambda: f32.score(chunk)) * 1e6 / BATCH
    quant_us = _best_of(lambda: quant.score(chunk)) * 1e6 / BATCH
    speedup = baseline_us / quant_us
    assert speedup >= MIN_SPEEDUP, (
        f"quantized plan must be >= {MIN_SPEEDUP}x over the float32 plan, "
        f"got {speedup:.2f}x ({baseline_us:.2f} -> {quant_us:.2f} us/doc)"
    )
    # Ranking agreement at the declared tolerance: the top-10 of the
    # quantized plan must overlap the exact reference's top-10.
    ref = reference_scores(network, quant, chunk)
    got = quant.score(chunk)
    top_ref = set(np.argsort(-ref, kind="stable")[:TOP_K])
    top_got = set(np.argsort(-got, kind="stable")[:TOP_K])
    overlap = len(top_ref & top_got) / TOP_K
    assert overlap >= 0.8, (
        f"quantized top-{TOP_K} overlaps the reference only {overlap:.0%}"
    )
    print(
        f"speedup: int8+block plan {speedup:.2f}x over float32 "
        f"({baseline_us:.2f} -> {quant_us:.2f} us/doc at batch {BATCH}, "
        f"top-{TOP_K} overlap {overlap:.0%})"
    )


def check_zero_allocations(network, features) -> None:
    """Steady-state block/int8 execution must not touch the heap."""
    from repro.runtime import compile_network

    plan = compile_network(
        network, dtype="float32", quantize="int8", block_sparse=True
    )
    chunk = np.ascontiguousarray(features[:BATCH])
    out = np.empty(BATCH)
    plan.execute_into(chunk, out)
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    for _ in range(100):
        plan.execute_into(chunk, out)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    grown = after - before
    assert grown <= ALLOC_TOLERANCE, (
        f"steady-state quantized scoring grew the heap by {grown} bytes"
    )
    print(f"allocations: 100 steady-state executes grew {grown} bytes")


def check_composition(network, features) -> None:
    """Quantized plans ride the serving stack unchanged."""
    from repro.runtime import (
        BatchEngine,
        ModelRegistry,
        ParallelConfig,
        ShardedScorer,
        make_scorer,
    )

    student = _student(network)
    scorer = make_scorer(
        student, quantize="int8", block_sparse=True, plan_dtype="float32"
    )
    assert scorer.backend == "compiled-network", scorer.backend
    plain = make_scorer(student, compiled=True, plan_dtype="float32")
    assert scorer.fingerprint() != plain.fingerprint(), (
        "int8 and float32 plans of the same weights must never share a "
        "fingerprint (score caches would mix them)"
    )
    direct = scorer.score(features)

    with ShardedScorer(scorer, ParallelConfig(workers=2)) as sharded:
        np.testing.assert_array_equal(
            sharded.score(features),
            direct,
            err_msg="sharded quantized scoring diverged from direct",
        )
    engine = BatchEngine(scorer, max_batch_size=37)
    np.testing.assert_array_equal(
        engine.score(features),
        direct,
        err_msg="micro-batched quantized scoring diverged from direct",
    )

    registry = ModelRegistry(plain, version="f32")
    registry.register(scorer, version="int8")
    previous, entry = registry.activate("int8")
    assert previous is not None and previous.version_id == "f32"
    assert entry.fingerprint == scorer.fingerprint()
    np.testing.assert_array_equal(
        registry.active.scorer.score(features),
        direct,
        err_msg="post-swap quantized scoring diverged",
    )
    print(
        "composition: registry dispatch, sharding, micro-batching and "
        "hot swap all reproduce direct quantized scoring bit for bit"
    )


def check_observability() -> None:
    """compile.* series must record the new kernel kinds."""
    from repro import obs

    report = obs.compile_report()
    f32 = report.dtype("float32")
    assert f32 is not None and f32.plans > 0, "no float32 plans recorded"
    assert f32.int8_layers > 0, "no int8-gemm layer choices recorded"
    assert f32.block_layers > 0, "no block-spmm layer choices recorded"
    assert f32.int16_layers > 0, "no int16-gemm layer choices recorded"
    rendered = report.render()
    assert "int8" in rendered and "block" in rendered
    print(
        f"obs: float32 row has {f32.block_layers} block / "
        f"{f32.int8_layers} int8 / {f32.int16_layers} int16 layers"
    )


def main() -> int:
    rng = np.random.default_rng(11)
    network = _pruned_network()
    features = rng.standard_normal((512, INPUT_DIM))

    check_kernel_mix()
    check_tolerance_contract(network, features)
    check_stable_invariance(network, features)
    check_speedup(network, features)
    check_zero_allocations(network, features)
    check_composition(network, features)
    check_observability()

    print(
        "quant-smoke: quantized and block-sparse plans are within "
        "tolerance, chunk-invariant, allocation-free and faster than "
        "the float32 baseline"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
