"""The ``Scorer`` protocol — the library's single scoring surface.

Every deployable model (QuickScorer forests, dense students, sparse
first-layer students, quantized networks, early-exit cascades, future
backends) is adapted to one small interface:

* ``score(X) -> np.ndarray`` — per-document scores for a 2-D feature
  matrix;
* ``predicted_us_per_doc`` — the calibrated cost model's µs/doc price,
  computed lazily (pricing a network needs the GFLOPS surface, which is
  only built when someone actually asks for a price);
* ``describe()`` — a human-readable one-liner;
* ``batchable`` — whether a request may be split into micro-batches
  (cascades rank *within* a request, so they must see it whole);
* ``input_dim`` — expected feature count, or ``None`` when the backend
  cannot know it.

Adapters additionally guarantee **chunk-invariant scoring**: splitting a
feature matrix into micro-batches of any size yields bit-identical
scores to one full-matrix call.  Tree traversal is row-independent by
construction; network adapters route matmuls through a fixed-order
``einsum`` kernel instead of BLAS GEMM, whose accumulation order (and
therefore last-bit rounding) changes with the batch shape.  The library
pays a small constant factor on the numpy forward for a deterministic
serving layer; offline evaluation keeps using the models' native
``predict``.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from contextlib import contextmanager
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.nn.layers import Linear
from repro.nn.network import FeedForwardNetwork
from repro.utils.validation import check_array_2d


@runtime_checkable
class Scorer(Protocol):
    """Protocol of a priced, deployable document scorer."""

    #: Registry name of the backend that produced this scorer.
    backend: str
    #: Whether requests may be split into micro-batches.
    batchable: bool

    @property
    def input_dim(self) -> int | None:  # pragma: no cover - protocol
        """Expected feature count (``None`` if unknown)."""
        ...

    @property
    def predicted_us_per_doc(self) -> float:  # pragma: no cover - protocol
        """Calibrated per-document scoring price, in microseconds."""
        ...

    def score(self, features) -> np.ndarray:  # pragma: no cover - protocol
        """Score a 2-D feature matrix; returns shape ``(n_docs,)``."""
        ...

    def describe(self) -> str:  # pragma: no cover - protocol
        """One-line human-readable description."""
        ...


def is_scorer(obj: Any) -> bool:
    """Cheap structural check for the :class:`Scorer` protocol.

    Inspects the *type* so that lazily-priced scorers are not forced to
    compute their price just to be recognized.
    """
    t = type(obj)
    return all(
        hasattr(t, name)
        for name in ("score", "describe", "predicted_us_per_doc", "backend")
    )


class BaseScorer:
    """Shared plumbing for the concrete adapters: lazy pricing.

    Subclasses set ``backend``/``batchable`` as class attributes and pass
    a zero-argument ``price_fn`` that is evaluated (once) on the first
    ``predicted_us_per_doc`` access.
    """

    backend: str = "base"
    batchable: bool = True

    def __init__(self, *, price_fn: Callable[[], float], input_dim: int | None) -> None:
        self._price_fn = price_fn
        self._price: float | None = None
        self._input_dim = input_dim

    @property
    def input_dim(self) -> int | None:
        return self._input_dim

    @property
    def predicted_us_per_doc(self) -> float:
        if self._price is None:
            self._price = float(self._price_fn())
        return self._price

    def score(self, features) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} [{self.backend}] {self.describe()}>"


# ----------------------------------------------------------------------
# Request-scoped version pinning
# ----------------------------------------------------------------------
#: Thread-local (token, n_requests) set by the batch engine around one
#: logical request (or one coalesced batch).  Version-aware scorers
#: (:class:`~repro.runtime.lifecycle.VersionedScorer`) snapshot the
#: active model version once per token, so a hot swap landing mid-way
#: through a chunked request can never mix versions within it.
_PIN_STATE = threading.local()


@contextmanager
def pinned_scope(n_requests: int = 1):
    """Pin version resolution for the duration of one engine call.

    The engine wraps each ``score`` / ``score_coalesced`` execution in
    this scope.  Scorers that resolve a mutable target per call (the
    versioned registry scorer) cache their resolution against the
    scope's token: every chunk of the wrapped call sees the same model
    version — the "in-flight requests finish on the incumbent" half of
    the zero-downtime swap contract.  ``n_requests`` tells such scorers
    how many logical requests the scope carries (1 for a plain call,
    the batch width for a coalesced one) so per-version served counts
    stay request-accurate.  No-op overhead for ordinary scorers.
    """
    previous = getattr(_PIN_STATE, "state", None)
    _PIN_STATE.state = (object(), int(n_requests))
    try:
        yield
    finally:
        _PIN_STATE.state = previous


def current_pin() -> tuple[object, int] | None:
    """The calling thread's active pin ``(token, n_requests)``, if any."""
    return getattr(_PIN_STATE, "state", None)


def stable_forward(network: FeedForwardNetwork, x: np.ndarray) -> np.ndarray:
    """Chunk-invariant inference through a feed-forward network.

    Linear layers are evaluated with a fixed-reduction-order ``einsum``
    (each output element sums over ``k`` in ascending order, independent
    of the batch size), all other layers through their own inference
    path.  Scoring any row subset therefore reproduces the full-matrix
    bits exactly — the property the :class:`~repro.runtime.batching.
    BatchEngine` relies on.
    """
    out = check_array_2d(x, "features")
    if out.shape[1] != network.input_dim:
        raise ValueError(
            f"expected {network.input_dim} features, got {out.shape[1]}"
        )
    for layer in network.layers:
        if isinstance(layer, Linear):
            out = (
                np.einsum("nk,mk->nm", out, layer.weight.data)
                + layer.bias.data
            )
        else:
            out = layer.forward(out, training=False)
    return out[:, 0]
