"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by misuse still propagate where they
indicate caller bugs rather than domain failures).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class DatasetError(ReproError):
    """A dataset is malformed, inconsistent or cannot be parsed."""


class DatasetFormatError(DatasetError):
    """An SVMLight/LETOR file violates the expected line format."""


class TrainingError(ReproError):
    """Model training could not proceed (bad configuration, divergence)."""


class NotFittedError(ReproError):
    """A model or transformer was used before being fitted."""


class ArchitectureError(ReproError):
    """A feed-forward architecture specification is invalid."""


class PruningError(ReproError):
    """A pruning schedule or mask operation is invalid."""


class PredictorError(ReproError):
    """A timing predictor received shapes or sparsities it cannot model."""


class QuickScorerError(ReproError):
    """A tree ensemble cannot be encoded or traversed by QuickScorer."""


class CalibrationError(ReproError):
    """Calibration of a cost model failed or produced unusable values."""


class ConfigError(ReproError):
    """A typed configuration object is invalid or cannot be rebuilt."""


class CascadeError(ReproError):
    """A ranking cascade stage misbehaved (e.g. non-finite scores)."""
