"""A miniature document-scoring service.

Wraps any model the scoring runtime knows (forests via QuickScorer,
dense / first-layer-sparse / quantized students, early-exit cascades —
see :mod:`repro.runtime`) behind one endpoint with the operational
features a query processor needs:

* per-request latency *budget* checking against the calibrated cost
  models (requests are priced before execution, the paper's predictors
  doing in deployment what they do at design time);
* micro-batching of documents per query through the shared
  :class:`~repro.runtime.batching.BatchEngine`;
* running latency/volume statistics with p50/p95/p99 percentiles;
* optional **graceful degradation**: give the service
  ``fallback_models=`` (cheaper stand-ins, e.g. a sparse student behind
  a forest) and it serves through a
  :class:`~repro.runtime.resilience.FallbackChain` — retries with
  backoff, per-request deadlines, and per-tier circuit breakers that
  trip on failure rate or predicted-vs-measured latency drift.

This is the integration surface a downstream search stack would adopt;
``examples/scoring_service.py`` shows the multi-stage variant and
``examples/resilient_service.py`` the degradation ladder.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.runtime import (
    BatchEngine,
    BudgetExceededError,
    CircuitBreakerConfig,
    FallbackChain,
    PricingContext,
    RetryPolicy,
    ServiceStats,
    is_scorer,
    make_scorer,
)

__all__ = ["BudgetExceededError", "ScoringService", "ServiceStats"]


class ScoringService:
    """A single-model scoring endpoint with a latency budget.

    Parameters
    ----------
    model:
        Any model with a registered runtime backend — a
        :class:`~repro.forest.ensemble.TreeEnsemble` (scored through
        QuickScorer), a :class:`~repro.distill.student.DistilledStudent`
        (dense or first-layer-sparse), an
        :class:`~repro.design.cascade.EarlyExitCascade` — or an
        already-built :class:`~repro.runtime.base.Scorer`.
    budget_us_per_doc:
        Optional per-document budget; construction fails with
        :class:`BudgetExceededError` when the calibrated cost model
        prices the model above it — the paper's design rule enforced at
        deployment time.
    predictor:
        Shared :class:`~repro.timing.network_predictor.
        NetworkTimePredictor` for pricing networks (defaults to the
        process-wide one).
    cost_model:
        QuickScorer cost model override for pricing forests.
    max_batch_size:
        Micro-batch size of the underlying :class:`BatchEngine`.
    backend:
        Optional explicit runtime backend name (see
        :func:`repro.runtime.backend_names`).
    fallback_models:
        Optional degradation ladder: models (or pre-built scorers) to
        fall back to, in order, when the primary misbehaves — cheapest
        last.  Supplying this (or any of ``retry_policy`` /
        ``breaker_config`` / ``deadline_us``) routes the service
        through a :class:`~repro.runtime.resilience.FallbackChain`.
    retry_policy, breaker_config, deadline_us:
        Resilience tuning shared by every tier (each tier still gets
        its own breaker); see :mod:`repro.runtime.resilience`.
    allow_unpriced:
        Admit a scorer with a non-finite predicted cost under a budget
        (see :class:`BatchEngine`); off by default.
    **scorer_opts:
        Extra options forwarded to :func:`repro.runtime.make_scorer`
        (e.g. ``quantized_bits=8``).
    """

    def __init__(
        self,
        model,
        *,
        budget_us_per_doc: float | None = None,
        predictor=None,
        cost_model=None,
        max_batch_size: int | None = 256,
        backend: str | None = None,
        context: PricingContext | None = None,
        fallback_models=None,
        retry_policy: RetryPolicy | None = None,
        breaker_config: CircuitBreakerConfig | None = None,
        deadline_us: float | None = None,
        allow_unpriced: bool = False,
        clock=time.monotonic,
        sleep=time.sleep,
        **scorer_opts,
    ) -> None:
        if context is None:
            context = PricingContext(predictor=predictor, qs_cost=cost_model)
        self.model = model
        if is_scorer(model):
            self.scorer = model
        else:
            self.scorer = make_scorer(
                model, backend=backend, context=context, **scorer_opts
            )
        self.chain: FallbackChain | None = None
        engine_scorer = self.scorer
        resilient = (
            fallback_models is not None
            or retry_policy is not None
            or breaker_config is not None
            or deadline_us is not None
        )
        if resilient:
            tiers = [self.scorer]
            for fallback in fallback_models or ():
                tiers.append(
                    fallback
                    if is_scorer(fallback)
                    else make_scorer(fallback, context=context)
                )
            self.chain = FallbackChain(
                tiers,
                retry=retry_policy,
                breaker=breaker_config,
                deadline_us=deadline_us,
                clock=clock,
                sleep=sleep,
            )
            engine_scorer = self.chain
        self.engine = BatchEngine(
            engine_scorer,
            max_batch_size=max_batch_size,
            budget_us_per_doc=budget_us_per_doc,
            allow_unpriced=allow_unpriced,
        )
        self.stats = self.engine.stats
        self.budget_us_per_doc = budget_us_per_doc

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score one request's documents, updating the running stats."""
        with obs.span("service.request", backend=self.scorer.backend):
            return self.engine.score(features)

    def drift_summary(self) -> dict[str, float]:
        """Predicted vs measured µs/doc for this service's traffic.

        The deployment-time audit of the paper's cost predictors: the
        calibrated price the model was admitted under, the measured
        running unit cost, and their signed percentage gap.
        """
        return self.stats.drift_summary()

    def resilience_summary(self) -> list[dict[str, object]] | None:
        """Per-tier serving/breaker snapshot, or ``None`` when the
        service was built without a fallback chain."""
        return self.chain.tier_summary() if self.chain else None

    @property
    def fallback_ratio(self) -> float:
        """Fraction of requests served by a non-primary tier (0 when
        the service has no fallback chain)."""
        return self.chain.fallback_ratio if self.chain else 0.0

    def rank(self, features) -> np.ndarray:
        """Document indices in descending score order."""
        return self.engine.rank(features)

    def top_k(self, features, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scored documents.

        Partial selection (``argpartition`` + sort of the ``k`` winners)
        rather than a full per-request argsort.
        """
        return self.engine.top_k(features, k)
