"""A miniature document-scoring service.

Wraps any of the library's scorers behind one interface with the
operational features a query processor needs:

* per-request latency *budget* checking against the calibrated cost
  models (requests are priced before execution, the paper's predictors
  doing in deployment what they do at design time);
* batching of documents per query;
* running latency/volume statistics.

This is the integration surface a downstream search stack would adopt;
``examples/scoring_service.py`` shows the multi-stage variant.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.distill.student import DistilledStudent
from repro.exceptions import ReproError
from repro.forest.ensemble import TreeEnsemble
from repro.matmul.csr import CsrMatrix
from repro.quickscorer.cost import QuickScorerCostModel
from repro.quickscorer.scorer import QuickScorer
from repro.timing.network_predictor import NetworkTimePredictor
from repro.utils.validation import check_array_2d


class BudgetExceededError(ReproError):
    """The model's predicted cost exceeds the service's latency budget."""


@dataclass
class ServiceStats:
    """Running counters of a scoring service."""

    requests: int = 0
    documents: int = 0
    wall_seconds: float = 0.0
    predicted_us_per_doc: float = field(default=float("nan"))

    @property
    def mean_docs_per_request(self) -> float:
        return self.documents / self.requests if self.requests else 0.0


class ScoringService:
    """A single-model scoring endpoint with a latency budget.

    Parameters
    ----------
    model:
        A :class:`TreeEnsemble` (scored through QuickScorer) or a
        :class:`DistilledStudent` (dense or first-layer-sparse network).
    budget_us_per_doc:
        Optional per-document budget; construction fails with
        :class:`BudgetExceededError` when the calibrated cost model
        prices the model above it — the paper's design rule enforced at
        deployment time.
    predictor:
        Shared :class:`NetworkTimePredictor` for pricing networks.
    """

    def __init__(
        self,
        model: TreeEnsemble | DistilledStudent,
        *,
        budget_us_per_doc: float | None = None,
        predictor: NetworkTimePredictor | None = None,
        cost_model: QuickScorerCostModel | None = None,
    ) -> None:
        self.model = model
        self.stats = ServiceStats()
        self._score_fn, predicted = self._build(
            model, predictor, cost_model or QuickScorerCostModel()
        )
        self.stats.predicted_us_per_doc = predicted
        if budget_us_per_doc is not None and predicted > budget_us_per_doc:
            raise BudgetExceededError(
                f"model predicted at {predicted:.2f} us/doc exceeds the "
                f"{budget_us_per_doc:.2f} us/doc budget"
            )
        self.budget_us_per_doc = budget_us_per_doc

    @staticmethod
    def _build(
        model,
        predictor: NetworkTimePredictor | None,
        cost_model: QuickScorerCostModel,
    ) -> tuple[Callable[[np.ndarray], np.ndarray], float]:
        if isinstance(model, TreeEnsemble):
            scorer = QuickScorer(model)
            return scorer.score, cost_model.scoring_time_for(model)
        if isinstance(model, DistilledStudent):
            predictor = predictor or NetworkTimePredictor()
            first = model.network.first_layer
            if first.sparsity() > 0.5:
                report = predictor.predict(
                    model.input_dim,
                    model.hidden,
                    first_layer_matrix=CsrMatrix.from_dense(first.weight.data),
                )
                predicted = report.hybrid_total_us_per_doc
            else:
                report = predictor.predict(model.input_dim, model.hidden)
                predicted = report.dense_total_us_per_doc
            return model.predict, float(predicted)
        raise TypeError(
            f"unsupported model type {type(model).__name__}; expected "
            "TreeEnsemble or DistilledStudent"
        )

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score one request's documents, updating the running stats."""
        x = check_array_2d(features, "features")
        start = time.perf_counter()
        scores = self._score_fn(x)
        elapsed = time.perf_counter() - start
        self.stats.requests += 1
        self.stats.documents += len(x)
        self.stats.wall_seconds += elapsed
        return scores

    def rank(self, features) -> np.ndarray:
        """Document indices in descending score order."""
        return np.argsort(-self.score(features), kind="stable")

    def top_k(self, features, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scored documents."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return self.rank(features)[:k]
