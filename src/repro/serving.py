"""A miniature document-scoring service.

Wraps any model the scoring runtime knows (forests via QuickScorer,
dense / first-layer-sparse / quantized students, early-exit cascades —
see :mod:`repro.runtime`) behind one endpoint with the operational
features a query processor needs:

* per-request latency *budget* checking against the calibrated cost
  models (requests are priced before execution, the paper's predictors
  doing in deployment what they do at design time);
* micro-batching of documents per query through the shared
  :class:`~repro.runtime.batching.BatchEngine`;
* running latency/volume statistics with p50/p95/p99 percentiles.

This is the integration surface a downstream search stack would adopt;
``examples/scoring_service.py`` shows the multi-stage variant.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.runtime import (
    BatchEngine,
    BudgetExceededError,
    PricingContext,
    ServiceStats,
    is_scorer,
    make_scorer,
)

__all__ = ["BudgetExceededError", "ScoringService", "ServiceStats"]


class ScoringService:
    """A single-model scoring endpoint with a latency budget.

    Parameters
    ----------
    model:
        Any model with a registered runtime backend — a
        :class:`~repro.forest.ensemble.TreeEnsemble` (scored through
        QuickScorer), a :class:`~repro.distill.student.DistilledStudent`
        (dense or first-layer-sparse), an
        :class:`~repro.design.cascade.EarlyExitCascade` — or an
        already-built :class:`~repro.runtime.base.Scorer`.
    budget_us_per_doc:
        Optional per-document budget; construction fails with
        :class:`BudgetExceededError` when the calibrated cost model
        prices the model above it — the paper's design rule enforced at
        deployment time.
    predictor:
        Shared :class:`~repro.timing.network_predictor.
        NetworkTimePredictor` for pricing networks (defaults to the
        process-wide one).
    cost_model:
        QuickScorer cost model override for pricing forests.
    max_batch_size:
        Micro-batch size of the underlying :class:`BatchEngine`.
    backend:
        Optional explicit runtime backend name (see
        :func:`repro.runtime.backend_names`).
    **scorer_opts:
        Extra options forwarded to :func:`repro.runtime.make_scorer`
        (e.g. ``quantized_bits=8``).
    """

    def __init__(
        self,
        model,
        *,
        budget_us_per_doc: float | None = None,
        predictor=None,
        cost_model=None,
        max_batch_size: int | None = 256,
        backend: str | None = None,
        context: PricingContext | None = None,
        **scorer_opts,
    ) -> None:
        if context is None:
            context = PricingContext(predictor=predictor, qs_cost=cost_model)
        self.model = model
        if is_scorer(model):
            self.scorer = model
        else:
            self.scorer = make_scorer(
                model, backend=backend, context=context, **scorer_opts
            )
        self.engine = BatchEngine(
            self.scorer,
            max_batch_size=max_batch_size,
            budget_us_per_doc=budget_us_per_doc,
        )
        self.stats = self.engine.stats
        self.budget_us_per_doc = budget_us_per_doc

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score one request's documents, updating the running stats."""
        with obs.span("service.request", backend=self.scorer.backend):
            return self.engine.score(features)

    def drift_summary(self) -> dict[str, float]:
        """Predicted vs measured µs/doc for this service's traffic.

        The deployment-time audit of the paper's cost predictors: the
        calibrated price the model was admitted under, the measured
        running unit cost, and their signed percentage gap.
        """
        return self.stats.drift_summary()

    def rank(self, features) -> np.ndarray:
        """Document indices in descending score order."""
        return self.engine.rank(features)

    def top_k(self, features, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scored documents.

        Partial selection (``argpartition`` + sort of the ``k`` winners)
        rather than a full per-request argsort.
        """
        return self.engine.top_k(features, k)
