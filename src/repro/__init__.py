"""repro — Distilled Neural Networks for Efficient Learning to Rank.

A from-scratch reproduction of Nardini, Rulli, Trani & Venturini (ICDE
2024): knowledge-distilled, first-layer-pruned feed-forward rankers whose
CPU scoring time is predicted analytically from dense and sparse matrix-
multiplication models, compared against LambdaMART ensembles scored with
QuickScorer.

Quick start
-----------
>>> from repro import EfficientRankingPipeline
>>> pipe = EfficientRankingPipeline.for_msn30k()
>>> forest = pipe.evaluate_forest(pipe.zoo.small_forest)
>>> net = pipe.evaluate_network(pipe.zoo.low_latency[0], pruned=True)

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.core.pipeline import EfficientRankingPipeline, EvaluatedModel
from repro.core.zoo import ForestSpec, ISTELLA_ZOO, MSN30K_ZOO, NetworkSpec
from repro.datasets import (
    LtrDataset,
    ZNormalizer,
    load_svmlight,
    make_istella_s_like,
    make_msn30k_like,
    save_svmlight,
    train_validation_test_split,
)
from repro.design import (
    ArchitectureSearch,
    HighQualityScenario,
    LowLatencyScenario,
    ModelPoint,
    build_frontier,
)
from repro.distill import DistillationConfig, DistilledStudent, Distiller
from repro.forest import (
    GradientBoostingConfig,
    LambdaMartRanker,
    TreeEnsemble,
)
from repro.metrics import (
    fisher_randomization_test,
    mean_average_precision,
    mean_ndcg,
    ndcg,
)
from repro.nn import FeedForwardNetwork
from repro.pruning import FirstLayerPruner, FirstLayerPruningConfig
from repro.quickscorer import QuickScorer, QuickScorerCostModel
from repro.timing import (
    DenseTimePredictor,
    GflopsSurface,
    NetworkTimePredictor,
    SparseTimePredictor,
    calibrate_sparse_predictor,
    load_predictor,
    save_predictor,
)
from repro import obs
from repro.analysis import feature_selection_agreement, score_agreement
from repro.design import CascadeStage, EarlyExitCascade
from repro.nn import quantize_student
from repro.reporting import render_report, write_report
from repro.runtime import (
    AsyncConfig,
    BatchEngine,
    BudgetExceededError,
    ForestShape,
    NetworkShape,
    ParallelConfig,
    PipelineConfig,
    PipelineStageConfig,
    PricingContext,
    RankingPipeline,
    ResilienceConfig,
    ScoreCache,
    Scorer,
    ScorerBackend,
    ServiceConfig,
    ServiceStats,
    ShardedScorer,
    TenantConfig,
    backend_names,
    build_pipeline,
    make_scorer,
    price,
    register_backend,
)
from repro.serving import AsyncScoringService, ScoringService

__version__ = "1.0.0"

__all__ = [
    "EfficientRankingPipeline",
    "EvaluatedModel",
    "ForestSpec",
    "NetworkSpec",
    "MSN30K_ZOO",
    "ISTELLA_ZOO",
    "LtrDataset",
    "ZNormalizer",
    "load_svmlight",
    "save_svmlight",
    "make_msn30k_like",
    "make_istella_s_like",
    "train_validation_test_split",
    "ArchitectureSearch",
    "HighQualityScenario",
    "LowLatencyScenario",
    "ModelPoint",
    "build_frontier",
    "Distiller",
    "DistillationConfig",
    "DistilledStudent",
    "LambdaMartRanker",
    "GradientBoostingConfig",
    "TreeEnsemble",
    "ndcg",
    "mean_ndcg",
    "mean_average_precision",
    "fisher_randomization_test",
    "FeedForwardNetwork",
    "FirstLayerPruner",
    "FirstLayerPruningConfig",
    "QuickScorer",
    "QuickScorerCostModel",
    "GflopsSurface",
    "DenseTimePredictor",
    "SparseTimePredictor",
    "NetworkTimePredictor",
    "calibrate_sparse_predictor",
    "save_predictor",
    "load_predictor",
    "feature_selection_agreement",
    "score_agreement",
    "CascadeStage",
    "EarlyExitCascade",
    "PipelineConfig",
    "PipelineStageConfig",
    "RankingPipeline",
    "build_pipeline",
    "quantize_student",
    "render_report",
    "write_report",
    "AsyncScoringService",
    "ScoringService",
    "Scorer",
    "ScorerBackend",
    "ServiceConfig",
    "ServiceStats",
    "ShardedScorer",
    "ScoreCache",
    "AsyncConfig",
    "TenantConfig",
    "ParallelConfig",
    "ResilienceConfig",
    "BatchEngine",
    "BudgetExceededError",
    "PricingContext",
    "ForestShape",
    "NetworkShape",
    "make_scorer",
    "obs",
    "price",
    "register_backend",
    "backend_names",
]
