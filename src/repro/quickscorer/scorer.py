"""The QuickScorer traversal.

Scores documents exactly as the C++ QuickScorer does, vectorized across
the document batch: for every feature, the ascending threshold list is
scanned and the masks of all *false* nodes (``x[f] > threshold``) are
ANDed into each tree's ``leafidx``; the exit leaf of a tree is the lowest
set bit of its final ``leafidx``.

Besides scores, the traversal reports :class:`TraversalStats` — in
particular the measured fraction of false nodes, the quantity the
QuickScorer papers show drops from ~80% of nodes (classical root-to-leaf
traversal) to ~30%, and which drives the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.forest.ensemble import TreeEnsemble
from repro.quickscorer.encoder import EncodedForest, encode_forest
from repro.utils.validation import check_array_2d

_ONE = np.uint64(1)


def _lowest_set_bit_position(words: np.ndarray) -> np.ndarray:
    """Position of the lowest set bit across the word axis.

    ``words`` has shape (..., n_words); every row must have at least one
    set bit (QuickScorer guarantees the exit leaf survives all masks).
    """
    out = np.full(words.shape[:-1], -1, dtype=np.int64)
    for w in range(words.shape[-1]):
        v = words[..., w]
        pending = (out == -1) & (v != 0)
        if not pending.any():
            continue
        vp = v[pending]
        isolated = vp & (np.uint64(0) - vp)  # v & -v in modular arithmetic
        positions = np.bitwise_count(isolated - _ONE).astype(np.int64)
        out[pending] = w * 64 + positions
    if (out == -1).any():
        raise RuntimeError("a leafidx bitvector had no set bit")
    return out


@dataclass(frozen=True)
class TraversalStats:
    """Operation counts measured during one scoring call."""

    n_docs: int
    n_trees: int
    total_internal_nodes: int
    false_nodes_total: int
    thresholds_examined_total: int

    @property
    def false_nodes_per_doc(self) -> float:
        """Average number of masks ANDed per document."""
        return self.false_nodes_total / max(self.n_docs, 1)

    @property
    def false_node_fraction(self) -> float:
        """Fraction of all internal nodes evaluated false per document."""
        if self.total_internal_nodes == 0:
            return 0.0
        return self.false_nodes_per_doc / self.total_internal_nodes

    @property
    def nodes_touched_fraction(self) -> float:
        """Fraction of nodes whose threshold was examined at all.

        Includes, per feature, the one extra comparison that stops the
        scan; QuickScorer's headline claim is that this stays far below
        the ~80% of classical traversal.
        """
        if self.total_internal_nodes == 0:
            return 0.0
        return self.thresholds_examined_total / (
            max(self.n_docs, 1) * self.total_internal_nodes
        )


class QuickScorer:
    """Feature-wise scorer over an encoded forest.

    Parameters
    ----------
    forest:
        A :class:`TreeEnsemble` (encoded on construction) or an already
        :class:`EncodedForest`.
    batch_size:
        Documents scored per internal batch; bounds the
        ``docs x trees x words`` working array.
    """

    def __init__(
        self, forest: TreeEnsemble | EncodedForest, batch_size: int = 2048
    ) -> None:
        if isinstance(forest, TreeEnsemble):
            forest = encode_forest(forest)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.encoded = forest
        self.batch_size = batch_size
        self.last_stats: TraversalStats | None = None

    def score(self, features) -> np.ndarray:
        """Score a batch of documents; records :attr:`last_stats`."""
        x = check_array_2d(features, "features")
        if x.shape[1] != self.encoded.n_features:
            raise ValueError(
                f"expected {self.encoded.n_features} features, got {x.shape[1]}"
            )
        scores = np.empty(len(x), dtype=np.float64)
        false_total = 0
        examined_total = 0
        # Lightweight timing hook: a no-op unless the process-wide
        # tracer is enabled (this is the forest-serving hot path).
        with obs.span(
            "quickscorer.score", docs=len(x), trees=self.encoded.n_trees
        ):
            for start in range(0, len(x), self.batch_size):
                chunk = x[start : start + self.batch_size]
                chunk_scores, n_false, n_exam = self._score_chunk(chunk)
                scores[start : start + len(chunk)] = chunk_scores
                false_total += n_false
                examined_total += n_exam
        self.last_stats = TraversalStats(
            n_docs=len(x),
            n_trees=self.encoded.n_trees,
            total_internal_nodes=self.encoded.total_internal_nodes,
            false_nodes_total=false_total,
            thresholds_examined_total=examined_total,
        )
        return scores

    def _score_chunk(self, x: np.ndarray) -> tuple[np.ndarray, int, int]:
        enc = self.encoded
        n_docs = len(x)
        leafidx = np.broadcast_to(
            enc.init_leafidx, (n_docs, enc.n_trees, enc.n_words)
        ).copy()

        false_total = 0
        examined_total = 0
        for flist in enc.feature_lists:
            xf = x[:, flist.feature]
            # Number of false nodes per doc: thresholds strictly below x.
            counts = np.searchsorted(flist.thresholds, xf, side="left")
            false_total += int(counts.sum())
            # Each doc examines its false nodes plus the stopping one.
            examined_total += int(
                np.minimum(counts + 1, len(flist.thresholds)).sum()
            )
            max_count = int(counts.max()) if n_docs else 0
            # Ascending scan: node i is applied by docs with counts > i.
            # Docs are sorted implicitly by processing masks in order and
            # shrinking the active set.
            if max_count == 0:
                continue
            order = np.argsort(-counts, kind="stable")
            sorted_counts = counts[order]
            for i in range(max_count):
                # Active prefix: docs whose count exceeds i.
                n_active = int(np.searchsorted(-sorted_counts, -i, side="left"))
                if n_active == 0:
                    break
                docs = order[:n_active]
                trees = flist.tree_ids[i]
                leafidx[docs, trees, :] &= flist.masks[i]
        positions = _lowest_set_bit_position(leafidx)
        tree_idx = np.arange(enc.n_trees)[None, :]
        values = enc.leaf_values[tree_idx, positions]
        return enc.base_score + values.sum(axis=1), false_total, examined_total
