"""Bitvector encoding of a tree ensemble for QuickScorer.

For every tree, leaves are numbered left-to-right; every internal node
tests ``x[feature] <= threshold`` and, when that test is *false*, its
whole left subtree becomes unreachable.  The node's *mask* is therefore a
bitvector with ones everywhere except the positions of its left-subtree
leaves.  ANDing the masks of all false nodes of a tree yields ``leafidx``
whose lowest set bit is the exit leaf (Section 2.2 of the paper).

Nodes are then re-organized *feature by feature* with thresholds in
ascending order: scoring a document scans each feature's list while
``x[f] > threshold`` and stops at the first test that holds, because every
later threshold would hold as well.

Bitvectors are stored LSB-first in little-endian ``uint64`` words; trees
with more than 64 leaves simply use multiple words per bitvector, which
the cost model charges for (the paper notes the > 64-leaf penalty that
RapidScorer later addresses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import QuickScorerError
from repro.forest.ensemble import TreeEnsemble
from repro.forest.tree import RegressionTree


@dataclass(frozen=True)
class FeatureNodeList:
    """All (threshold ascending) false-node masks testing one feature."""

    feature: int
    thresholds: np.ndarray  # (n,) float64, ascending
    tree_ids: np.ndarray  # (n,) int32
    masks: np.ndarray  # (n, n_words) uint64


@dataclass(frozen=True)
class EncodedForest:
    """QuickScorer-ready representation of a :class:`TreeEnsemble`."""

    n_trees: int
    n_features: int
    n_words: int
    max_leaves: int
    init_leafidx: np.ndarray  # (n_trees, n_words) uint64, valid-leaf bits
    leaf_values: np.ndarray  # (n_trees, n_words * 64) float64, weighted
    base_score: float
    feature_lists: tuple[FeatureNodeList, ...]
    total_internal_nodes: int

    def structure_bytes(self) -> int:
        """Approximate memory footprint of the traversal structures.

        Per internal node: fp32 threshold, int32 tree id and the mask
        words; per tree: the leaf-value row and the running leafidx.
        Used by BWQS to size cache-resident blocks.
        """
        node_bytes = self.total_internal_nodes * (4 + 4 + 8 * self.n_words)
        leaf_bytes = self.leaf_values.size * 8
        leafidx_bytes = self.n_trees * self.n_words * 8
        return node_bytes + leaf_bytes + leafidx_bytes


def _leaf_spans(tree: RegressionTree) -> tuple[np.ndarray, np.ndarray]:
    """Per-node [lo, hi) range of left-to-right leaf positions it covers."""
    lo = np.zeros(tree.n_nodes, dtype=np.int64)
    hi = np.zeros(tree.n_nodes, dtype=np.int64)

    counter = 0

    def visit(node: int) -> None:
        nonlocal counter
        lo[node] = counter
        if tree.is_leaf(node):
            counter += 1
        else:
            visit(int(tree.left[node]))
            visit(int(tree.right[node]))
        hi[node] = counter

    visit(0)
    return lo, hi


def _range_mask(lo: int, hi: int, n_words: int) -> np.ndarray:
    """uint64 words with bits [lo, hi) cleared and all others set."""
    words = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    for bit in range(lo, hi):
        w, b = divmod(bit, 64)
        words[w] &= np.uint64(~(1 << b) & 0xFFFFFFFFFFFFFFFF)
    return words


def _ones_mask(n_bits: int, n_words: int) -> np.ndarray:
    """uint64 words with the lowest ``n_bits`` bits set."""
    words = np.zeros(n_words, dtype=np.uint64)
    full, rem = divmod(n_bits, 64)
    words[:full] = np.uint64(0xFFFFFFFFFFFFFFFF)
    if rem:
        words[full] = np.uint64((1 << rem) - 1)
    return words


def encode_forest(ensemble: TreeEnsemble) -> EncodedForest:
    """Build the QuickScorer structures for ``ensemble``.

    The per-tree shrinkage weight is folded into the stored leaf values,
    so scoring is ``base_score + sum_t leaf_values[t, exit_leaf_t]``.
    """
    if ensemble.n_trees == 0:
        raise QuickScorerError("cannot encode an empty ensemble")
    max_leaves = ensemble.max_leaves
    n_words = max(1, -(-max_leaves // 64))  # ceil division

    init = np.zeros((ensemble.n_trees, n_words), dtype=np.uint64)
    leaf_values = np.zeros((ensemble.n_trees, n_words * 64), dtype=np.float64)

    per_feature: dict[int, list[tuple[float, int, np.ndarray]]] = {}
    total_internal = 0

    for t, (tree, weight) in enumerate(zip(ensemble.trees, ensemble.weights)):
        lo, hi = _leaf_spans(tree)
        init[t] = _ones_mask(tree.n_leaves, n_words)
        leaf_order = tree.leaf_indices()
        leaf_values[t, : len(leaf_order)] = weight * tree.value[leaf_order]

        for node in tree.internal_nodes():
            total_internal += 1
            left_child = int(tree.left[node])
            mask = _range_mask(int(lo[left_child]), int(hi[left_child]), n_words)
            feature = int(tree.feature[node])
            per_feature.setdefault(feature, []).append(
                (float(tree.threshold[node]), t, mask)
            )

    lists = []
    for feature in sorted(per_feature):
        entries = per_feature[feature]
        entries.sort(key=lambda e: e[0])
        thresholds = np.asarray([e[0] for e in entries], dtype=np.float64)
        tree_ids = np.asarray([e[1] for e in entries], dtype=np.int32)
        masks = np.stack([e[2] for e in entries])
        lists.append(
            FeatureNodeList(
                feature=feature,
                thresholds=thresholds,
                tree_ids=tree_ids,
                masks=masks,
            )
        )

    return EncodedForest(
        n_trees=ensemble.n_trees,
        n_features=ensemble.n_features,
        n_words=n_words,
        max_leaves=max_leaves,
        init_leafidx=init,
        leaf_values=leaf_values,
        base_score=ensemble.base_score,
        feature_lists=tuple(lists),
        total_internal_nodes=total_internal,
    )
