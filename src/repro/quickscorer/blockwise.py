"""Block-Wise QuickScorer (BWQS) partitioning.

Large forests exceed the L3 cache; BWQS splits the ensemble into blocks
of trees whose traversal structures fit L3 and scores each block over the
whole document batch before moving on, trading one pass for a low
cache-miss ratio (Section 2.2).  This module computes the partition and
the per-block footprints; the cost model charges a miss penalty to
un-blocked scoring of oversized forests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.forest.ensemble import TreeEnsemble
from repro.hardware.cpu import CpuSpec, I9_9900K


def tree_structure_bytes(n_internal_nodes: int, n_leaves: int) -> int:
    """Approximate QuickScorer footprint of one tree.

    Per internal node: fp32 threshold, int32 tree id, and one mask word
    per 64 leaves; per leaf: an fp64 value; plus one leafidx word row.
    """
    n_words = max(1, -(-n_leaves // 64))
    return n_internal_nodes * (4 + 4 + 8 * n_words) + n_leaves * 8 + 8 * n_words


def forest_bytes(ensemble: TreeEnsemble) -> int:
    """Total QuickScorer structure footprint of ``ensemble``."""
    return sum(
        tree_structure_bytes(len(t.internal_nodes()), t.n_leaves)
        for t in ensemble.trees
    )


@dataclass(frozen=True)
class BlockPlan:
    """A BWQS partition: contiguous tree ranges and their footprints."""

    block_ranges: tuple[tuple[int, int], ...]
    block_bytes: tuple[int, ...]
    capacity_bytes: int

    @property
    def n_blocks(self) -> int:
        return len(self.block_ranges)

    @property
    def fits_cache(self) -> bool:
        """Whether every block fits the target cache level."""
        return all(b <= self.capacity_bytes for b in self.block_bytes)


def partition_into_blocks(
    ensemble: TreeEnsemble,
    cpu: CpuSpec = I9_9900K,
    *,
    cache_fraction: float = 0.5,
) -> BlockPlan:
    """Greedily pack consecutive trees into L3-sized blocks.

    ``cache_fraction`` reserves headroom for the document batch and other
    traffic; the original BWQS similarly does not use the whole L3.
    """
    if not 0 < cache_fraction <= 1:
        raise ValueError(f"cache_fraction must be in (0, 1], got {cache_fraction}")
    capacity = int(cpu.l3.size_bytes * cache_fraction)
    sizes = [
        tree_structure_bytes(len(t.internal_nodes()), t.n_leaves)
        for t in ensemble.trees
    ]
    ranges: list[tuple[int, int]] = []
    block_bytes: list[int] = []
    start = 0
    acc = 0
    for i, size in enumerate(sizes):
        if acc and acc + size > capacity:
            ranges.append((start, i))
            block_bytes.append(acc)
            start, acc = i, 0
        acc += size
    ranges.append((start, len(sizes)))
    block_bytes.append(acc)
    return BlockPlan(
        block_ranges=tuple(ranges),
        block_bytes=tuple(block_bytes),
        capacity_bytes=capacity,
    )
