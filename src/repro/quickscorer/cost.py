"""Scoring-time cost model for QuickScorer.

The paper's testbed (single-thread AVX2 C++ on an i9-9900K) is not
available, so per-document scoring times are produced by an analytic
model calibrated on the *published* measurements:

========================  ==========
forest                    µs/doc
========================  ==========
878 trees x 64 leaves     8.2   (Tables 1, 8)
500 trees x 64 leaves     4.9   (Tables 6, 8)
300 trees x 64 leaves     3.0   (Tables 6, 8)
========================  ==========

Those three points are fit almost exactly by

    T = c0 + n_trees * (c_tree + f_false * (leaves - 1) * (c_cmp + w * c_and))

with ``w = ceil(leaves / 64)`` mask words per bitvector, ``f_false ~ 0.3``
(the false-node fraction QuickScorer measures; the scorer's
:class:`~repro.quickscorer.scorer.TraversalStats` can substitute the real
measured fraction), and the calibrated event costs below.  The model also
reproduces the paper's side statements: a 256-leaf ensemble is "more than
4x" slower per tree than a 64-leaf one (the extra mask words), and
scoring grows linearly in trees and leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.forest.ensemble import TreeEnsemble
from repro.hardware.cpu import CpuSpec, I9_9900K
from repro.quickscorer.blockwise import forest_bytes


@dataclass(frozen=True)
class QuickScorerCostModel:
    """Analytic µs/doc model for (blocked, vectorized) QuickScorer.

    Attributes
    ----------
    overhead_ns:
        Per-document fixed cost (score accumulation setup, batching).
    tree_ns:
        Per-tree cost: leafidx reset, exit-leaf lookup, value add.
    compare_ns:
        One threshold comparison in the feature-wise scan.
    and_word_ns:
        ANDing one 64-bit mask word into a leafidx.
    false_fraction:
        Default fraction of internal nodes evaluated false; override with
        a measured value from :class:`TraversalStats` when available.
    unblocked_miss_factor:
        Slow-down applied when the forest exceeds the L3 cache and BWQS
        blocking is disabled.
    """

    overhead_ns: float = 300.0
    tree_ns: float = 2.5
    compare_ns: float = 0.26
    and_word_ns: float = 0.086
    false_fraction: float = 0.30
    unblocked_miss_factor: float = 1.8
    #: Throughput gain of vQS (AVX2, 8 documents per 256-bit register)
    #: over the scalar traversal; the paper's measurements are vQS, so
    #: the calibrated per-event costs above are the *vectorized* ones and
    #: the scalar variant multiplies them back up.  Lucchese et al.
    #: report ~2-3x from SIMD, not the full 8x (bitvector ANDs stay
    #: per-document).
    vectorized_speedup: float = 2.5
    cpu: CpuSpec = I9_9900K

    def scalar_variant(self) -> "QuickScorerCostModel":
        """Cost model of the non-SIMD (scalar) QuickScorer."""
        import dataclasses

        return dataclasses.replace(
            self,
            tree_ns=self.tree_ns * self.vectorized_speedup,
            compare_ns=self.compare_ns * self.vectorized_speedup,
            and_word_ns=self.and_word_ns * self.vectorized_speedup,
        )

    def per_tree_ns(
        self, n_leaves: int, false_fraction: float | None = None
    ) -> float:
        """Average traversal cost of one tree, in nanoseconds."""
        if n_leaves < 2:
            return self.tree_ns
        frac = self.false_fraction if false_fraction is None else false_fraction
        words = max(1, -(-n_leaves // 64))
        per_false = self.compare_ns + words * self.and_word_ns
        return self.tree_ns + frac * (n_leaves - 1) * per_false

    def scoring_time_us(
        self,
        n_trees: int,
        n_leaves: int,
        *,
        false_fraction: float | None = None,
        blockwise: bool = True,
        forest_footprint_bytes: int | None = None,
    ) -> float:
        """Predicted µs/doc for an ensemble of the given shape."""
        if n_trees <= 0:
            raise ValueError(f"n_trees must be positive, got {n_trees}")
        if n_leaves < 1:
            raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")
        total_ns = self.overhead_ns + n_trees * self.per_tree_ns(
            n_leaves, false_fraction
        )
        if not blockwise:
            footprint = forest_footprint_bytes
            if footprint is None:
                # Rough footprint from shape alone.
                words = max(1, -(-n_leaves // 64))
                footprint = n_trees * (
                    (n_leaves - 1) * (8 + 8 * words) + n_leaves * 8
                )
            if footprint > self.cpu.l3.size_bytes:
                total_ns *= self.unblocked_miss_factor
        return total_ns / 1000.0

    def scoring_time_for(
        self,
        ensemble: TreeEnsemble,
        *,
        false_fraction: float | None = None,
        blockwise: bool = True,
    ) -> float:
        """Predicted µs/doc for a concrete trained ensemble."""
        return self.scoring_time_us(
            ensemble.n_trees,
            ensemble.max_leaves,
            false_fraction=false_fraction,
            blockwise=blockwise,
            forest_footprint_bytes=forest_bytes(ensemble),
        )
