"""GPU QuickScorer cost model (Lettich et al., HPCS 2017 — Section 2.2).

The paper restricts its own evaluation to CPU and "plan[s] to extend it
to the GPU in the future"; this module provides that extension as a cost
model calibrated on the published GPU-QS behaviour: "up to 100x faster
than the corresponding CPU version, when dealing with very large forests
(20,000 trees)".

The model captures the two regimes that drive the CPU/GPU crossover:

* a *fixed* per-batch cost — kernel launches plus PCIe transfer of the
  document-feature matrix — that amortizes over the batch;
* a *utilization* curve: a small forest cannot fill the device, so the
  effective speed-up over one CPU core ramps from ~1 towards
  ``max_speedup`` as the tree count grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quickscorer.cost import QuickScorerCostModel


@dataclass(frozen=True)
class GpuSpec:
    """Coarse device parameters (defaults: a mid-range discrete GPU)."""

    name: str = "generic discrete GPU"
    kernel_launch_us: float = 8.0
    pcie_gb_per_s: float = 12.0

    def transfer_us(self, n_docs: int, n_features: int) -> float:
        """Host-to-device time for a fp32 feature matrix."""
        bytes_moved = 4 * n_docs * n_features
        return bytes_moved / (self.pcie_gb_per_s * 1000.0)  # GB/s -> B/us


@dataclass(frozen=True)
class GpuQuickScorerCostModel:
    """µs/doc model of GPU QuickScorer for batched scoring.

    Attributes
    ----------
    cpu_model:
        The single-thread CPU model the speed-up is measured against.
    max_speedup:
        Asymptotic speed-up at full device utilization (Lettich et al.:
        ~100x at 20k trees).
    half_utilization_trees:
        Forest size at which half the asymptotic speed-up is reached;
        the saturation curve is ``trees / (trees + half)``.
    """

    gpu: GpuSpec = GpuSpec()
    cpu_model: QuickScorerCostModel = QuickScorerCostModel()
    max_speedup: float = 120.0
    half_utilization_trees: int = 3000
    half_utilization_docs: int = 4000
    #: Per-document device-side overhead (result copy-back, sync).
    per_doc_overhead_us: float = 0.3

    def __post_init__(self) -> None:
        if self.max_speedup <= 1:
            raise ValueError("max_speedup must exceed 1")
        if self.half_utilization_trees <= 0 or self.half_utilization_docs <= 0:
            raise ValueError("half-utilization parameters must be positive")

    def speedup(self, n_trees: int, batch_docs: int = 100_000) -> float:
        """Effective kernel speed-up over one CPU core.

        GPU-QS parallelizes over trees *and* documents, so both axes must
        be large to fill the device: the utilization is the product of
        two saturation curves.
        """
        if n_trees <= 0:
            raise ValueError(f"n_trees must be positive, got {n_trees}")
        if batch_docs <= 0:
            raise ValueError(f"batch_docs must be positive, got {batch_docs}")
        tree_util = n_trees / (n_trees + self.half_utilization_trees)
        doc_util = batch_docs / (batch_docs + self.half_utilization_docs)
        return max(1.0, self.max_speedup * tree_util * doc_util)

    def scoring_time_us(
        self,
        n_trees: int,
        n_leaves: int,
        *,
        batch_docs: int = 10_000,
        n_features: int = 136,
    ) -> float:
        """Amortized µs/doc for scoring ``batch_docs`` documents."""
        if batch_docs <= 0:
            raise ValueError(f"batch_docs must be positive, got {batch_docs}")
        cpu_us = self.cpu_model.scoring_time_us(n_trees, n_leaves)
        kernel_us_per_doc = cpu_us / self.speedup(n_trees, batch_docs)
        fixed_us = self.gpu.kernel_launch_us + self.gpu.transfer_us(
            batch_docs, n_features
        )
        return (
            kernel_us_per_doc
            + self.per_doc_overhead_us
            + fixed_us / batch_docs
        )

    def crossover_trees(
        self,
        n_leaves: int = 64,
        *,
        batch_docs: int = 128,
        n_features: int = 136,
    ) -> int:
        """Smallest forest size where the GPU beats the CPU."""
        for n_trees in (50, 100, 200, 300, 500, 1000, 2000, 5000, 10_000, 20_000):
            gpu = self.scoring_time_us(
                n_trees, n_leaves, batch_docs=batch_docs, n_features=n_features
            )
            cpu = self.cpu_model.scoring_time_us(n_trees, n_leaves)
            if gpu < cpu:
                return n_trees
        return 40_000
