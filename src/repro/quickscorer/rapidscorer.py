"""RapidScorer cost model (Ye et al., KDD 2018 — Section 2.2).

QuickScorer's bitvectors span ``ceil(leaves / 64)`` machine words, so
above 64 leaves every mask AND costs multiple instructions.  RapidScorer
removes this sensitivity with two ideas the paper summarizes:

* the **epitome** encoding — a mask is represented only by the byte span
  it actually modifies, making the update cost (almost) independent of
  the leaf count;
* **node merging** — nodes of different trees testing the same feature
  with the same threshold are evaluated once; machine-learnt forests
  contain many such duplicates.

This cost model mirrors :class:`QuickScorerCostModel` with those two
changes, reproducing the related-work claim that RapidScorer overtakes
QuickScorer on forests with more than 64 leaves while staying comparable
below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quickscorer.cost import QuickScorerCostModel


@dataclass(frozen=True)
class RapidScorerCostModel:
    """Analytic µs/doc model for RapidScorer.

    Attributes
    ----------
    base:
        The QuickScorer model supplying the shared event costs
        (comparisons, per-tree work, per-document overhead).
    epitome_update_ns:
        Cost of one epitome mask update — independent of the leaf count
        (vs ``words * and_word_ns`` in QuickScorer).
    merge_fraction:
        Fraction of false-node evaluations saved by node merging;
        Ye et al. report substantial duplicate-threshold populations in
        boosted forests.
    """

    base: QuickScorerCostModel = QuickScorerCostModel()
    epitome_update_ns: float = 0.14
    merge_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.epitome_update_ns <= 0:
            raise ValueError("epitome_update_ns must be positive")
        if not 0.0 <= self.merge_fraction < 1.0:
            raise ValueError(
                f"merge_fraction must be in [0, 1), got {self.merge_fraction}"
            )

    def per_tree_ns(
        self, n_leaves: int, false_fraction: float | None = None
    ) -> float:
        """Average traversal cost of one tree, leaf-count insensitive."""
        if n_leaves < 2:
            return self.base.tree_ns
        frac = (
            self.base.false_fraction
            if false_fraction is None
            else false_fraction
        )
        effective_nodes = (1.0 - self.merge_fraction) * frac * (n_leaves - 1)
        per_false = self.base.compare_ns + self.epitome_update_ns
        return self.base.tree_ns + effective_nodes * per_false

    def scoring_time_us(
        self,
        n_trees: int,
        n_leaves: int,
        *,
        false_fraction: float | None = None,
    ) -> float:
        """Predicted µs/doc for an ensemble of the given shape."""
        if n_trees <= 0:
            raise ValueError(f"n_trees must be positive, got {n_trees}")
        if n_leaves < 1:
            raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")
        total_ns = self.base.overhead_ns + n_trees * self.per_tree_ns(
            n_leaves, false_fraction
        )
        return total_ns / 1000.0

    def crossover_leaves(self, n_trees: int = 500) -> int:
        """Smallest leaf count at which RapidScorer beats QuickScorer."""
        for leaves in (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024):
            if self.scoring_time_us(n_trees, leaves) < self.base.scoring_time_us(
                n_trees, leaves
            ):
                return leaves
        return 2048
