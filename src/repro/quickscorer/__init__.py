"""QuickScorer: interleaved feature-wise traversal of tree ensembles.

Reproduces the state-of-the-art tree-ensemble scorer the paper compares
against (Lucchese et al., SIGIR 2015; Dato et al., TOIS 2016):

* :mod:`repro.quickscorer.encoder` — per-tree bitvector encoding: each
  internal node carries a mask zeroing the leaves that become unreachable
  when its test evaluates *false*; ANDing the masks of all false nodes
  leaves the exit leaf as the first set bit.
* :mod:`repro.quickscorer.scorer` — the feature-wise traversal itself,
  numerically identical to walking every tree root-to-leaf (tested
  property), plus per-document visited-node statistics.
* :mod:`repro.quickscorer.blockwise` — BWQS tree blocking against the L3
  cache.
* :mod:`repro.quickscorer.cost` — the µs/doc cost model calibrated on the
  paper's published measurements (8.2 µs for 878 trees x 64 leaves, ...).
"""

from repro.quickscorer.encoder import EncodedForest, encode_forest
from repro.quickscorer.scorer import QuickScorer, TraversalStats
from repro.quickscorer.blockwise import partition_into_blocks, forest_bytes
from repro.quickscorer.cost import QuickScorerCostModel
from repro.quickscorer.rapidscorer import RapidScorerCostModel
from repro.quickscorer.gpu import GpuQuickScorerCostModel, GpuSpec

__all__ = [
    "GpuQuickScorerCostModel",
    "GpuSpec",
    "EncodedForest",
    "encode_forest",
    "QuickScorer",
    "TraversalStats",
    "partition_into_blocks",
    "forest_bytes",
    "QuickScorerCostModel",
    "RapidScorerCostModel",
]
