"""The degradation ladder: serving through faults without failing.

The paper's deployment story prices an architecture against a latency
budget before it serves; this example shows what keeps that promise when
the chosen model misbehaves *at runtime*.  A QuickScorer forest is the
primary backend, a first-layer-sparse student the cheap stand-in and a
linear stub the last resort.  Faults are injected on a deterministic
schedule (every 3rd request the forest raises), and the fallback chain
absorbs them: every query is answered, the breaker book-keeps the
failures, and the resilience report shows exactly which tier served
what.

A second scenario trips the circuit breaker with a hard outage and then
heals it: under a manual clock the breaker walks closed -> open ->
half-open -> closed deterministically, the recovery path a production
service needs to be *testable*, not just plausible.

Run:  python examples/resilient_service.py
"""

from __future__ import annotations

import numpy as np

from repro import ResilienceConfig, ScoringService, ServiceConfig, obs
from repro.obs.probe import build_probe_models
from repro.runtime import (
    BreakerState,
    CircuitBreakerConfig,
    CircuitOpenError,
    FaultPolicy,
    InjectedFaultError,
    ManualClock,
    ResilientScorer,
    RetryPolicy,
    StubScorer,
    make_scorer,
    with_faults,
)

SEED = 7


def degradation_ladder() -> None:
    print("=" * 72)
    print("1. Degradation ladder: faulty forest -> sparse student -> stub")
    print("=" * 72)
    models = build_probe_models(n_queries=18, docs_per_query=12, seed=SEED)
    dataset = models["dataset"]

    primary = with_faults(
        make_scorer(models["quickscorer"], backend="quickscorer"),
        FaultPolicy.every(3),  # every 3rd request the forest raises
    )
    fallback = make_scorer(models["sparse-network"], backend="sparse-network")
    service = ScoringService(
        primary,
        ServiceConfig(
            resilience=ResilienceConfig(
                fallback_models=(fallback, StubScorer()),
                retry=RetryPolicy(max_attempts=1),  # fail fast, degrade
            )
        ),
    )

    answered = 0
    for start, stop in zip(dataset.query_ptr[:-1], dataset.query_ptr[1:]):
        scores = service.score(dataset.features[start:stop])
        assert np.all(np.isfinite(scores))
        answered += 1

    print(f"\n{service.chain.describe()}")
    print(f"queries answered : {answered} / {answered} (none failed)")
    print(f"fallback ratio   : {service.fallback_ratio:.1%}")
    for tier in service.resilience_summary():
        print(
            f"  {tier['backend']:<16} served={tier['served']:<4} "
            f"failures={tier['failures']:<4} breaker={tier['breaker']}"
        )


def breaker_lifecycle() -> None:
    print()
    print("=" * 72)
    print("2. Circuit breaker: trip, cool down, probe, recover")
    print("=" * 72)
    clock = ManualClock()
    outage = with_faults(
        StubScorer(weights=[1.0, -1.0]),
        FaultPolicy.first(3),  # hard outage: the first 3 calls fail
        sleep=clock.sleep,
    )
    scorer = ResilientScorer(
        outage,
        retry=RetryPolicy(max_attempts=1),
        breaker=CircuitBreakerConfig(
            window=4,
            min_samples=2,
            failure_rate_threshold=0.5,
            cooldown_seconds=1.0,
            half_open_probes=2,
        ),
        clock=clock,
        sleep=clock.sleep,
    )
    x = np.array([[0.4, 0.1], [0.2, 0.9]])

    def attempt(label: str) -> None:
        try:
            scorer.score(x)
            outcome = "served"
        except (InjectedFaultError, CircuitOpenError) as exc:
            outcome = type(exc).__name__
        print(
            f"  t={clock.now:4.1f}s {label:<26} -> {outcome:<20} "
            f"breaker={scorer.breaker.state.value}"
        )

    attempt("outage call 1")
    attempt("outage call 2 (trips)")
    attempt("while open (rejected)")
    clock.advance(1.2)
    print(f"  t={clock.now:4.1f}s cooldown elapsed           -> "
          f"breaker={scorer.breaker.state.value}")
    attempt("half-open probe (fails)")
    clock.advance(1.2)
    attempt("half-open probe (succeeds)")
    attempt("second probe (closes)")
    assert scorer.breaker.state is BreakerState.CLOSED
    print("  transition history:",
          " -> ".join(state.value for state, _ in scorer.breaker.history))


def main() -> None:
    degradation_ladder()
    breaker_lifecycle()
    print()
    print("=" * 72)
    print("Resilience report (obs.resilience_report)")
    print("=" * 72)
    print(obs.resilience_report().render())


if __name__ == "__main__":
    main()
