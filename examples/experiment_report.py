"""Generate a full experiment report for one dataset.

Drives :mod:`repro.reporting` end to end: builds the scaled MSN30K-like
pipeline, evaluates the deployment forests and the pruned students, and
writes a Markdown report with the quality/time table, the Pareto summary
and the Fisher-randomization significance matrix.

Run:  python examples/experiment_report.py [output.md]
"""

import sys

from repro import EfficientRankingPipeline
from repro.core.config import ExperimentScale
from repro.reporting import write_report


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "experiment_report.md"
    # A small scale so the example finishes in a few minutes; raise the
    # numbers (or use the default ExperimentScale) for tighter results.
    scale = ExperimentScale(
        n_queries=180,
        docs_per_query=20,
        tree_scale=0.08,
        distill_epochs=25,
        distill_milestones=(16, 21),
        distill_learning_rate=0.005,
        steps_per_epoch=20,
        prune_epochs=8,
        finetune_epochs=4,
        prune_milestones=(),
        seed=3,
    )
    pipeline = EfficientRankingPipeline.for_msn30k(scale)
    print("Training, distilling and pruning the model zoo ...")
    text = write_report(pipeline, output)
    print(f"\nreport written to {output}\n")
    print(text)


if __name__ == "__main__":
    main()
