"""Designing a ranker under a latency budget — without training anything.

The paper's central engineering claim (Sections 4-5): given only a CPU
model, the dense and sparse time predictors locate *any* feed-forward
architecture on the time axis analytically, so only the few candidates
matching a latency budget need to be trained.

This example reproduces that workflow for a Web-search deployment that
must score a document in at most 1.5 us on the simulated i9-9900K:

1. measure the GFLOPS surface (Fig. 6) and calibrate the sparse kernel
   coefficients by difference (Section 4.4);
2. enumerate pyramidal architectures and price each one dense and with a
   pruned first layer;
3. print the candidates that fit the budget, largest capacity first, and
   compare them to the tree-ensemble shapes that fit the same budget.

Run:  python examples/latency_budget_design.py
"""

from repro import (
    ArchitectureSearch,
    NetworkTimePredictor,
)
from repro.design import forest_budget_sweep
from repro.utils.tables import format_table

BUDGET_US = 1.5
N_FEATURES = 136  # MSN30K schema


def main() -> None:
    print("Calibrating predictors on the simulated i9-9900K ...")
    predictor = NetworkTimePredictor()
    zones = predictor.dense.surface.zone_summary()
    print(
        f"  dense GFLOPS zones: k<128 -> {zones.low_k_gflops:.0f}, "
        f"128<=k<512 -> {zones.mid_k_gflops:.0f}, "
        f"k>=512 -> {zones.high_k_gflops:.0f}"
    )
    sparse = predictor.sparse
    print(
        f"  sparse kernel: L_c={sparse.l_c_vec_ns:.3f} ns/vec, "
        f"L_b={sparse.l_b_vec_ns:.3f} ns/vec "
        f"(L_c/L_b = {sparse.l_c_over_l_b:.2f}, paper observes ~2)"
    )

    print(f"\nSearching architectures under {BUDGET_US} us/doc ...")
    search = ArchitectureSearch(N_FEATURES, predictor)
    candidates = search.within_budget(BUDGET_US, pruned=True, max_candidates=8)
    rows = [
        (
            c.describe(),
            c.n_parameters,
            round(c.dense_time_us, 2),
            round(c.pruned_time_us, 2),
        )
        for c in candidates
    ]
    print(
        format_table(
            ["Architecture", "Params", "Dense us/doc", "Pruned us/doc"],
            rows,
            title=f"Top candidates within {BUDGET_US} us/doc (pruned 1st layer)",
        )
    )

    print("\nTree ensembles fitting the same budget (QuickScorer):")
    forest_rows = [
        (result.describe(), round(result.time_us, 2))
        for result in forest_budget_sweep(BUDGET_US, leaves_options=(16, 32, 64))
    ]
    print(format_table(["Forest", "us/doc"], forest_rows))

    print(
        "\nOnly the architectures above need to be trained — the search "
        "space is pruned analytically, as in Section 5 of the paper."
    )


if __name__ == "__main__":
    main()
