"""Anatomy of dense and sparse matrix multiplication on the modeled CPU.

Walks through Section 4 of the paper interactively:

* the Goto-algorithm blocking that the dense executor performs, with the
  oneDNN small-shape parameter adaptation;
* the GFLOPS-vs-shape surface and its three k-zones (Figs. 4-6);
* the CSR format and the LIBXSMM row-wise kernel's event counts;
* the Section 4.4 calibration-by-difference that yields L_a, L_b, L_c
  and an Eq. 5 prediction checked against the executor.

Run:  python examples/matmul_anatomy.py
"""

import numpy as np

from repro.matmul import (
    CsrMatrix,
    DenseGemmExecutor,
    MklSdmmCostModel,
    SparseGemmExecutor,
    effective_params,
)
from repro.timing import calibrate_sparse_predictor
from repro.utils.tables import format_table


def dense_section() -> None:
    print("=" * 72)
    print("Dense-dense multiplication (Goto algorithm, oneDNN parameters)")
    print("=" * 72)
    executor = DenseGemmExecutor()

    shape = (400, 1000, 136)  # first layer of a 400-wide net, batch 1000
    m, n, k = shape
    params = effective_params(m, n, k)
    print(
        f"\nShape m={m}, n={n}, k={k}: adapted blocking "
        f"m_c={params.m_c}, n_c={params.n_c}, k_c={params.k_c} "
        f"(micro-tile {params.m_r}x{params.n_r})"
    )
    rng = np.random.default_rng(0)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    c, report = executor.multiply(a, b)
    print(f"  max |C - A@B| = {np.abs(c - a @ b).max():.2e}  (blocking is exact)")
    print(
        f"  simulated time {report.time_us:.1f} us, "
        f"{report.gflops:.1f} GFLOPS, packed={report.packed}"
    )

    print("\nThe three k-zones of Fig. 6 (n = 1000, m = 1000):")
    rows = [
        (k_, round(executor.measure_gflops(1000, 1000, k_), 1))
        for k_ in (32, 64, 128, 192, 256, 384, 512, 1024)
    ]
    print(format_table(["k", "GFLOPS"], rows))


def sparse_section() -> None:
    print("\n" + "=" * 72)
    print("Sparse-dense multiplication (CSR + LIBXSMM-style kernel)")
    print("=" * 72)
    rng = np.random.default_rng(1)

    # A pruned first layer: 400x136 at 98.7% sparsity (the paper's final).
    m, k, sparsity = 400, 136, 0.987
    nnz = int(round((1 - sparsity) * m * k))
    dense = np.zeros(m * k)
    dense[rng.choice(m * k, nnz, replace=False)] = rng.normal(size=nnz)
    a = CsrMatrix.from_dense(dense.reshape(m, k))
    print(
        f"\nPruned weight matrix {m}x{k}: nnz={a.nnz}, "
        f"active rows |a_r|={a.n_active_rows}, active cols |a_c|={a.n_active_cols}"
    )

    executor = SparseGemmExecutor()
    b = rng.normal(size=(k, 64))
    c, report = executor.multiply(a, b)
    print(f"  max |C - A@B| = {np.abs(c - a.to_dense() @ b).max():.2e}")
    print(
        f"  simulated time {report.time_us:.2f} us "
        f"(C rows: {report.time_c_ns:.0f} ns, non-zeros: {report.time_a_ns:.0f} ns, "
        f"B rows: {report.time_b_ns:.0f} ns)"
    )
    print(
        f"  B-row cache behaviour: {report.b_row_misses} first-touch misses "
        f"(= |a_c|), {report.b_row_hits} hits"
    )

    print("\nCalibrating Eq. 5 by difference (A_c / A_rd / A_2c probes) ...")
    predictor = calibrate_sparse_predictor()
    print(
        f"  L_c={predictor.l_c_vec_ns:.3f}, L_a={predictor.l_a_scalar_ns:.3f}"
        f"+{predictor.l_a_vec_ns:.3f}/vec, L_b={predictor.l_b_vec_ns:.3f} ns "
        f"  (L_c/L_b = {predictor.l_c_over_l_b:.2f})"
    )
    rows = []
    for batch in (16, 32, 64):
        simulated = executor.measure_time_us(a, batch)
        predicted = predictor.time_for(a, batch)
        rows.append((batch, round(simulated, 2), round(predicted, 2)))
    print(format_table(["N", "Simulated us", "Eq. 5 predicted us"], rows))

    mkl = MklSdmmCostModel()
    print(
        f"\nMKL baseline on the same matrix at N=64: {mkl.time_for(a, 64):.2f} us "
        f"vs LIBXSMM-style {executor.measure_time_us(a, 64):.2f} us "
        "(Table 3's ~2x gap)"
    )


def main() -> None:
    dense_section()
    sparse_section()


if __name__ == "__main__":
    main()
