"""A miniature two-stage ranking service.

Shows how a downstream system would actually deploy the paper's models:
a candidate generator returns a pool of documents per query, a
first-stage (cheap) pruned network filters the pool, and a second-stage
model — either the LambdaMART forest via QuickScorer or a larger student
— re-ranks the survivors.  The latency budget of each stage is checked
against the predictors before serving.

Run:  python examples/scoring_service.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistillationConfig,
    Distiller,
    FirstLayerPruner,
    FirstLayerPruningConfig,
    GradientBoostingConfig,
    LambdaMartRanker,
    NetworkTimePredictor,
    QuickScorer,
    QuickScorerCostModel,
    make_msn30k_like,
    mean_ndcg,
    train_validation_test_split,
)
from repro.matmul import CsrMatrix


class TwoStageRanker:
    """First-stage pruned net -> top-pool -> second-stage QuickScorer."""

    def __init__(self, first_stage, second_stage, pool_size: int) -> None:
        self.first_stage = first_stage
        self.second_stage = second_stage
        self.pool_size = pool_size

    def rank(self, features: np.ndarray) -> np.ndarray:
        """Return indices of ``features`` rows in final ranked order."""
        cheap = self.first_stage.predict(features)
        pool = np.argsort(-cheap)[: self.pool_size]
        expensive = self.second_stage.score(features[pool])
        return pool[np.argsort(-expensive)]


def main() -> None:
    data = make_msn30k_like(n_queries=220, docs_per_query=30, seed=3)
    train, vali, test = train_validation_test_split(data, seed=3)

    print("Training the second-stage forest ...")
    forest = LambdaMartRanker(
        GradientBoostingConfig(
            n_trees=50, max_leaves=64, learning_rate=0.12, min_data_in_leaf=5
        ),
        seed=0,
    ).fit(train, vali)

    print("Distilling + pruning the first-stage network (100x50x50x25) ...")
    student = Distiller(
        DistillationConfig(epochs=20, learning_rate=0.003, lr_milestones=(15,)),
        seed=0,
    ).distill(forest, train, hidden=(100, 50, 50, 25))
    pruned = FirstLayerPruner(
        FirstLayerPruningConfig(
            sensitivity=2.0, epochs_prune=8, epochs_finetune=4, lr_milestones=(),
        ),
        seed=0,
    ).prune(student, forest, train)

    print("\nChecking stage latency budgets with the predictors ...")
    predictor = NetworkTimePredictor()
    first = CsrMatrix.from_dense(pruned.network.first_layer.weight.data)
    stage1_us = predictor.predict(
        train.n_features, pruned.hidden, first_layer_matrix=first
    ).hybrid_total_us_per_doc
    stage2_us = QuickScorerCostModel().scoring_time_for(forest)
    print(f"  stage 1 (pruned net): {stage1_us:.2f} us/doc over the full pool")
    print(f"  stage 2 (QuickScorer): {stage2_us:.2f} us/doc over the top pool")

    service = TwoStageRanker(
        first_stage=pruned,
        second_stage=QuickScorer(forest),
        pool_size=10,
    )

    print("\nServing the test queries through the two-stage pipeline ...")
    two_stage_scores = np.empty(test.n_docs)
    for qi in range(test.n_queries):
        sl = test.query_slice(qi)
        order = service.rank(test.features[sl])
        # Convert the final order to descending pseudo-scores; documents
        # outside the pool keep their stage-1 score below the pool range.
        q_scores = service.first_stage.predict(test.features[sl])
        lo, hi = q_scores.min(), q_scores.max()
        span = (hi - lo) or 1.0
        q_scores = (q_scores - lo) / span  # in [0, 1]
        for rank, doc in enumerate(order):
            q_scores[doc] = 2.0 + (len(order) - rank)
        two_stage_scores[sl] = q_scores

    full_forest_scores = forest.predict(test.features)
    stage1_only_scores = pruned.predict(test.features)
    print(f"  NDCG@10 forest everywhere : {mean_ndcg(test, full_forest_scores, 10):.4f}")
    print(f"  NDCG@10 pruned net only   : {mean_ndcg(test, stage1_only_scores, 10):.4f}")
    print(f"  NDCG@10 two-stage service : {mean_ndcg(test, two_stage_scores, 10):.4f}")

    avg_pool = min(10, int(test.query_sizes().mean()))
    effective_us = stage1_us + stage2_us * avg_pool / test.query_sizes().mean()
    print(
        f"\nEffective cost ~{effective_us:.2f} us/doc vs {stage2_us:.2f} us/doc "
        "for the forest alone — the pruned net absorbs most of the volume."
    )


if __name__ == "__main__":
    main()
