"""A miniature two-stage ranking service on the unified runtime.

Shows how a downstream system would actually deploy the paper's models:
a cheap first-stage pruned network filters each query's pool and the
LambdaMART forest (via QuickScorer) re-ranks the survivors.  The two
stages are assembled into an :class:`EarlyExitCascade` whose stages are
built straight from the models with ``CascadeStage.from_model`` — their
execution paths *and* calibrated prices both come from the scoring
runtime — and the cascade is served through :class:`ScoringService`,
which enforces a latency budget and records p50/p95/p99 per-request
latency.

Run:  python examples/scoring_service.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistillationConfig,
    Distiller,
    EarlyExitCascade,
    FirstLayerPruner,
    FirstLayerPruningConfig,
    GradientBoostingConfig,
    LambdaMartRanker,
    ScoringService,
    make_msn30k_like,
    mean_ndcg,
    train_validation_test_split,
)
from repro.design.cascade import CascadeStage
from repro.runtime import price


def main() -> None:
    data = make_msn30k_like(n_queries=220, docs_per_query=30, seed=3)
    train, vali, test = train_validation_test_split(data, seed=3)

    print("Training the second-stage forest ...")
    forest = LambdaMartRanker(
        GradientBoostingConfig(
            n_trees=50, max_leaves=64, learning_rate=0.12, min_data_in_leaf=5
        ),
        seed=0,
    ).fit(train, vali)

    print("Distilling + pruning the first-stage network (100x50x50x25) ...")
    student = Distiller(
        DistillationConfig(epochs=20, learning_rate=0.003, lr_milestones=(15,)),
        seed=0,
    ).distill(forest, train, hidden=(100, 50, 50, 25))
    pruned = FirstLayerPruner(
        FirstLayerPruningConfig(
            sensitivity=2.0, epochs_prune=8, epochs_finetune=4, lr_milestones=(),
        ),
        seed=0,
    ).prune(student, forest, train)

    print("\nPricing the stages through the runtime ...")
    stage1_us = price(pruned, backend="sparse-network")
    stage2_us = price(forest)
    print(f"  stage 1 (pruned net): {stage1_us:.2f} us/doc over the full pool")
    print(f"  stage 2 (QuickScorer): {stage2_us:.2f} us/doc over the top pool")

    cascade = EarlyExitCascade(
        [
            CascadeStage.from_model(
                pruned, backend="sparse-network", keep_fraction=0.34,
                name="pruned net",
            ),
            CascadeStage.from_model(forest, name="quickscorer forest"),
        ]
    )
    print(f"  cascade: {cascade.describe()}")
    print(f"  expected amortized cost: {cascade.expected_cost_us_per_doc():.2f} us/doc")

    # One endpoint over the whole cascade, with a budget: construction
    # would raise BudgetExceededError if the amortized price blew it.
    service = ScoringService(cascade, budget_us_per_doc=2 * stage2_us)

    print("\nServing the test queries through the two-stage service ...")
    two_stage_scores = np.empty(test.n_docs)
    for qi in range(test.n_queries):
        sl = test.query_slice(qi)
        two_stage_scores[sl] = service.score(test.features[sl])

    full_forest_scores = forest.predict(test.features)
    stage1_only_scores = pruned.predict(test.features)
    print(f"  NDCG@10 forest everywhere : {mean_ndcg(test, full_forest_scores, 10):.4f}")
    print(f"  NDCG@10 pruned net only   : {mean_ndcg(test, stage1_only_scores, 10):.4f}")
    print(f"  NDCG@10 two-stage service : {mean_ndcg(test, two_stage_scores, 10):.4f}")

    stats = service.stats
    lat = stats.latency_summary()
    print(
        f"\nServed {stats.requests} requests / {stats.documents} docs; "
        f"request latency p50 {lat['p50_us']:.0f} us, "
        f"p95 {lat['p95_us']:.0f} us, p99 {lat['p99_us']:.0f} us."
    )
    print(
        f"Amortized model cost {stats.predicted_us_per_doc:.2f} us/doc vs "
        f"{stage2_us:.2f} us/doc for the forest alone — the pruned net "
        "absorbs most of the volume."
    )


if __name__ == "__main__":
    main()
