"""Sharded parallel scoring with a score cache — bit-identical, faster.

The library's defining runtime property is that *how* a request is
executed never changes *what* it scores: micro-batching, fallback tiers
and now row sharding all reproduce plain ``Scorer.score`` bit for bit.
This example demonstrates the parallel engine end to end:

1. **Shard planning** — the three deterministic strategies (``even``,
   ``size-capped``, ``cost-weighted``) over the same request, including
   the cost-weighted planner sizing shards from the paper's calibrated
   µs/doc price.
2. **Bit-identity** — a sharded, cached service reproduces the
   unsharded scores exactly, cold and warm.
3. **The score cache** — repeated documents (hot queries, shared
   candidates) short-circuit to previously computed bits; the warm pass
   is measurably faster and the hit ratio shows up in the
   ``parallel.*`` metrics.

Run:  python examples/parallel_scoring.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ParallelConfig, ScoringService, ServiceConfig, obs
from repro.obs.probe import build_probe_models
from repro.runtime import ShardPlan, make_scorer, plan_shards

SEED = 7


def shard_planning() -> None:
    print("=" * 72)
    print("1. Deterministic shard planning")
    print("=" * 72)
    n_rows = 1000
    even = ShardPlan.even(n_rows, 4)
    capped = ShardPlan.size_capped(n_rows, 192)
    weighted = ShardPlan.cost_weighted(
        n_rows, us_per_doc=2.5, target_shard_us=500.0
    )
    for plan in (even, capped, weighted):
        print(f"  {plan.describe()}")
        print(f"    spans: {plan.spans[:3]}{' ...' if plan.n_shards > 3 else ''}")
    # Same inputs, same plan — reassembly order is never load-dependent.
    assert ShardPlan.even(n_rows, 4) == even


def sharded_service() -> None:
    print()
    print("=" * 72)
    print("2. A sharded, cached service is bit-identical to a plain one")
    print("=" * 72)
    models = build_probe_models(n_queries=12, docs_per_query=40, seed=SEED)
    dataset = models["dataset"]
    student = models["dense-network"]

    plain = ScoringService(student, ServiceConfig(backend="dense-network"))
    sharded = ScoringService(
        student,
        ServiceConfig(
            backend="dense-network",
            max_batch_size=None,  # hand the sharder whole requests
            parallel=ParallelConfig(
                workers=2,
                strategy="size-capped",
                max_shard_rows=64,
                cache_entries=8192,
            ),
        ),
    )

    requests = [
        dataset.features[start:stop]
        for start, stop in zip(dataset.query_ptr[:-1], dataset.query_ptr[1:])
    ]
    for request in requests:
        np.testing.assert_array_equal(
            sharded.score(request), plain.score(request)
        )
    print(f"  {len(requests)} requests served — every score bit-identical")
    summary = sharded.parallel_summary()
    print(
        f"  shards/request : "
        f"{summary['shards_executed'] / summary['requests']:.1f}"
    )
    print(f"  last balance   : {summary['last_balance']:.2f}")


def cache_payoff() -> None:
    print()
    print("=" * 72)
    print("3. The score cache: hot documents short-circuit")
    print("=" * 72)
    models = build_probe_models(n_queries=10, docs_per_query=60, seed=SEED)
    features = models["dataset"].features
    scorer = make_scorer(models["dense-network"], backend="dense-network")
    print(f"  workload: {features.shape[0]} docs, scored twice")

    from repro.runtime import ParallelConfig, ShardedScorer

    with ShardedScorer(
        scorer, ParallelConfig(workers=1, cache_entries=16384)
    ) as sharded:
        start = time.perf_counter()
        cold = sharded.score(features)
        cold_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        warm = sharded.score(features)
        warm_ms = (time.perf_counter() - start) * 1e3
        np.testing.assert_array_equal(cold, warm)
        snapshot = sharded.cache.snapshot()
    print(f"  cold pass      : {cold_ms:7.2f} ms (all misses)")
    print(f"  warm pass      : {warm_ms:7.2f} ms (all hits)")
    print(f"  cache hit ratio: {snapshot['hit_ratio']:.1%}")


def main() -> None:
    shard_planning()
    sharded_service()
    cache_payoff()
    print()
    print("=" * 72)
    print("Parallel report (obs.parallel_report)")
    print("=" * 72)
    print(obs.parallel_report().render())


if __name__ == "__main__":
    main()
