"""Quickstart: train a forest, distill a student, prune it, compare.

Runs the paper's whole methodology end to end on a small synthetic
MSN30K-like collection (a few minutes on a laptop):

1. train a LambdaMART teacher with the from-scratch GBDT;
2. distill a feed-forward student from its scores (Cohen et al.);
3. prune the student's first layer (efficiency-oriented pruning);
4. compare quality (NDCG@10) and predicted scoring time (QuickScorer
   cost model vs dense/sparse matmul predictors).

Run:  python examples/quickstart.py
"""

from repro import (
    DistillationConfig,
    Distiller,
    FirstLayerPruner,
    FirstLayerPruningConfig,
    GradientBoostingConfig,
    LambdaMartRanker,
    NetworkTimePredictor,
    QuickScorerCostModel,
    make_msn30k_like,
    mean_ndcg,
    train_validation_test_split,
)
from repro.matmul import CsrMatrix
from repro.utils.tables import format_table


def main() -> None:
    print("Generating a synthetic MSN30K-like collection ...")
    data = make_msn30k_like(n_queries=250, docs_per_query=25, seed=0)
    train, vali, test = train_validation_test_split(data, seed=0)
    print(f"  {data.summary()}")

    print("\nTraining the LambdaMART teacher (64-leaf deployment forest) ...")
    forest_config = GradientBoostingConfig(
        n_trees=60, max_leaves=64, learning_rate=0.12, min_data_in_leaf=5
    )
    forest = LambdaMartRanker(forest_config, seed=0).fit(train, vali)
    forest_ndcg = mean_ndcg(test, forest.predict(test.features), k=10)
    print(f"  forest: {forest.describe()}, test NDCG@10 = {forest_ndcg:.4f}")

    print("\nDistilling a 200x100x100x50 student ...")
    distill_config = DistillationConfig(
        epochs=25, learning_rate=0.003, lr_milestones=(18, 23)
    )
    student = Distiller(distill_config, seed=0).distill(
        forest, train, hidden=(200, 100, 100, 50)
    )
    dense_ndcg = mean_ndcg(test, student.predict(test.features), k=10)
    print(f"  dense student test NDCG@10 = {dense_ndcg:.4f}")

    print("\nPruning the first layer (threshold magnitude pruning) ...")
    prune_config = FirstLayerPruningConfig(
        sensitivity=2.0, epochs_prune=10, epochs_finetune=5,
        lr_milestones=(8, 13),
    )
    pruner = FirstLayerPruner(prune_config, seed=0)
    pruned = pruner.prune(student, forest, train)
    sparse_ndcg = mean_ndcg(test, pruned.predict(test.features), k=10)
    sparsity = pruned.first_layer_sparsity()
    print(
        f"  pruned student: first layer {sparsity:.1%} sparse, "
        f"test NDCG@10 = {sparse_ndcg:.4f}"
    )

    print("\nLocating every model on the time axis (paper-shape costs) ...")
    qs_cost = QuickScorerCostModel()
    predictor = NetworkTimePredictor()
    forest_time = qs_cost.scoring_time_for(forest)
    dense_report = predictor.predict(train.n_features, student.hidden)
    first = CsrMatrix.from_dense(pruned.network.first_layer.weight.data)
    sparse_report = predictor.predict(
        train.n_features, pruned.hidden, first_layer_matrix=first
    )

    print()
    print(
        format_table(
            ["Model", "NDCG@10", "Scoring time (us/doc)"],
            [
                (f"LambdaMART ({forest.describe()})", forest_ndcg, forest_time),
                ("Dense student", dense_ndcg, dense_report.dense_total_us_per_doc),
                ("Pruned student", sparse_ndcg, sparse_report.hybrid_total_us_per_doc),
            ],
            title="Efficiency / effectiveness summary",
        )
    )
    speedup = dense_report.dense_total_us_per_doc / (
        sparse_report.hybrid_total_us_per_doc or 1.0
    )
    print(f"\nFirst-layer pruning speed-up: {speedup:.2f}x")


if __name__ == "__main__":
    main()
