"""Hyper-parameter tuning of the LambdaMART teacher.

The paper tunes its forests with HyperOpt over learning rate, max depth,
``min_sum_hessian_in_leaf`` and ``min_data_in_leaf`` (Section 6.1).
This example runs the library's random-search substitute on a small
synthetic collection, shows the full trial trace, retrains the winner,
and inspects which features the tuned forest actually relies on.

Run:  python examples/forest_tuning.py
"""

from repro import (
    GradientBoostingConfig,
    LambdaMartRanker,
    make_msn30k_like,
    mean_ndcg,
    train_validation_test_split,
)
from repro.forest import RandomSearchTuner
from repro.utils.tables import format_table


def main() -> None:
    data = make_msn30k_like(n_queries=150, docs_per_query=20, seed=4)
    train, vali, test = train_validation_test_split(data, seed=4)
    print(data.summary())

    base = GradientBoostingConfig(n_trees=25, max_leaves=32, eval_every=5)
    print("\nRandom search (6 trials) over the paper's tuned parameters ...")
    tuner = RandomSearchTuner(base, n_trials=6, seed=0)
    result = tuner.tune(train, vali)

    rows = [
        (
            i + 1,
            round(params["learning_rate"], 4),
            params["max_depth"],
            params["min_data_in_leaf"],
            round(params["min_sum_hessian_in_leaf"], 4),
            round(metric, 4),
        )
        for i, (params, metric) in enumerate(result.trials)
    ]
    print(
        format_table(
            ["Trial", "lr", "max_depth", "min_data", "min_hessian", "vali NDCG@10"],
            rows,
            title="Tuning trace",
        )
    )
    print(f"\nBest validation NDCG@10: {result.best_metric:.4f}")

    print("\nRetraining the winning configuration ...")
    forest = LambdaMartRanker(result.best_config, seed=0).fit(train, vali)
    test_ndcg = mean_ndcg(test, forest.predict(test.features), 10)
    print(f"  test NDCG@10 = {test_ndcg:.4f} ({forest.describe()})")

    importance = forest.feature_importance()
    top = importance.argsort()[::-1][:8]
    print("\nMost-used features (split counts):")
    print(
        format_table(
            ["Feature", "Splits"],
            [(int(f), int(importance[f])) for f in top],
        )
    )
    print(
        "\nThe informative block (features 0-39 in the synthetic schema) "
        "should dominate this list — the same signal first-layer pruning "
        "later selects from."
    )


if __name__ == "__main__":
    main()
