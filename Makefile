# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test test-fast bench examples report clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/latency_budget_design.py
	$(PYTHON) examples/matmul_anatomy.py
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/forest_tuning.py
	$(PYTHON) examples/scoring_service.py

report:
	$(PYTHON) examples/experiment_report.py experiment_report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
