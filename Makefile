# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test test-fast verify smoke obs-smoke resilience-smoke parallel-smoke compile-smoke quant-smoke serving-smoke trace-smoke cascade-smoke lifecycle-smoke bench examples report clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x

# Tier-1 gate: the full suite plus a bytecode compile of the library.
verify: obs-smoke resilience-smoke parallel-smoke compile-smoke quant-smoke serving-smoke trace-smoke cascade-smoke lifecycle-smoke
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(PYTHON) -m compileall -q src

# Seconds-fast sanity check: build + price one scorer of every backend.
smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_runtime_smoke.py -q

# Observability gate: run a tiny pipeline with tracing on and assert the
# JSON + Prometheus exporters and the drift series are well-formed.
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.obs.smoke

# Resilience gate: fault-inject each built-in backend and assert the
# fallback chain degrades and recovers without a failed request.
resilience-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.resilience_smoke

# Parallel gate: shard every backend over the worker pool and assert
# bit-identical scores plus a measured >1x cache/pool speedup.
parallel-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.parallel_smoke

# Compiled-inference gate: float64 plans bit-identical to predict /
# the hybrid reference, zero steady-state allocations, and a measured
# >= 1.3x float32 speedup over naive scoring on a pruned network.
compile-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.compile_smoke

# Quantized/block-sparse kernel gate: >= 3 kernel kinds auto-selected,
# declared score tolerance honoured, stable int8 chunk-invariant, and a
# measured >= 1.3x int8-over-float32 speedup at the pruned-90% headline
# shape; quantized plans compose with sharding/batching/hot swaps.
quant-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.quant_smoke

# Serving gate: coalesced async scoring bit-identical to sequential on
# every backend, plus deterministic shed-rate bounds and SLO-miss
# accounting under a seeded multi-tenant load run.
serving-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.serving.smoke

# Request-tracing gate: disabled recorder retains nothing and never
# changes a score; a traced load run retains the slow tail, resolves
# every exemplar, and each trace's stage timeline tiles its wall time.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.obs.trace_smoke

# Cascade gate: a fixed-seed budgeted pipeline is bit-deterministic, a
# strict refinement (dropouts never outrank survivors), never exceeds
# its predicted-spend bound, no-ops on zero-doc queries, and feeds the
# cascade.* funnel series.
cascade-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.cascade_smoke

# Lifecycle gate: a forced mid-load hot swap loses zero requests and
# stays bit-identical pre/post; the shadow gate promotes a good
# candidate, rolls back a regressed one, and invalidates the cache by
# fingerprint; replay-fed redistillation swaps in a fine-tuned student.
lifecycle-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.lifecycle_smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/latency_budget_design.py
	$(PYTHON) examples/matmul_anatomy.py
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/forest_tuning.py
	$(PYTHON) examples/scoring_service.py
	$(PYTHON) examples/resilient_service.py
	$(PYTHON) examples/parallel_scoring.py

report:
	$(PYTHON) examples/experiment_report.py experiment_report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
