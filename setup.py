"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail with "invalid command 'bdist_wheel'"; this file enables the
legacy ``pip install -e . --no-build-isolation`` path.
"""

from setuptools import setup

setup()
