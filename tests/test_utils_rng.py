"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        gen = ensure_rng(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawn:
    def test_children_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_children_independent(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].integers(0, 10**9, size=4)
        b = children[1].integers(0, 10**9, size=4)
        assert not np.array_equal(a, b)

    def test_deterministic_from_parent_seed(self):
        a = spawn(ensure_rng(7), 3)[2].integers(0, 10**9)
        b = spawn(ensure_rng(7), 3)[2].integers(0, 10**9)
        assert a == b

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)
