"""Tests for per-request tracing: contexts, propagation, flight, exemplars."""

import threading
import time

import pytest

from repro import obs
from repro.exceptions import ReproError
from repro.obs.flight import (
    ExemplarStore,
    FlightRecorder,
    render_record,
)
from repro.obs.requests import (
    RequestContext,
    RequestRecorder,
    StageEvent,
    activate,
    activate_batch,
    active_requests,
    annotate_requests,
    current_request,
)


def _finished(
    tenant="web", *, status="ok", wall_s=0.001, trace_id=None, n_docs=4
):
    """A closed context with one covering stage, `wall_s` long."""
    ctx = RequestContext(tenant, n_docs=n_docs, created_s=0.0, trace_id=trace_id)
    ctx.enqueued_s = 0.0
    ctx.stage("kernel", 0.0, wall_s)
    ctx.status = status
    ctx.finished_s = wall_s
    return ctx


class TestStageEvent:
    def test_duration_and_clamping(self):
        ev = StageEvent("kernel", 1.0, 1.0005, backend="dense")
        assert ev.duration_us == pytest.approx(500.0)
        # A clock going backwards clamps to zero, never negative.
        assert StageEvent("respond", 2.0, 1.9).duration_us == 0.0

    def test_to_dict_is_origin_relative(self):
        ev = StageEvent("queue-wait", 10.001, 10.002)
        doc = ev.to_dict(10.0)
        assert doc["start_us"] == pytest.approx(1000.0)
        assert doc["duration_us"] == pytest.approx(1000.0)
        assert doc["attrs"] == {}


class TestRequestContext:
    def test_stages_tile_the_wall_time(self):
        # Stamping each stage from last_stage_end makes the timeline sum
        # equal the enqueue->finish wall time *by construction*.
        ctx = RequestContext("web", n_docs=10, created_s=0.0)
        ctx.enqueued_s = 0.001
        ctx.stage("admission", ctx.created_s, ctx.enqueued_s)
        ctx.stage("queue-wait", ctx.last_stage_end(0.001), 0.003)
        ctx.stage("coalesce", ctx.last_stage_end(0.003), 0.0035)
        ctx.stage("kernel", ctx.last_stage_end(0.0035), 0.004)
        ctx.finished_s = 0.0045
        ctx.stage("respond", ctx.last_stage_end(0.0045), ctx.finished_s)
        assert ctx.wall_us == pytest.approx(3500.0)
        # admission precedes the enqueue origin and is excluded.
        assert ctx.timeline_us == pytest.approx(ctx.wall_us)

    def test_wall_is_zero_while_open(self):
        ctx = RequestContext("web", n_docs=1, created_s=5.0)
        assert ctx.status == "open"
        assert ctx.wall_us == 0.0

    def test_shed_request_origin_is_arrival(self):
        ctx = RequestContext("web", n_docs=1, created_s=1.0)
        ctx.finished_s = 1.002  # never enqueued
        assert ctx.origin_s == 1.0
        assert ctx.wall_us == pytest.approx(2000.0)

    def test_trace_ids_unique_and_overridable(self):
        a = RequestContext("t", n_docs=1, created_s=0.0)
        b = RequestContext("t", n_docs=1, created_s=0.0)
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 16
        c = RequestContext("t", n_docs=1, created_s=0.0, trace_id="cafe")
        assert c.trace_id == "cafe"

    def test_to_dict_and_render(self):
        ctx = _finished(trace_id="feedbeefdeadc0de")
        ctx.annotate(plan="abc123")
        ctx.batch_id = 7
        doc = ctx.to_dict()
        assert doc["trace_id"] == "feedbeefdeadc0de"
        assert doc["batch_id"] == 7
        assert doc["stages"][0]["name"] == "kernel"
        text = ctx.render()
        assert "feedbeefdeadc0de" in text
        assert "kernel" in text and "plan=abc123" in text
        # The dict form renders identically after a JSON round-trip.
        assert render_record(doc) == text


class TestPropagation:
    def test_default_is_empty(self):
        assert current_request() is None
        assert active_requests() == ()
        assert annotate_requests(x=1) == 0

    def test_activate_single(self):
        ctx = RequestContext("web", n_docs=1, created_s=0.0)
        with activate(ctx):
            assert current_request() is ctx
            assert active_requests() == (ctx,)
            assert annotate_requests(shards=2) == 1
        assert current_request() is None
        assert ctx.attrs == {"shards": 2}

    def test_activate_batch_wins_over_current(self):
        solo = RequestContext("a", n_docs=1, created_s=0.0)
        batch = tuple(
            RequestContext("b", n_docs=1, created_s=0.0) for _ in range(3)
        )
        with activate(solo), activate_batch(batch):
            assert active_requests() == batch
            assert annotate_requests(plan="p") == 3
        assert all(ctx.attrs == {"plan": "p"} for ctx in batch)
        assert solo.attrs == {}

    def test_binding_crosses_into_worker_thread(self):
        # The engine pattern: the batch is bound *inside* the executor
        # thread, because run_in_executor does not copy the caller's
        # context.  A set() in the worker binds in that thread only.
        batch = (RequestContext("web", n_docs=1, created_s=0.0),)
        seen_inside = []

        def worker():
            with activate_batch(batch):
                seen_inside.append(active_requests())
                annotate_requests(backend="dense")

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen_inside == [batch]
        assert batch[0].attrs == {"backend": "dense"}
        # The main thread never saw the binding.
        assert active_requests() == ()


class TestFlightRecorder:
    def test_slowest_evicts_least_slow(self):
        flight = FlightRecorder(slowest=2)
        for ms in (1, 5, 3, 9):
            flight.retain(_finished(wall_s=ms / 1000.0, trace_id=f"t{ms}"))
        walls = [r.wall_us for r in flight.slowest_records()]
        assert walls == [pytest.approx(9000.0), pytest.approx(5000.0)]
        # A faster request does not displace a retained slow one.
        flight.retain(_finished(wall_s=0.002, trace_id="t2"))
        assert [r.trace_id for r in flight.slowest_records()] == ["t9", "t5"]

    def test_shed_and_errored_always_retained(self):
        flight = FlightRecorder(slowest=1)
        flight.retain(_finished(status="shed", trace_id="s1"))
        flight.retain(_finished(status="error", trace_id="e1"))
        flight.retain(_finished(status="ok", trace_id="ok1"))
        counts = flight.counts()
        assert counts["shed"] == 1 and counts["errored"] == 1
        assert counts["slowest"] == 1 and counts["recent"] == 3

    def test_rings_are_bounded(self):
        flight = FlightRecorder(recent=4, slowest=2, shed=3, errored=3)
        for i in range(20):
            flight.retain(_finished(trace_id=f"ok{i}"))
            flight.retain(_finished(status="shed", trace_id=f"sh{i}"))
        counts = flight.counts()
        assert counts == {"recent": 4, "slowest": 2, "shed": 3, "errored": 0}
        # The shed ring keeps the newest, evicting oldest first.
        assert [r.trace_id for r in flight._shed] == ["sh17", "sh18", "sh19"]

    def test_records_deduplicate_and_lookup(self):
        flight = FlightRecorder(recent=8)
        slow = _finished(wall_s=0.5, trace_id="abcd1234deadbeef")
        flight.retain(slow)  # lands in recent *and* slowest
        assert len(flight.records()) == 1
        assert flight.get("abcd1234deadbeef") is slow
        assert flight.get("missing") is None
        assert flight.find("abcd") == [slow]
        assert flight.find("zzzz") == []

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ReproError, match="recent"):
            FlightRecorder(recent=0)
        with pytest.raises(ReproError, match="slowest"):
            FlightRecorder(slowest=0)

    def test_to_dict_and_render(self):
        flight = FlightRecorder()
        flight.retain(_finished(trace_id="aa" * 8))
        doc = flight.to_dict()
        assert doc["counts"]["recent"] == 1
        assert doc["records"][0]["trace_id"] == "aa" * 8
        assert "Flight recorder" in flight.render()


class TestExemplarStore:
    def test_bucketing_and_counts(self):
        store = ExemplarStore()
        store.observe("web", 300.0, "t1")  # -> le 500
        store.observe("web", 450.0, "t2")  # -> le 500, replaces t1
        store.observe("web", 80_000.0, "t3")  # -> le 100000
        items = store.items()
        assert [(e.le_us, e.trace_id, e.count) for e in items] == [
            (500.0, "t2", 2),
            (100_000.0, "t3", 1),
        ]

    def test_tenants_are_separate(self):
        store = ExemplarStore()
        store.observe("web", 100.0, "tw")
        store.observe("batch", 100.0, "tb")
        assert {e.tenant for e in store.items()} == {"web", "batch"}

    def test_overflow_lands_in_inf_bucket(self):
        store = ExemplarStore(buckets_us=(10.0, float("inf")))
        store.observe("web", 99.0, "t")
        (ex,) = store.items()
        assert ex.le_us == float("inf")
        assert "+inf" in store.render()

    def test_bucket_validation(self):
        with pytest.raises(ReproError, match="inf"):
            ExemplarStore(buckets_us=(10.0, 20.0))
        with pytest.raises(ReproError, match="sorted"):
            ExemplarStore(buckets_us=(20.0, 10.0, float("inf")))


class TestRequestRecorder:
    def test_disabled_begin_is_none_and_free(self):
        rec = RequestRecorder(enabled=False)
        assert rec.begin("web", n_docs=4, now_s=0.0) is None
        assert rec.counts()["begun"] == 0
        # Overhead guard: the disabled path must stay a cheap attribute
        # check — well under 20us per call even on a loaded CI host.
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            rec.begin("web", n_docs=4, now_s=0.0)
        per_call_us = (time.perf_counter() - t0) / n * 1e6
        assert per_call_us < 20.0

    def test_lifecycle_and_retention(self):
        rec = RequestRecorder(enabled=True)
        ctx = rec.begin("web", n_docs=8, now_s=1.0)
        ctx.enqueued_s = 1.0
        ctx.stage("kernel", 1.0, 1.002)
        rec.finish(ctx, status="ok", now_s=1.002, slo_us=500.0, slo_miss=True)
        assert ctx.status == "ok" and ctx.slo_miss is True
        counts = rec.counts()
        assert counts["begun"] == 1 and counts["finished"] == 1
        assert rec.flight.get(ctx.trace_id) is ctx
        # Served requests feed the exemplar store...
        assert [e.trace_id for e in rec.exemplars.items()] == [ctx.trace_id]
        # ...shed ones do not.
        shed = rec.begin("web", n_docs=1, now_s=2.0)
        rec.finish(shed, status="shed", now_s=2.0)
        assert len(rec.exemplars.items()) == 1

    def test_unknown_status_rejected(self):
        rec = RequestRecorder(enabled=True)
        ctx = rec.begin("web", n_docs=1, now_s=0.0)
        with pytest.raises(ReproError, match="status"):
            rec.finish(ctx, status="dropped", now_s=0.1)

    def test_reset(self):
        rec = RequestRecorder(enabled=True)
        ctx = rec.begin("web", n_docs=1, now_s=0.0)
        rec.finish(ctx, status="ok", now_s=0.1)
        rec.reset()
        assert rec.counts() == {
            "begun": 0,
            "finished": 0,
            "recent": 0,
            "slowest": 0,
            "shed": 0,
            "errored": 0,
        }


class TestModuleDefaults:
    def test_disabled_by_default_and_toggle(self, obs_clean):
        assert not obs.request_tracing_enabled()
        assert (
            obs.get_request_recorder().begin("web", n_docs=1, now_s=0.0)
            is None
        )
        obs.enable_request_tracing()
        assert obs.request_tracing_enabled()
        ctx = obs.get_request_recorder().begin("web", n_docs=1, now_s=0.0)
        assert ctx is not None
        obs.enable_request_tracing(False)
        assert not obs.request_tracing_enabled()

    def test_set_recorder_swaps_and_returns_previous(self, obs_clean):
        mine = RequestRecorder(enabled=True)
        previous = obs.set_request_recorder(mine)
        try:
            assert obs.get_request_recorder() is mine
        finally:
            obs.set_request_recorder(previous)
