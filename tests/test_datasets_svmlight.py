"""Tests for repro.datasets.svmlight."""

import io

import numpy as np
import pytest

from repro.datasets import LtrDataset, load_svmlight, save_svmlight
from repro.exceptions import DatasetFormatError

SAMPLE = """\
2 qid:1 1:0.5 3:1.25
0 qid:1 2:3
1 qid:2 1:1 2:2 3:3 # a comment
"""


class TestLoad:
    def test_shapes(self):
        ds = load_svmlight(io.StringIO(SAMPLE))
        assert ds.n_docs == 3
        assert ds.n_features == 3
        assert ds.n_queries == 2

    def test_sparse_features_default_zero(self):
        ds = load_svmlight(io.StringIO(SAMPLE))
        assert ds.features[0, 1] == 0.0
        assert ds.features[0, 2] == pytest.approx(1.25)

    def test_labels_and_qids(self):
        ds = load_svmlight(io.StringIO(SAMPLE))
        assert ds.labels.tolist() == [2, 0, 1]
        assert ds.qids.tolist() == [1, 1, 2]

    def test_comment_stripped(self):
        ds = load_svmlight(io.StringIO(SAMPLE))
        assert ds.features[2, 2] == 3.0

    def test_explicit_n_features_pads(self):
        ds = load_svmlight(io.StringIO(SAMPLE), n_features=5)
        assert ds.n_features == 5

    def test_n_features_too_small_raises(self):
        with pytest.raises(DatasetFormatError, match="n_features"):
            load_svmlight(io.StringIO(SAMPLE), n_features=2)

    def test_blank_lines_skipped(self):
        ds = load_svmlight(io.StringIO("\n" + SAMPLE + "\n"))
        assert ds.n_docs == 3

    def test_missing_qid_raises(self):
        with pytest.raises(DatasetFormatError, match="qid"):
            load_svmlight(io.StringIO("1 1:0.5\n"))

    def test_bad_label_raises(self):
        with pytest.raises(DatasetFormatError, match="label"):
            load_svmlight(io.StringIO("x qid:1 1:0.5\n"))

    def test_bad_feature_token_raises(self):
        with pytest.raises(DatasetFormatError, match="malformed"):
            load_svmlight(io.StringIO("1 qid:1 1:a\n"))

    def test_zero_based_feature_id_raises(self):
        with pytest.raises(DatasetFormatError, match="1-based"):
            load_svmlight(io.StringIO("1 qid:1 0:0.5\n"))

    def test_empty_file_raises(self):
        with pytest.raises(DatasetFormatError, match="no data"):
            load_svmlight(io.StringIO(""))

    def test_load_from_path(self, tmp_path):
        p = tmp_path / "data.txt"
        p.write_text(SAMPLE)
        ds = load_svmlight(p)
        assert ds.n_docs == 3
        assert ds.name == "data.txt"


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        x = np.round(np.random.default_rng(0).uniform(0, 5, size=(6, 4)), 3)
        ds = LtrDataset(
            features=x,
            labels=np.asarray([0, 1, 2, 3, 4, 0]),
            qids=np.asarray([1, 1, 1, 2, 2, 2]),
        )
        path = tmp_path / "rt.txt"
        save_svmlight(ds, path)
        back = load_svmlight(path, n_features=4)
        np.testing.assert_allclose(back.features, ds.features, rtol=1e-5)
        np.testing.assert_array_equal(back.labels, ds.labels)
        np.testing.assert_array_equal(back.qids.astype(int), ds.qids)

    def test_save_to_stream(self):
        ds = LtrDataset(
            features=np.ones((2, 2)),
            labels=np.asarray([1, 0]),
            qids=np.asarray([5, 5]),
        )
        buf = io.StringIO()
        save_svmlight(ds, buf)
        assert "qid:5" in buf.getvalue()
