"""Tests for repro.datasets.folds (LETOR-style k-fold rotations)."""

import numpy as np
import pytest

from repro.datasets import k_fold_splits, make_msn30k_like
from repro.datasets.folds import cross_validated_metric
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def dataset():
    return make_msn30k_like(n_queries=50, docs_per_query=10, seed=2)


class TestKFoldSplits:
    def test_fold_count(self, dataset):
        assert len(k_fold_splits(dataset, k=5, seed=0)) == 5

    def test_partition_sizes(self, dataset):
        folds = k_fold_splits(dataset, k=5, seed=0)
        for fold in folds:
            assert fold.train.n_queries == 30  # (k-2)/k of 50
            assert fold.validation.n_queries == 10
            assert fold.test.n_queries == 10

    def test_within_fold_disjoint(self, dataset):
        for fold in k_fold_splits(dataset, k=5, seed=0):
            all_qids = np.concatenate(
                [
                    fold.train.unique_qids,
                    fold.validation.unique_qids,
                    fold.test.unique_qids,
                ]
            )
            assert len(np.unique(all_qids)) == dataset.n_queries

    def test_each_query_tested_exactly_once(self, dataset):
        folds = k_fold_splits(dataset, k=5, seed=0)
        tested = np.concatenate([f.test.unique_qids for f in folds])
        assert sorted(tested.tolist()) == sorted(dataset.unique_qids.tolist())

    def test_deterministic_by_seed(self, dataset):
        a = k_fold_splits(dataset, k=5, seed=3)[0]
        b = k_fold_splits(dataset, k=5, seed=3)[0]
        np.testing.assert_array_equal(a.test.unique_qids, b.test.unique_qids)

    def test_fold_names(self, dataset):
        fold = k_fold_splits(dataset, k=5, seed=0)[2]
        assert fold.index == 3
        assert fold.train.name.endswith("fold3-train")

    def test_invalid_k(self, dataset):
        with pytest.raises(DatasetError):
            k_fold_splits(dataset, k=2)

    def test_too_few_queries(self, dataset):
        small = dataset.select_queries([0, 1, 2])
        with pytest.raises(DatasetError):
            k_fold_splits(small, k=5)


class TestCrossValidatedMetric:
    class _ConstantModel:
        def predict(self, features):
            return np.zeros(len(features))

    def test_mean_and_values(self, dataset):
        folds = k_fold_splits(dataset, k=4, seed=0)
        mean, values = cross_validated_metric(
            folds,
            fit_fn=lambda train, vali: self._ConstantModel(),
            metric_fn=lambda test, scores: float(test.n_queries),
        )
        assert len(values) == 4
        assert mean == pytest.approx(np.mean(values))

    def test_empty_folds_rejected(self):
        with pytest.raises(DatasetError):
            cross_validated_metric([], None, None)
