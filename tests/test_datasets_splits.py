"""Tests for repro.datasets.splits."""

import numpy as np
import pytest

from repro.datasets import make_msn30k_like, train_validation_test_split
from repro.exceptions import DatasetError


class TestSplit:
    def test_fractions_roughly_60_20_20(self):
        ds = make_msn30k_like(n_queries=100, docs_per_query=10)
        train, vali, test = train_validation_test_split(ds, seed=0)
        assert train.n_queries == 60
        assert vali.n_queries == 20
        assert test.n_queries == 20

    def test_partitions_disjoint_and_complete(self):
        ds = make_msn30k_like(n_queries=50, docs_per_query=10)
        train, vali, test = train_validation_test_split(ds, seed=0)
        all_qids = np.concatenate(
            [train.unique_qids, vali.unique_qids, test.unique_qids]
        )
        assert len(np.unique(all_qids)) == 50
        assert train.n_docs + vali.n_docs + test.n_docs == ds.n_docs

    def test_deterministic_by_seed(self):
        ds = make_msn30k_like(n_queries=50, docs_per_query=10)
        a = train_validation_test_split(ds, seed=3)[0]
        b = train_validation_test_split(ds, seed=3)[0]
        np.testing.assert_array_equal(a.unique_qids, b.unique_qids)

    def test_no_shuffle_keeps_order(self):
        ds = make_msn30k_like(n_queries=50, docs_per_query=10)
        train, _, _ = train_validation_test_split(ds, shuffle=False)
        np.testing.assert_array_equal(train.unique_qids, ds.unique_qids[:30])

    def test_custom_fractions(self):
        ds = make_msn30k_like(n_queries=100, docs_per_query=10)
        train, vali, test = train_validation_test_split(
            ds, train=0.8, validation=0.1, seed=0
        )
        assert train.n_queries == 80
        assert vali.n_queries == 10

    def test_names_suffixed(self):
        ds = make_msn30k_like(n_queries=20, docs_per_query=10)
        train, vali, test = train_validation_test_split(ds, seed=0)
        assert train.name.endswith("/train")
        assert vali.name.endswith("/vali")
        assert test.name.endswith("/test")

    def test_invalid_fractions_raise(self):
        ds = make_msn30k_like(n_queries=20, docs_per_query=10)
        with pytest.raises(DatasetError):
            train_validation_test_split(ds, train=0.9, validation=0.2)
        with pytest.raises(DatasetError):
            train_validation_test_split(ds, train=0.0)

    def test_too_few_queries_raise(self):
        ds = make_msn30k_like(n_queries=40, docs_per_query=10).select_queries([0, 1])
        with pytest.raises(DatasetError, match="at least 3"):
            train_validation_test_split(ds)
