"""Tests for repro.nn.training (Trainer)."""

import numpy as np
import pytest

from repro.nn import FeedForwardNetwork, Trainer, TrainingConfig


def regression_problem(rng, n=800):
    x = rng.normal(size=(n, 6))
    y = x[:, 0] - 2.0 * x[:, 1] + np.maximum(x[:, 2], 0)
    return x, y


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)


class TestTrainer:
    def test_loss_decreases(self, rng):
        x, y = regression_problem(rng)
        net = FeedForwardNetwork(6, (32, 16), seed=0)
        trainer = Trainer(net, TrainingConfig(epochs=15, learning_rate=0.005), seed=0)
        history = trainer.fit(x, y)
        assert history.train_loss[-1] < 0.3 * history.train_loss[0]

    def test_deterministic_given_seed(self, rng):
        x, y = regression_problem(rng, n=200)

        def run():
            net = FeedForwardNetwork(6, (8,), seed=4)
            Trainer(net, TrainingConfig(epochs=3), seed=4).fit(x, y)
            return net.predict(x[:5])

        np.testing.assert_allclose(run(), run())

    def test_requires_data_or_provider(self):
        net = FeedForwardNetwork(4, (4,), seed=0)
        trainer = Trainer(net, TrainingConfig(epochs=1), seed=0)
        with pytest.raises(ValueError, match="batch_provider"):
            trainer.fit()

    def test_length_mismatch(self, rng):
        net = FeedForwardNetwork(4, (4,), seed=0)
        trainer = Trainer(net, TrainingConfig(epochs=1), seed=0)
        with pytest.raises(ValueError, match="equal length"):
            trainer.fit(rng.normal(size=(5, 4)), np.zeros(4))

    def test_custom_provider(self, rng):
        net = FeedForwardNetwork(3, (8,), seed=0)
        target_w = np.asarray([1.0, -1.0, 0.5])

        def provider(gen, batch_size):
            xb = gen.normal(size=(batch_size, 3))
            return xb, xb @ target_w

        trainer = Trainer(net, TrainingConfig(epochs=10, learning_rate=0.01), seed=0)
        history = trainer.fit(batch_provider=provider, steps_per_epoch=20)
        assert history.train_loss[-1] < 0.1

    def test_on_epoch_end_called(self, rng):
        x, y = regression_problem(rng, n=100)
        net = FeedForwardNetwork(6, (4,), seed=0)
        calls = []
        Trainer(net, TrainingConfig(epochs=3), seed=0).fit(
            x, y, on_epoch_end=lambda e, l: calls.append(e)
        )
        assert calls == [0, 1, 2]

    def test_valid_fn_recorded(self, rng):
        x, y = regression_problem(rng, n=100)
        net = FeedForwardNetwork(6, (4,), seed=0)
        history = Trainer(net, TrainingConfig(epochs=4), seed=0).fit(
            x, y, valid_fn=lambda: 0.5
        )
        assert history.valid_metric == [0.5] * 4

    def test_lr_schedule_applied(self, rng):
        x, y = regression_problem(rng, n=100)
        net = FeedForwardNetwork(6, (4,), seed=0)
        config = TrainingConfig(
            epochs=4, learning_rate=0.01, lr_milestones=(2,), lr_gamma=0.1
        )
        trainer = Trainer(net, config, seed=0)
        trainer.fit(x, y)
        assert trainer.optimizer.lr == pytest.approx(0.001)

    def test_gradient_clipping_bounds_update(self, rng):
        # With a huge-loss batch, the clipped global gradient norm must
        # not exceed the configured cap.
        net = FeedForwardNetwork(4, (8,), seed=0)
        config = TrainingConfig(epochs=1, batch_size=4, grad_clip_norm=1.0)
        trainer = Trainer(net, config, seed=0)
        x = rng.normal(size=(4, 4)) * 100.0
        y = rng.normal(size=4) * 1000.0
        trainer._train_step(x, y)
        total = np.sqrt(
            sum(float(np.sum(p.grad**2)) for p in net.parameters())
        )
        assert total <= 1.0 + 1e-9

    def test_clipping_disabled_leaves_gradients(self, rng):
        net = FeedForwardNetwork(4, (8,), seed=0)
        config = TrainingConfig(epochs=1, batch_size=4, grad_clip_norm=None)
        trainer = Trainer(net, config, seed=0)
        x = rng.normal(size=(4, 4)) * 100.0
        y = rng.normal(size=4) * 1000.0
        trainer._train_step(x, y)
        total = np.sqrt(
            sum(float(np.sum(p.grad**2)) for p in net.parameters())
        )
        assert total > 10.0

    def test_invalid_clip_norm(self):
        with pytest.raises(ValueError):
            TrainingConfig(grad_clip_norm=0.0)

    def test_masks_survive_training(self, rng):
        x, y = regression_problem(rng, n=300)
        net = FeedForwardNetwork(6, (16,), seed=0)
        mask = (np.abs(net.first_layer.weight.data) > 0.2).astype(float)
        net.first_layer.set_mask(mask)
        Trainer(net, TrainingConfig(epochs=5), seed=0).fit(x, y)
        np.testing.assert_array_equal(
            net.first_layer.weight.data[mask == 0.0], 0.0
        )
