"""Tests for repro.matmul.onednn (blocking parameter adaptation)."""

import pytest

from repro.matmul import OneDnnParams, effective_params, rnd_up
from repro.matmul.onednn import packing_would_dominate


class TestRndUp:
    def test_exact_multiple_unchanged(self):
        assert rnd_up(48, 24) == 48

    def test_rounds_to_next_multiple(self):
        assert rnd_up(25, 24) == 48
        assert rnd_up(1, 24) == 24

    def test_nonpositive_a(self):
        assert rnd_up(0, 8) == 8

    def test_invalid_b(self):
        with pytest.raises(ValueError):
            rnd_up(10, 0)


class TestEffectiveParams:
    def test_large_shape_keeps_defaults(self):
        p = effective_params(20000, 2000, 2000)
        assert p.n_c == 384
        assert p.k_c == 192

    def test_small_m_clamped_and_rounded(self):
        # The paper: m_c_eff = rnd_up(min(max(m, m_r), m_c), m_r).
        p = effective_params(m=30, n=1000, k=1000)
        assert p.m_c == 48  # rnd_up(30, 24)

    def test_m_below_micro_tile(self):
        p = effective_params(m=5, n=1000, k=1000)
        assert p.m_c == 24  # at least one micro-tile

    def test_small_n_rounded_to_n_r(self):
        p = effective_params(m=1000, n=10, k=1000)
        assert p.n_c == 12  # rnd_up(10, 4)

    def test_k_clamped_not_rounded(self):
        p = effective_params(m=1000, n=1000, k=100)
        assert p.k_c == 100

    def test_micro_params_preserved(self):
        p = effective_params(100, 100, 100)
        assert p.m_r == 24 and p.n_r == 4

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            effective_params(0, 10, 10)

    def test_custom_defaults(self):
        base = OneDnnParams(m_c=96, n_c=64, k_c=32, m_r=8, n_r=4)
        p = effective_params(1000, 1000, 1000, base)
        assert p.m_c == 96 and p.k_c == 32


class TestOneDnnParams:
    def test_defaults_match_paper(self):
        p = OneDnnParams()
        assert (p.m_c, p.n_c, p.k_c, p.m_r, p.n_r) == (10000, 384, 192, 24, 4)

    def test_invalid_micro_exceeds_macro(self):
        with pytest.raises(ValueError):
            OneDnnParams(m_c=8, m_r=16)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            OneDnnParams(k_c=0)


class TestPackingHeuristic:
    def test_large_product_packs(self):
        assert not packing_would_dominate(500, 500, 500)

    def test_tiny_product_skips_packing(self):
        assert packing_would_dominate(4, 1, 4)

    def test_thin_batch_boundary(self):
        # n = 1 with tiny k: copy cost comparable to compute.
        assert packing_would_dominate(8, 1, 2)
