"""Tests for repro.quickscorer.gpu (GPU cost model extension)."""

import pytest

from repro.quickscorer.gpu import GpuQuickScorerCostModel, GpuSpec


class TestGpuSpec:
    def test_transfer_scales_with_volume(self):
        gpu = GpuSpec()
        assert gpu.transfer_us(2000, 136) == pytest.approx(
            2 * gpu.transfer_us(1000, 136)
        )


class TestGpuQuickScorer:
    def test_speedup_saturates_near_published_100x(self):
        model = GpuQuickScorerCostModel()
        assert model.speedup(20_000) == pytest.approx(100.0, rel=0.15)

    def test_speedup_monotone_in_trees(self):
        model = GpuQuickScorerCostModel()
        values = [model.speedup(n) for n in (100, 500, 2000, 10_000, 20_000)]
        assert values == sorted(values)

    def test_speedup_monotone_in_batch(self):
        model = GpuQuickScorerCostModel()
        values = [
            model.speedup(5000, batch_docs=b) for b in (128, 1000, 10_000, 100_000)
        ]
        assert values == sorted(values)

    def test_lettich_100x_claim_at_20k_trees(self):
        # "up to 100x faster ... very large forests (20,000 trees)".
        model = GpuQuickScorerCostModel()
        cpu = model.cpu_model.scoring_time_us(20_000, 64)
        gpu = model.scoring_time_us(20_000, 64, batch_docs=100_000)
        assert cpu / gpu == pytest.approx(100.0, rel=0.20)

    def test_cpu_wins_small_forests_small_batches(self):
        # The regime the paper evaluates (hundreds of trees, latency-bound
        # batches): the CPU remains the right engine.
        model = GpuQuickScorerCostModel()
        cpu = model.cpu_model.scoring_time_us(300, 64)
        gpu = model.scoring_time_us(300, 64, batch_docs=128)
        assert gpu > cpu

    def test_crossover_above_paper_forest_sizes(self):
        # In the latency-bound regime (small batches) the paper's
        # deployment forests (<= 878 trees) stay CPU-side.
        model = GpuQuickScorerCostModel()
        assert model.crossover_trees(batch_docs=128) > 878

    def test_batch_amortization(self):
        model = GpuQuickScorerCostModel()
        small = model.scoring_time_us(5000, 64, batch_docs=100)
        large = model.scoring_time_us(5000, 64, batch_docs=100_000)
        assert large < small

    def test_invalid_arguments(self):
        model = GpuQuickScorerCostModel()
        with pytest.raises(ValueError):
            model.speedup(0)
        with pytest.raises(ValueError):
            model.scoring_time_us(100, 64, batch_docs=0)
        with pytest.raises(ValueError):
            GpuQuickScorerCostModel(max_speedup=1.0)
        with pytest.raises(ValueError):
            GpuQuickScorerCostModel(half_utilization_trees=0)
