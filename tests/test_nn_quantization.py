"""Tests for repro.nn.quantization (future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (
    FeedForwardNetwork,
    quantization_error,
    quantize_network,
    quantize_student,
    quantize_tensor,
)
from repro.nn.quantization import quantized_speedup_estimate


class TestQuantizeTensor:
    def test_int8_range(self, rng):
        q = quantize_tensor(rng.normal(size=(20, 20)))
        assert q.values.dtype == np.int8
        assert q.values.min() >= -127
        assert q.values.max() <= 127

    def test_roundtrip_error_small_at_8_bits(self, rng):
        w = rng.normal(size=(50, 50))
        assert quantization_error(w, bits=8) < 0.01

    def test_error_grows_as_bits_shrink(self, rng):
        w = rng.normal(size=(50, 50))
        errors = [quantization_error(w, bits=b) for b in (8, 6, 4, 2)]
        assert errors == sorted(errors)

    def test_zeros_preserved(self, rng):
        w = rng.normal(size=(10, 10))
        w[w < 0.5] = 0.0
        q = quantize_tensor(w)
        assert q.sparsity() >= float(np.mean(w == 0.0)) - 1e-12
        # Every exact zero stays exactly zero after dequantization.
        np.testing.assert_array_equal(q.dequantize()[w == 0.0], 0.0)

    def test_max_magnitude_preserved(self, rng):
        w = rng.normal(size=(10, 10))
        q = quantize_tensor(w)
        assert np.abs(q.dequantize()).max() == pytest.approx(
            np.abs(w).max(), rel=1e-6
        )

    def test_all_zero_tensor(self):
        q = quantize_tensor(np.zeros((3, 3)))
        np.testing.assert_array_equal(q.dequantize(), 0.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones((2, 2)), bits=1)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones((2, 2)), bits=17)

    def test_int16_storage(self, rng):
        q = quantize_tensor(rng.normal(size=(4, 4)), bits=16)
        assert q.values.dtype == np.int16
        assert q.nbytes == 32  # two bytes per entry
        assert np.max(np.abs(q.values)) <= 2**15 - 1

    def test_nbytes(self, rng):
        q = quantize_tensor(rng.normal(size=(8, 4)))
        assert q.nbytes == 32

    @given(
        arrays(np.float64, (6, 6), elements=st.floats(-10, 10, allow_nan=False))
    )
    @settings(max_examples=50, deadline=None)
    def test_dequantized_within_half_step(self, w):
        q = quantize_tensor(w)
        step = q.scale
        assert np.abs(q.dequantize() - w).max() <= step / 2 + 1e-12


class TestQuantizeNetwork:
    def test_predictions_close_at_8_bits(self, rng):
        net = FeedForwardNetwork(10, (32, 16), seed=0)
        q = quantize_network(net, bits=8)
        x = rng.normal(size=(40, 10))
        np.testing.assert_allclose(q.predict(x), net.predict(x), atol=0.05)

    def test_original_untouched(self, rng):
        net = FeedForwardNetwork(10, (8,), seed=0)
        before = net.first_layer.weight.data.copy()
        quantize_network(net, bits=4)
        np.testing.assert_array_equal(net.first_layer.weight.data, before)

    def test_masks_survive(self):
        net = FeedForwardNetwork(10, (8,), seed=0)
        mask = (np.abs(net.first_layer.weight.data) > 0.2).astype(float)
        net.first_layer.set_mask(mask)
        q = quantize_network(net)
        assert q.first_layer.sparsity() >= net.first_layer.sparsity() - 1e-12

    def test_quantize_student(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        q = quantize_student(small_student, bits=8)
        a = q.predict(test.features[:50])
        b = small_student.predict(test.features[:50])
        # Ranking scores barely move at 8 bits.
        assert np.corrcoef(a, b)[0, 1] > 0.999
        assert "int8" in q.teacher_description


class TestSpeedupEstimate:
    def test_int8_ceiling_is_4x(self):
        assert quantized_speedup_estimate() == pytest.approx(4.0)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            quantized_speedup_estimate(fp_bits=32, int_bits=5)
