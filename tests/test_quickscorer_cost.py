"""Tests for repro.quickscorer.cost and repro.quickscorer.blockwise."""

import pytest

from repro.hardware import I9_9900K
from repro.quickscorer import (
    QuickScorerCostModel,
    forest_bytes,
    partition_into_blocks,
)
from repro.quickscorer.blockwise import tree_structure_bytes


class TestCostCalibration:
    """The model must reproduce the paper's published anchor points."""

    @pytest.mark.parametrize(
        "n_trees,n_leaves,paper_us",
        [(878, 64, 8.2), (500, 64, 4.9), (300, 64, 3.0)],
    )
    def test_published_anchors_within_5pct(self, n_trees, n_leaves, paper_us):
        model = QuickScorerCostModel()
        predicted = model.scoring_time_us(n_trees, n_leaves)
        assert predicted == pytest.approx(paper_us, rel=0.05)

    def test_256_leaves_more_than_4x_slower_per_tree(self):
        # Section 5.1: "a 256-leaves model is more than 4x slower than a
        # 64-leaves one with the same number of trees".
        model = QuickScorerCostModel()
        ratio = model.per_tree_ns(256) / model.per_tree_ns(64)
        assert ratio > 4.0

    def test_teacher_cost_near_paper_statement(self):
        # "given that ... 8.2us, a 256-leaves one takes at least 33us"
        # (600 trees, 256 leaves) -- we accept the 25-40us band.
        model = QuickScorerCostModel()
        t = model.scoring_time_us(600, 256)
        assert 25.0 <= t <= 40.0

    def test_linear_in_trees(self):
        model = QuickScorerCostModel()
        t100 = model.scoring_time_us(100, 64)
        t200 = model.scoring_time_us(200, 64)
        t300 = model.scoring_time_us(300, 64)
        assert t300 - t200 == pytest.approx(t200 - t100, rel=1e-9)

    def test_monotone_in_leaves(self):
        model = QuickScorerCostModel()
        times = [model.scoring_time_us(100, leaves) for leaves in (8, 16, 32, 64)]
        assert times == sorted(times)

    def test_measured_false_fraction_override(self):
        model = QuickScorerCostModel()
        low = model.scoring_time_us(100, 64, false_fraction=0.1)
        high = model.scoring_time_us(100, 64, false_fraction=0.5)
        assert low < high

    def test_unblocked_large_forest_penalized(self):
        # 20,000 trees (the scale Lettich et al. study) far exceeds L3.
        model = QuickScorerCostModel()
        blocked = model.scoring_time_us(20_000, 64, blockwise=True)
        unblocked = model.scoring_time_us(20_000, 64, blockwise=False)
        assert unblocked > blocked

    def test_small_forest_unaffected_by_blocking(self):
        model = QuickScorerCostModel()
        assert model.scoring_time_us(50, 16, blockwise=False) == pytest.approx(
            model.scoring_time_us(50, 16, blockwise=True)
        )

    def test_invalid_arguments(self):
        model = QuickScorerCostModel()
        with pytest.raises(ValueError):
            model.scoring_time_us(0, 64)
        with pytest.raises(ValueError):
            model.scoring_time_us(10, 0)

    def test_scalar_variant_slower(self):
        # vQS (the calibrated default) vs the scalar traversal.
        model = QuickScorerCostModel()
        scalar = model.scalar_variant()
        fast = model.scoring_time_us(300, 64)
        slow = scalar.scoring_time_us(300, 64)
        assert 1.5 < slow / fast <= model.vectorized_speedup + 0.1

    def test_scalar_variant_keeps_overhead(self):
        model = QuickScorerCostModel()
        assert model.scalar_variant().overhead_ns == model.overhead_ns

    def test_scoring_time_for_ensemble(self, small_forest):
        model = QuickScorerCostModel()
        t = model.scoring_time_for(small_forest)
        assert t == pytest.approx(
            model.scoring_time_us(
                small_forest.n_trees,
                small_forest.max_leaves,
                forest_footprint_bytes=forest_bytes(small_forest),
            )
        )


class TestBlockwise:
    def test_tree_bytes_grow_with_leaves(self):
        assert tree_structure_bytes(63, 64) < tree_structure_bytes(255, 256)

    def test_forest_bytes_sum(self, small_forest):
        assert forest_bytes(small_forest) == sum(
            tree_structure_bytes(len(t.internal_nodes()), t.n_leaves)
            for t in small_forest.trees
        )

    def test_small_forest_single_block(self, small_forest):
        plan = partition_into_blocks(small_forest)
        assert plan.n_blocks == 1
        assert plan.fits_cache

    def test_blocks_cover_all_trees(self, small_forest):
        plan = partition_into_blocks(small_forest, cache_fraction=0.0001)
        covered = []
        for lo, hi in plan.block_ranges:
            covered.extend(range(lo, hi))
        assert covered == list(range(small_forest.n_trees))

    def test_tiny_capacity_many_blocks(self, small_forest):
        plan = partition_into_blocks(small_forest, cache_fraction=0.00005)
        assert plan.n_blocks > 1

    def test_capacity_respected_when_possible(self, small_forest):
        plan = partition_into_blocks(small_forest, cache_fraction=0.5)
        assert all(b <= plan.capacity_bytes for b in plan.block_bytes)

    def test_invalid_fraction(self, small_forest):
        with pytest.raises(ValueError):
            partition_into_blocks(small_forest, cache_fraction=0.0)

    def test_capacity_derived_from_l3(self, small_forest):
        plan = partition_into_blocks(small_forest, cache_fraction=0.5)
        assert plan.capacity_bytes == int(I9_9900K.l3.size_bytes * 0.5)
