"""Tests for repro.design.cascade (early-exit extension)."""

import numpy as np
import pytest

from repro.design import CascadeStage, EarlyExitCascade
from repro.exceptions import CascadeError, ReproError
from repro.metrics import mean_ndcg


def linear_scorer(weights):
    weights = np.asarray(weights, dtype=np.float64)

    def score(features):
        return features @ weights

    return score


class TestCascadeStage:
    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            CascadeStage("s", lambda x: x[:, 0], 1.0, keep_fraction=0.0)

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            CascadeStage("s", lambda x: x[:, 0], -1.0)


class TestExpectedCost:
    def test_single_stage(self):
        cascade = EarlyExitCascade(
            [CascadeStage("a", lambda x: x[:, 0], 2.0)]
        )
        assert cascade.expected_cost_us_per_doc() == pytest.approx(2.0)

    def test_two_stage_amortization(self):
        cascade = EarlyExitCascade(
            [
                CascadeStage("cheap", lambda x: x[:, 0], 0.2, keep_fraction=0.25),
                CascadeStage("expensive", lambda x: x[:, 0], 4.0),
            ]
        )
        assert cascade.expected_cost_us_per_doc() == pytest.approx(0.2 + 0.25 * 4.0)

    def test_three_stage_geometric(self):
        cascade = EarlyExitCascade(
            [
                CascadeStage("a", lambda x: x[:, 0], 1.0, keep_fraction=0.5),
                CascadeStage("b", lambda x: x[:, 0], 2.0, keep_fraction=0.5),
                CascadeStage("c", lambda x: x[:, 0], 4.0),
            ]
        )
        assert cascade.expected_cost_us_per_doc() == pytest.approx(
            1.0 + 0.5 * 2.0 + 0.25 * 4.0
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EarlyExitCascade([])


class TestScoring:
    def test_single_stage_order_matches_scorer(self, rng):
        x = rng.normal(size=(12, 3))
        w = np.asarray([1.0, -0.5, 0.2])
        cascade = EarlyExitCascade([CascadeStage("a", linear_scorer(w), 1.0)])
        scores = cascade.score_query(x)
        np.testing.assert_array_equal(np.argsort(-scores), np.argsort(-(x @ w)))

    def test_survivors_outrank_dropouts(self, rng):
        x = rng.normal(size=(20, 3))
        stage1 = linear_scorer([1.0, 0.0, 0.0])
        stage2 = linear_scorer([0.0, 1.0, 0.0])
        cascade = EarlyExitCascade(
            [
                CascadeStage("a", stage1, 0.1, keep_fraction=0.3),
                CascadeStage("b", stage2, 1.0),
            ]
        )
        scores = cascade.score_query(x)
        survivors = np.argsort(-stage1(x))[:6]
        dropout_max = np.delete(scores, survivors).max()
        assert scores[survivors].min() > dropout_max

    def test_perfect_final_stage_preserves_top(self, rng):
        # With a perfect second stage and generous keep fraction, the
        # cascade's NDCG@k matches the oracle's on the survivors.
        from repro.datasets import make_msn30k_like

        data = make_msn30k_like(n_queries=30, docs_per_query=15, seed=5)
        oracle = lambda feats: feats[:, :40].sum(axis=1)  # noqa: E731
        cascade = EarlyExitCascade(
            [
                CascadeStage("oracle-cheap", oracle, 0.1, keep_fraction=0.8),
                CascadeStage("oracle", oracle, 1.0),
            ]
        )
        cascade_ndcg = mean_ndcg(data, cascade.score_dataset(data), 5)
        direct = np.concatenate(
            [oracle(f) for f, _ in data.iter_queries()]
        )
        direct_ndcg = mean_ndcg(data, direct, 5)
        assert cascade_ndcg == pytest.approx(direct_ndcg, abs=0.02)

    def test_stage_output_validated(self, rng):
        bad = CascadeStage("bad", lambda x: np.zeros((2, 2)), 1.0)
        cascade = EarlyExitCascade([bad])
        with pytest.raises(ValueError, match="returned shape"):
            cascade.score_query(rng.normal(size=(5, 3)))

    def test_zero_doc_query_is_noop(self):
        # Regression: score_query crashed on empty queries (min() of an
        # empty score array); the contract now matches BatchEngine's
        # zero-doc no-op.
        cascade = EarlyExitCascade(
            [
                CascadeStage("a", lambda x: x[:, 0], 0.1, keep_fraction=0.5),
                CascadeStage("b", lambda x: x[:, 0], 1.0),
            ]
        )
        scores = cascade.score_query(np.zeros((0, 3)))
        assert scores.shape == (0,)
        assert scores.dtype == np.float64
        detailed = cascade.score_query_detailed(np.zeros((0, 3)))
        assert detailed.stages_run == 0
        assert detailed.predicted_spend_us == 0.0
        assert not detailed.exited_early

    def test_score_dataset_with_empty_query_slice(self):
        # LtrDataset cannot represent a zero-doc query, so the empty
        # slice arrives through a duck-typed stand-in — exactly what a
        # pre-filtered serving dataset looks like.
        class Stub:
            features = np.arange(24.0).reshape(8, 3)
            n_docs = 8
            n_queries = 3
            _slices = [slice(0, 4), slice(4, 4), slice(4, 8)]

            def query_slice(self, qi):
                return self._slices[qi]

        cascade = EarlyExitCascade(
            [
                CascadeStage("a", lambda x: x[:, 0], 0.1, keep_fraction=0.5),
                CascadeStage("b", lambda x: -x[:, 1], 1.0),
            ]
        )
        scores = cascade.score_dataset(Stub())
        assert scores.shape == (8,)
        assert np.isfinite(scores).all()

    def test_nan_stage_raises_naming_the_stage(self, rng):
        # Regression: NaN/inf stage scores silently corrupted the band
        # offsets (NaN min/max poisons the normalization) instead of
        # failing loudly.
        def poisoned(x):
            scores = x[:, 0].copy()
            scores[0] = np.nan
            return scores

        cascade = EarlyExitCascade(
            [
                CascadeStage("cheap", lambda x: x[:, 0], 0.1, keep_fraction=0.5),
                CascadeStage("poisoned-net", poisoned, 1.0),
            ]
        )
        with pytest.raises(CascadeError, match="poisoned-net"):
            cascade.score_query(rng.normal(size=(10, 3)))

    def test_inf_stage_raises(self, rng):
        bad = CascadeStage("diverged", lambda x: x[:, 0] * np.inf, 1.0)
        with pytest.raises(CascadeError, match="diverged"):
            EarlyExitCascade([bad]).score_query(rng.normal(size=(4, 3)))

    def test_cascade_error_is_repro_error(self):
        assert issubclass(CascadeError, ReproError)

    def test_describe(self):
        cascade = EarlyExitCascade(
            [
                CascadeStage("net", lambda x: x[:, 0], 0.3, keep_fraction=0.2),
                CascadeStage("forest", lambda x: x[:, 0], 3.0),
            ]
        )
        text = cascade.describe()
        assert "net" in text and "keep 20%" in text


class TestSurvivorCutPolicy:
    """The ceil cut policy, pinned (regression for banker's rounding)."""

    def _stage(self, keep):
        return CascadeStage("s", lambda x: x[:, 0], 1.0, keep_fraction=keep)

    def test_half_of_five_promotes_three(self):
        # int(round(0.5 * 5)) == 2 under banker's rounding; the pinned
        # ceil policy promotes 3 — at least the configured share.
        assert self._stage(0.5).survivor_count(5) == 3

    def test_half_of_six_promotes_three(self):
        assert self._stage(0.5).survivor_count(6) == 3

    def test_pinned_table(self):
        # (keep, n_alive) -> survivors; the documented contract.
        table = {
            (0.3, 10): 3,
            (0.25, 10): 3,  # ceil(2.5), round() would give 2
            (0.1, 4): 1,
            (0.01, 3): 1,  # floor of one survivor
            (1.0, 7): 7,
            (0.999, 1): 1,
        }
        for (keep, n), expected in table.items():
            assert self._stage(keep).survivor_count(n) == expected, (keep, n)

    def test_zero_alive(self):
        assert self._stage(0.5).survivor_count(0) == 0

    def test_monotone_in_query_length(self):
        stage = self._stage(0.37)
        counts = [stage.survivor_count(n) for n in range(1, 50)]
        assert counts == sorted(counts)


class TestBudget:
    def _cascade(self, budget):
        return EarlyExitCascade(
            [
                CascadeStage("a", lambda x: x[:, 0], 1.0, keep_fraction=0.5),
                CascadeStage("b", lambda x: x[:, 1], 4.0, keep_fraction=0.5),
                CascadeStage("c", lambda x: x[:, 2], 16.0),
            ],
            budget_us_per_query=budget,
        )

    def test_invalid_budget_rejected(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                self._cascade(bad)

    def test_unbudgeted_runs_every_stage(self, rng):
        result = self._cascade(None).score_query_detailed(
            rng.normal(size=(8, 3))
        )
        assert result.stages_run == 3
        assert not result.exited_early
        # 8 docs -> 4 -> 2: spend = 8*1 + 4*4 + 2*16.
        assert result.predicted_spend_us == pytest.approx(56.0)

    def test_tight_budget_stops_after_first_stage(self, rng):
        # 8 docs: stage 1 spends 8; promoting 4 to stage 2 would add 16.
        result = self._cascade(20.0).score_query_detailed(
            rng.normal(size=(8, 3))
        )
        assert result.stages_run == 1
        assert result.exited_early
        assert result.predicted_spend_us == pytest.approx(8.0)

    def test_budget_allows_partial_promotion(self, rng):
        # Budget 30: 8 + 16 = 24 fits, promoting 2 to stage c adds 32.
        result = self._cascade(30.0).score_query_detailed(
            rng.normal(size=(8, 3))
        )
        assert result.stages_run == 2
        assert result.exited_early
        assert result.predicted_spend_us == pytest.approx(24.0)

    def test_first_stage_exempt(self, rng):
        # Even a budget below the first stage's cost still ranks.
        result = self._cascade(0.5).score_query_detailed(
            rng.normal(size=(8, 3))
        )
        assert result.stages_run == 1
        assert result.predicted_spend_us == pytest.approx(8.0)

    def test_predicted_spend_bound(self, rng):
        for budget in (0.5, 8.0, 20.0, 30.0, 100.0):
            cascade = self._cascade(budget)
            result = cascade.score_query_detailed(rng.normal(size=(8, 3)))
            assert result.predicted_spend_us <= max(budget, 8 * 1.0) + 1e-9

    def test_closed_form_matches_detailed(self, rng):
        for budget in (None, 0.5, 20.0, 30.0, 1000.0):
            cascade = self._cascade(budget)
            for n in (1, 2, 5, 8, 31):
                result = cascade.score_query_detailed(
                    rng.normal(size=(n, 3))
                )
                assert result.predicted_spend_us == pytest.approx(
                    cascade.predicted_query_spend_us(n)
                ), (budget, n)

    def test_budget_in_describe(self):
        assert "budget 30 us/query" in self._cascade(30.0).describe()


class TestRefinementProperty:
    """Cascade output is always a refinement, never a shuffle."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        data=st.data(),
        n_docs=st.integers(1, 40),
        n_stages=st.integers(1, 4),
        budgeted=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_dropouts_rank_below_survivors(
        self, data, n_docs, n_stages, budgeted
    ):
        st = self.st
        rng = np.random.default_rng(
            data.draw(st.integers(0, 2**32 - 1), label="seed")
        )
        # Integer-valued features force plenty of tied stage scores.
        x = rng.integers(-2, 3, size=(n_docs, max(n_stages, 1))).astype(
            np.float64
        )
        stages = []
        for i in range(n_stages):
            keep = data.draw(
                st.floats(0.05, 1.0, allow_nan=False), label=f"keep{i}"
            )
            cost = data.draw(
                st.floats(0.01, 5.0, allow_nan=False), label=f"cost{i}"
            )
            stages.append(
                CascadeStage(
                    f"s{i}",
                    (lambda col: lambda f: f[:, col])(i),
                    cost,
                    keep_fraction=keep,
                )
            )
        budget = (
            data.draw(st.floats(0.5, 50.0, allow_nan=False), label="budget")
            if budgeted
            else None
        )
        cascade = EarlyExitCascade(stages, budget_us_per_query=budget)
        result = cascade.score_query_detailed(x)

        assert result.scores.shape == (n_docs,)
        assert np.isfinite(result.scores).all()
        assert 1 <= result.stages_run <= n_stages
        # Survivor sets nest, and every stage-i dropout's final score is
        # strictly below every doc the next stage evaluated.
        np.testing.assert_array_equal(result.survivors[0], np.arange(n_docs))
        for level in range(result.stages_run - 1):
            prev = set(result.survivors[level].tolist())
            nxt = set(result.survivors[level + 1].tolist())
            assert nxt <= prev
            assert len(nxt) == stages[level].survivor_count(len(prev))
            dropped = sorted(prev - nxt)
            if dropped:
                assert (
                    result.scores[dropped].max()
                    < result.scores[sorted(nxt)].min()
                )
        # Budget accounting matches the closed form and its bound.
        assert result.predicted_spend_us == pytest.approx(
            cascade.predicted_query_spend_us(n_docs)
        )
        if budget is not None:
            bound = max(budget, n_docs * stages[0].cost_us_per_doc)
            assert result.predicted_spend_us <= bound + 1e-9

    @given(
        costs=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=4),
        keeps=st.lists(st.floats(0.05, 1.0), min_size=4, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_expected_cost_closed_form(self, costs, keeps):
        # expected_cost == c1 + k1*c2 + k1*k2*c3 + k1*k2*k3*c4 for every
        # stage count from 1 to 4.
        stages = [
            CascadeStage(f"s{i}", lambda x: x[:, 0], c, keep_fraction=k)
            for i, (c, k) in enumerate(zip(costs, keeps))
        ]
        cascade = EarlyExitCascade(stages)
        expected = 0.0
        alive = 1.0
        for i, (c, k) in enumerate(zip(costs, keeps)):
            expected += alive * c
            if i < len(costs) - 1:
                alive *= k
        assert cascade.expected_cost_us_per_doc() == pytest.approx(expected)


class TestCascadeCostProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        costs=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=5),
        keeps=st.lists(st.floats(0.05, 1.0), min_size=5, max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_expected_cost_bounds(self, costs, keeps):
        stages = [
            CascadeStage(f"s{i}", lambda x: x[:, 0], c, keep_fraction=k)
            for i, (c, k) in enumerate(zip(costs, keeps))
        ]
        cascade = EarlyExitCascade(stages)
        cost = cascade.expected_cost_us_per_doc()
        # Bounded by running every stage on every document, and at least
        # the first stage's full cost.
        assert costs[0] <= cost <= sum(costs) + 1e-9

    @given(
        cost2=st.floats(0.5, 10.0),
        keep_small=st.floats(0.05, 0.4),
        keep_large=st.floats(0.6, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_tighter_cut_is_cheaper(self, cost2, keep_small, keep_large):
        def cascade_with(keep):
            return EarlyExitCascade(
                [
                    CascadeStage("a", lambda x: x[:, 0], 0.1, keep_fraction=keep),
                    CascadeStage("b", lambda x: x[:, 0], cost2),
                ]
            ).expected_cost_us_per_doc()

        assert cascade_with(keep_small) < cascade_with(keep_large)


class TestCascadeOnPipeline:
    def test_cascade_cheaper_than_forest_alone(self, mini_pipeline):
        forest_eval = mini_pipeline.evaluate_forest(mini_pipeline.zoo.mid_forest)
        net_eval = mini_pipeline.evaluate_network(
            mini_pipeline.zoo.low_latency[2], pruned=True
        )
        student = mini_pipeline.pruned_student(mini_pipeline.zoo.low_latency[2])
        forest = mini_pipeline.forest(mini_pipeline.zoo.mid_forest)
        cascade = EarlyExitCascade(
            [
                CascadeStage(
                    "pruned-net",
                    student.predict,
                    net_eval.time_us,
                    keep_fraction=0.3,
                ),
                CascadeStage("forest", forest.predict, forest_eval.time_us),
            ]
        )
        assert cascade.expected_cost_us_per_doc() < forest_eval.time_us
        scores = cascade.score_dataset(mini_pipeline.test)
        ndcg = mean_ndcg(mini_pipeline.test, scores, 10)
        assert ndcg > 0.3  # sane ranking quality end to end
