"""Tests for repro.design.cascade (early-exit extension)."""

import numpy as np
import pytest

from repro.design import CascadeStage, EarlyExitCascade
from repro.metrics import mean_ndcg


def linear_scorer(weights):
    weights = np.asarray(weights, dtype=np.float64)

    def score(features):
        return features @ weights

    return score


class TestCascadeStage:
    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            CascadeStage("s", lambda x: x[:, 0], 1.0, keep_fraction=0.0)

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            CascadeStage("s", lambda x: x[:, 0], -1.0)


class TestExpectedCost:
    def test_single_stage(self):
        cascade = EarlyExitCascade(
            [CascadeStage("a", lambda x: x[:, 0], 2.0)]
        )
        assert cascade.expected_cost_us_per_doc() == pytest.approx(2.0)

    def test_two_stage_amortization(self):
        cascade = EarlyExitCascade(
            [
                CascadeStage("cheap", lambda x: x[:, 0], 0.2, keep_fraction=0.25),
                CascadeStage("expensive", lambda x: x[:, 0], 4.0),
            ]
        )
        assert cascade.expected_cost_us_per_doc() == pytest.approx(0.2 + 0.25 * 4.0)

    def test_three_stage_geometric(self):
        cascade = EarlyExitCascade(
            [
                CascadeStage("a", lambda x: x[:, 0], 1.0, keep_fraction=0.5),
                CascadeStage("b", lambda x: x[:, 0], 2.0, keep_fraction=0.5),
                CascadeStage("c", lambda x: x[:, 0], 4.0),
            ]
        )
        assert cascade.expected_cost_us_per_doc() == pytest.approx(
            1.0 + 0.5 * 2.0 + 0.25 * 4.0
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EarlyExitCascade([])


class TestScoring:
    def test_single_stage_order_matches_scorer(self, rng):
        x = rng.normal(size=(12, 3))
        w = np.asarray([1.0, -0.5, 0.2])
        cascade = EarlyExitCascade([CascadeStage("a", linear_scorer(w), 1.0)])
        scores = cascade.score_query(x)
        np.testing.assert_array_equal(np.argsort(-scores), np.argsort(-(x @ w)))

    def test_survivors_outrank_dropouts(self, rng):
        x = rng.normal(size=(20, 3))
        stage1 = linear_scorer([1.0, 0.0, 0.0])
        stage2 = linear_scorer([0.0, 1.0, 0.0])
        cascade = EarlyExitCascade(
            [
                CascadeStage("a", stage1, 0.1, keep_fraction=0.3),
                CascadeStage("b", stage2, 1.0),
            ]
        )
        scores = cascade.score_query(x)
        survivors = np.argsort(-stage1(x))[:6]
        dropout_max = np.delete(scores, survivors).max()
        assert scores[survivors].min() > dropout_max

    def test_perfect_final_stage_preserves_top(self, rng):
        # With a perfect second stage and generous keep fraction, the
        # cascade's NDCG@k matches the oracle's on the survivors.
        from repro.datasets import make_msn30k_like

        data = make_msn30k_like(n_queries=30, docs_per_query=15, seed=5)
        oracle = lambda feats: feats[:, :40].sum(axis=1)  # noqa: E731
        cascade = EarlyExitCascade(
            [
                CascadeStage("oracle-cheap", oracle, 0.1, keep_fraction=0.8),
                CascadeStage("oracle", oracle, 1.0),
            ]
        )
        cascade_ndcg = mean_ndcg(data, cascade.score_dataset(data), 5)
        direct = np.concatenate(
            [oracle(f) for f, _ in data.iter_queries()]
        )
        direct_ndcg = mean_ndcg(data, direct, 5)
        assert cascade_ndcg == pytest.approx(direct_ndcg, abs=0.02)

    def test_stage_output_validated(self, rng):
        bad = CascadeStage("bad", lambda x: np.zeros((2, 2)), 1.0)
        cascade = EarlyExitCascade([bad])
        with pytest.raises(ValueError, match="returned shape"):
            cascade.score_query(rng.normal(size=(5, 3)))

    def test_describe(self):
        cascade = EarlyExitCascade(
            [
                CascadeStage("net", lambda x: x[:, 0], 0.3, keep_fraction=0.2),
                CascadeStage("forest", lambda x: x[:, 0], 3.0),
            ]
        )
        text = cascade.describe()
        assert "net" in text and "keep 20%" in text


class TestCascadeCostProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        costs=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=5),
        keeps=st.lists(st.floats(0.05, 1.0), min_size=5, max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_expected_cost_bounds(self, costs, keeps):
        stages = [
            CascadeStage(f"s{i}", lambda x: x[:, 0], c, keep_fraction=k)
            for i, (c, k) in enumerate(zip(costs, keeps))
        ]
        cascade = EarlyExitCascade(stages)
        cost = cascade.expected_cost_us_per_doc()
        # Bounded by running every stage on every document, and at least
        # the first stage's full cost.
        assert costs[0] <= cost <= sum(costs) + 1e-9

    @given(
        cost2=st.floats(0.5, 10.0),
        keep_small=st.floats(0.05, 0.4),
        keep_large=st.floats(0.6, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_tighter_cut_is_cheaper(self, cost2, keep_small, keep_large):
        def cascade_with(keep):
            return EarlyExitCascade(
                [
                    CascadeStage("a", lambda x: x[:, 0], 0.1, keep_fraction=keep),
                    CascadeStage("b", lambda x: x[:, 0], cost2),
                ]
            ).expected_cost_us_per_doc()

        assert cascade_with(keep_small) < cascade_with(keep_large)


class TestCascadeOnPipeline:
    def test_cascade_cheaper_than_forest_alone(self, mini_pipeline):
        forest_eval = mini_pipeline.evaluate_forest(mini_pipeline.zoo.mid_forest)
        net_eval = mini_pipeline.evaluate_network(
            mini_pipeline.zoo.low_latency[2], pruned=True
        )
        student = mini_pipeline.pruned_student(mini_pipeline.zoo.low_latency[2])
        forest = mini_pipeline.forest(mini_pipeline.zoo.mid_forest)
        cascade = EarlyExitCascade(
            [
                CascadeStage(
                    "pruned-net",
                    student.predict,
                    net_eval.time_us,
                    keep_fraction=0.3,
                ),
                CascadeStage("forest", forest.predict, forest_eval.time_us),
            ]
        )
        assert cascade.expected_cost_us_per_doc() < forest_eval.time_us
        scores = cascade.score_dataset(mini_pipeline.test)
        ndcg = mean_ndcg(mini_pipeline.test, scores, 10)
        assert ndcg > 0.3  # sane ranking quality end to end
