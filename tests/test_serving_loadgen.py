"""Load generator: deterministic schedules, Zipf skew, report aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError, ReproError
from repro.obs.probe import build_probe_models
from repro.runtime import AsyncConfig, ServiceConfig, TenantConfig
from repro.serving import (
    LoadReport,
    LoadSpec,
    ScoringService,
    build_schedule,
    make_queries,
    run_load,
)


class TestLoadSpec:
    def test_round_trip(self):
        spec = LoadSpec(
            mode="closed",
            workers=4,
            requests_per_worker=10,
            tenants=(("web", 3.0), ("batch", 1.0)),
            zipf_s=0.9,
            seed=5,
        )
        import json

        rebuilt = LoadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_validation(self):
        with pytest.raises(ConfigError, match="mode"):
            LoadSpec(mode="sideways")
        with pytest.raises(ConfigError, match="rate_per_s"):
            LoadSpec(rate_per_s=0.0)
        with pytest.raises(ConfigError, match="weight"):
            LoadSpec(tenants=(("a", 0.0),))
        with pytest.raises(ConfigError, match="at least one"):
            LoadSpec(tenants=())
        with pytest.raises(ConfigError, match="unknown LoadSpec"):
            LoadSpec.from_dict({"velocity": 9000})


class TestSchedule:
    def test_deterministic_in_seed(self):
        spec = LoadSpec(duration_s=0.5, rate_per_s=500.0, seed=3)
        assert build_schedule(spec) == build_schedule(spec)
        other = LoadSpec(duration_s=0.5, rate_per_s=500.0, seed=4)
        assert build_schedule(other) != build_schedule(spec)

    def test_open_arrivals_ordered_within_duration(self):
        spec = LoadSpec(duration_s=0.25, rate_per_s=800.0, seed=1)
        schedule = build_schedule(spec)
        times = [a.at_s for a in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < spec.duration_s for t in times)
        # Poisson expectation: rate x duration, within wide bounds.
        assert 100 <= len(schedule) <= 320

    def test_burst_modulation_raises_volume(self):
        calm = LoadSpec(
            duration_s=1.0, rate_per_s=300.0, burst_factor=1.0, seed=2
        )
        bursty = LoadSpec(
            duration_s=1.0, rate_per_s=300.0, burst_factor=4.0, seed=2
        )
        # Half the time runs at 4x: expect ~2.5x the arrivals.
        assert len(build_schedule(bursty)) > 1.5 * len(build_schedule(calm))

    def test_closed_mode_counts(self):
        spec = LoadSpec(mode="closed", workers=6, requests_per_worker=9)
        assert len(build_schedule(spec)) == 54

    def test_zipf_skews_queries(self):
        spec = LoadSpec(
            mode="closed",
            workers=10,
            requests_per_worker=100,
            n_users=10_000,
            n_queries=50,
            zipf_s=1.4,
            seed=6,
        )
        schedule = build_schedule(spec)
        counts = np.bincount(
            [a.query for a in schedule], minlength=spec.n_queries
        )
        # Rank-1 users all map to query (1 % 50): the head must dominate
        # a uniform share and dwarf the tail.
        assert counts.max() > 3 * (len(schedule) / spec.n_queries)
        assert counts.min() < counts.max() / 10

    def test_tenant_mix_respects_weights(self):
        spec = LoadSpec(
            mode="closed",
            workers=10,
            requests_per_worker=100,
            tenants=(("heavy", 9.0), ("light", 1.0)),
            seed=8,
        )
        schedule = build_schedule(spec)
        heavy = sum(a.tenant == "heavy" for a in schedule)
        assert 0.8 < heavy / len(schedule) < 0.98

    def test_make_queries_shapes(self):
        spec = LoadSpec(n_queries=7, docs_per_query=5)
        queries = make_queries(spec, 11)
        assert len(queries) == 7
        assert all(q.shape == (5, 11) for q in queries)


class TestRunLoad:
    @pytest.fixture(scope="class")
    def service(self):
        models = build_probe_models(n_queries=4, docs_per_query=8, seed=0)
        return ScoringService(
            models["dense-network"], ServiceConfig(backend="dense-network")
        )

    def test_closed_run_accounts_every_request(self, service, obs_clean):
        spec = LoadSpec(
            mode="closed",
            workers=4,
            requests_per_worker=10,
            n_queries=8,
            docs_per_query=4,
            tenants=(("a", 1.0), ("b", 1.0)),
            seed=3,
        )
        report = run_load(
            service, spec, make_queries(spec, service.scorer.input_dim)
        )
        assert report.offered == 40
        assert report.errors == 0
        assert report.served + report.shed == report.offered
        assert sum(report.served_by_tenant.values()) == report.served
        serving = obs_clean.serving_report()
        assert sum(row.served for row in serving.rows) == report.served

    def test_rate_limited_tenant_sheds(self, service, obs_clean):
        spec = LoadSpec(
            mode="closed",
            workers=4,
            requests_per_worker=10,
            n_queries=8,
            docs_per_query=4,
            tenants=(("limited", 1.0),),
            seed=3,
        )
        frontend = AsyncConfig(
            tenants=(TenantConfig(name="limited", rate_per_s=1.0, burst=3),)
        )
        report = run_load(
            service,
            spec,
            make_queries(spec, service.scorer.input_dim),
            frontend=frontend,
        )
        assert report.shed >= 30  # 40 offered, bucket of 3 at 1/s
        assert set(report.shed_by_tenant["limited"]) == {"rate-limit"}
        assert 0.0 < report.shed_ratio < 1.0

    def test_generates_queries_from_n_features(self, service, obs_clean):
        spec = LoadSpec(
            mode="closed", workers=2, requests_per_worker=3, n_queries=4
        )
        report = run_load(
            service, spec, n_features=service.scorer.input_dim
        )
        assert report.offered == 6 and report.errors == 0

    def test_missing_queries_rejected(self, service):
        spec = LoadSpec(n_queries=4)
        with pytest.raises(ReproError, match="n_features"):
            run_load(service, spec)

    def test_report_serialises(self):
        report = LoadReport(spec=LoadSpec(), offered=10, served=8)
        report.shed_by_tenant["t"] = {"rate-limit": 2}
        data = report.to_dict()
        assert data["shed"] == 2 and data["served"] == 8
        assert data["swap_events"] == [] and data["served_by_version"] == {}
        assert "rate-limit" in report.render() or "shed" in report.render()

    def test_report_renders_swap_events(self):
        report = LoadReport(spec=LoadSpec(), offered=10, served=10)
        report.swap_events.append(
            {"at_s": 0.25, "at_request": 5, "action": "forced"}
        )
        report.served_by_version.update({"v1": 4, "v2": 6})
        rendered = report.render()
        assert "swap at 0.250s" in rendered and "forced" in rendered
        assert "v1: 4" in rendered and "v2: 6" in rendered
        assert report.to_dict()["served_by_version"] == {"v1": 4, "v2": 6}
