"""Property-based tests for the timing predictors (pure analytics, fast)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quickscorer import QuickScorerCostModel
from repro.timing import NetworkTimePredictor


@pytest.fixture(scope="module")
def predictor():
    return NetworkTimePredictor()


ARCH = st.lists(st.integers(10, 800), min_size=1, max_size=4).map(
    lambda widths: tuple(sorted(widths, reverse=True))
)


class TestDensePredictorProperties:
    @given(hidden=ARCH)
    @settings(max_examples=40, deadline=None)
    def test_times_positive_and_finite(self, predictor, hidden):
        report = predictor.predict(136, hidden)
        assert 0.0 < report.dense_total_us_per_doc < 1000.0
        # A single-hidden-layer net puts 100% of the cost in layer 1.
        assert 0.0 < report.first_layer_impact_pct <= 100.0

    @given(hidden=ARCH, extra=st.integers(10, 400))
    @settings(max_examples=40, deadline=None)
    def test_wider_first_layer_costs_more(self, predictor, hidden, extra):
        base = predictor.predict(136, hidden).dense_total_us_per_doc
        wider = ((hidden[0] + extra),) + hidden[1:]
        more = predictor.predict(136, wider).dense_total_us_per_doc
        assert more > base

    @given(hidden=ARCH)
    @settings(max_examples=40, deadline=None)
    def test_forecast_below_dense(self, predictor, hidden):
        report = predictor.predict(136, hidden)
        assert (
            0.0
            <= report.pruned_forecast_us_per_doc
            < report.dense_total_us_per_doc
        )

    @given(hidden=ARCH, sparsity=st.floats(0.9, 0.995))
    @settings(max_examples=40, deadline=None)
    def test_hybrid_sandwiched(self, predictor, hidden, sparsity):
        report = predictor.predict(
            136, hidden, first_layer_sparsity=sparsity
        )
        assert (
            report.pruned_forecast_us_per_doc
            <= report.hybrid_total_us_per_doc
            <= report.dense_total_us_per_doc + 1e-9
        )

    @given(
        hidden=ARCH,
        features=st.sampled_from([64, 136, 220, 500]),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_features_cost_more(self, predictor, hidden, features):
        small = predictor.predict(32, hidden).dense_total_us_per_doc
        large = predictor.predict(features, hidden).dense_total_us_per_doc
        assert large >= small


class TestQuickScorerCostProperties:
    @given(
        n_trees=st.integers(1, 5000),
        n_leaves=st.sampled_from([8, 16, 32, 64, 128, 256]),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_positive_and_monotone(self, n_trees, n_leaves):
        model = QuickScorerCostModel()
        t = model.scoring_time_us(n_trees, n_leaves)
        assert t > 0
        assert model.scoring_time_us(n_trees + 1, n_leaves) > t

    @given(n_trees=st.integers(1, 2000), frac=st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_false_fraction_monotone(self, n_trees, frac):
        model = QuickScorerCostModel()
        low = model.scoring_time_us(n_trees, 64, false_fraction=frac * 0.5)
        high = model.scoring_time_us(n_trees, 64, false_fraction=frac)
        assert high >= low
