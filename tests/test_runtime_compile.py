"""Tests for repro.runtime.compile — AOT inference plans.

The bit contract is layered (see the module docstring of
``repro.runtime.compile``): float64 dense-GEMM layers reproduce
``FeedForwardNetwork.predict`` bit for bit, float64 CSR-SpMM layers
reproduce ``CsrMatrix.matmul_reference``, stable-mode plans reproduce
the fixed-order einsum and are chunk-invariant, and float32 plans are
tolerance-bounded.  Hypothesis drives the identities across
architectures x sparsity x batch sizes, including n=0 and n=1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.network import FeedForwardNetwork
from repro.pruning import LevelPruner
from repro.runtime import (
    CompileError,
    CompiledNetworkScorer,
    InferencePlan,
    PricingContext,
    compile_network,
    make_scorer,
    reference_scores,
)
from repro.runtime.compile import DENSE_KERNEL, SPARSE_KERNEL


@pytest.fixture(scope="module")
def context(predictor_cache):
    return PricingContext(predictor=predictor_cache)


def _network(
    hidden=(16, 8), input_dim=12, sparsity=0.0, seed=0
) -> FeedForwardNetwork:
    network = FeedForwardNetwork(input_dim, hidden, seed=seed)
    if sparsity > 0:
        LevelPruner(sparsity).apply(network.first_layer)
    return network


ARCHITECTURES = [(8,), (16, 8), (24, 12, 6)]


# ----------------------------------------------------------------------
# Bit identity (float64)
# ----------------------------------------------------------------------
class TestBitIdentity:
    @given(
        arch=st.sampled_from(ARCHITECTURES),
        sparsity=st.sampled_from([0.0, 0.5, 0.95]),
        n=st.sampled_from([0, 1, 2, 3, 17, 64]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_forced_dense_plan_matches_predict(
        self, context, arch, sparsity, n, seed
    ):
        """All-dense float64 plans reproduce the eager forward's bits."""
        network = _network(arch, sparsity=sparsity, seed=seed % 100)
        plan = compile_network(
            network,
            context=context,
            kernels=[DENSE_KERNEL] * network.n_layers,
        )
        x = np.random.default_rng(seed).normal(size=(n, 12))
        scores = plan.score(x)
        assert scores.dtype == np.float64
        if n == 0:
            assert scores.shape == (0,)
        else:
            np.testing.assert_array_equal(scores, network.predict(x))

    @given(
        arch=st.sampled_from(ARCHITECTURES),
        sparsity=st.sampled_from([0.9, 0.98]),
        n=st.sampled_from([0, 1, 5, 33, 64]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_hybrid_plan_matches_strict_reference(
        self, context, arch, sparsity, n, seed
    ):
        """Plans with a forced-sparse first layer reproduce the hybrid
        reference — including via the independently-derived per-non-zero
        loop (``strict_spmm``)."""
        network = _network(arch, sparsity=sparsity, seed=seed % 100)
        kernels = [SPARSE_KERNEL] + [None] * (network.n_layers - 1)
        plan = compile_network(network, context=context, kernels=kernels)
        assert plan.layers[0].kernel == SPARSE_KERNEL
        x = np.random.default_rng(seed).normal(size=(n, 12))
        scores = plan.score(x)
        np.testing.assert_array_equal(
            scores, reference_scores(network, plan, x)
        )
        np.testing.assert_array_equal(
            scores, reference_scores(network, plan, x, strict_spmm=True)
        )

    def test_auto_selection_picks_sparse_on_pruned_layer(self, context):
        network = _network((64, 16), input_dim=64, sparsity=0.97, seed=1)
        plan = compile_network(network, context=context)
        assert plan.layers[0].sparsity > 0.9
        counts = plan.kernel_counts()
        assert sum(counts.values()) == network.n_layers
        x = np.random.default_rng(2).normal(size=(40, 64))
        np.testing.assert_array_equal(
            plan.score(x), reference_scores(network, plan, x)
        )

    def test_scores_chunked_beyond_max_batch(self, context):
        """score() splits requests larger than max_batch transparently."""
        network = _network((8,), seed=3)
        plan = compile_network(
            network,
            context=context,
            max_batch=16,
            kernels=[DENSE_KERNEL] * network.n_layers,
        )
        x = np.random.default_rng(3).normal(size=(50, 12))
        # Chunking at 16 re-runs the same BLAS call per chunk; equality
        # with per-chunk predict is exact.
        expected = np.concatenate(
            [network.predict(x[i : i + 16]) for i in range(0, 50, 16)]
        )
        np.testing.assert_array_equal(plan.score(x), expected)

    def test_concurrent_scoring_is_bit_identical(self, context):
        """Threads sharing one plan must not share in-flight activations
        (ShardedScorer scores shards of the same plan concurrently)."""
        import threading

        network = _network((16, 8), sparsity=0.9, seed=5)
        kernels = [SPARSE_KERNEL] + [None] * (network.n_layers - 1)
        plan = compile_network(network, context=context, kernels=kernels)
        rng = np.random.default_rng(5)
        batches = [rng.normal(size=(17, 12)) for _ in range(8)]
        expected = [plan.score(x) for x in batches]

        n_threads, rounds = 4, 25
        barrier = threading.Barrier(n_threads)
        failures: list[str] = []

        def worker(tid: int) -> None:
            barrier.wait()
            for r in range(rounds):
                i = (tid + r) % len(batches)
                got = plan.score(batches[i])
                if not np.array_equal(got, expected[i]):
                    failures.append(f"thread {tid} round {r} batch {i}")
                    return

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, f"concurrent scoring diverged: {failures}"


# ----------------------------------------------------------------------
# Stable mode
# ----------------------------------------------------------------------
class TestStableMode:
    @given(
        n=st.sampled_from([7, 33, 64]),
        split=st.sampled_from([1, 3, 5, 17]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_stable_plan_is_chunk_invariant(self, context, n, split, seed):
        """Scoring rows in arbitrary shards must reproduce the whole-
        batch bits — the Scorer contract serving relies on."""
        network = _network((16, 8), sparsity=0.9, seed=seed % 50)
        plan = compile_network(network, context=context, stable=True)
        x = np.random.default_rng(seed).normal(size=(n, 12))
        whole = plan.score(x)
        sharded = np.concatenate(
            [plan.score(x[i : i + split]) for i in range(0, n, split)]
        )
        np.testing.assert_array_equal(whole, sharded)
        np.testing.assert_array_equal(
            whole, reference_scores(network, plan, x)
        )

    def test_native_plan_matches_reference_whole_batch(self, context):
        """Native and stable plans agree to tolerance, not bits."""
        network = _network((16, 8), sparsity=0.9, seed=4)
        native = compile_network(network, context=context)
        stable = compile_network(network, context=context, stable=True)
        x = np.random.default_rng(4).normal(size=(64, 12))
        np.testing.assert_allclose(
            native.score(x), stable.score(x), rtol=1e-12, atol=1e-12
        )
        assert "native" in native.describe()
        assert "stable" in stable.describe()


# ----------------------------------------------------------------------
# Float32 mode
# ----------------------------------------------------------------------
class TestFloat32:
    @given(
        sparsity=st.sampled_from([0.0, 0.9]),
        n=st.sampled_from([1, 17, 64]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_bounded_error_vs_float64(self, context, sparsity, n, seed):
        network = _network((16, 8), sparsity=sparsity, seed=seed % 50)
        f64 = compile_network(network, context=context)
        f32 = compile_network(network, context=context, dtype="float32")
        x = np.random.default_rng(seed).normal(size=(n, 12))
        a, b = f64.score(x), f32.score(x)
        assert b.dtype == np.float64  # float64 at the API boundary
        scale = max(1.0, float(np.abs(a).max()))
        assert float(np.abs(a - b).max()) <= 1e-4 * scale

    def test_float32_buffers_are_float32(self, context):
        plan = compile_network(
            _network(seed=5), context=context, dtype="float32"
        )
        assert plan.dtype == np.float32
        assert plan.dtype_name == "float32"
        assert plan.buffer_bytes < compile_network(
            _network(seed=5), context=context
        ).buffer_bytes


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_changes_when_weights_change(self, context):
        network = _network(seed=6)
        before = compile_network(network, context=context).fingerprint
        network.linears[0].weight.data[0, 0] += 1.0
        after = compile_network(network, context=context).fingerprint
        assert before != after

    def test_frozen_weights_do_not_track_the_network(self, context):
        """Plans copy weights: mutating the network after compilation
        changes neither the plan's scores nor its fingerprint."""
        network = _network(seed=7)
        plan = compile_network(network, context=context)
        x = np.random.default_rng(7).normal(size=(8, 12))
        before = plan.score(x)
        network.linears[0].weight.data += 10.0
        np.testing.assert_array_equal(plan.score(x), before)

    def test_distinguishes_dtype_mode_and_kernels(self, context):
        network = _network(sparsity=0.9, seed=8)
        prints = {
            compile_network(network, context=context).fingerprint,
            compile_network(
                network, context=context, dtype="float32"
            ).fingerprint,
            compile_network(
                network, context=context, stable=True
            ).fingerprint,
            compile_network(
                network,
                context=context,
                kernels=[DENSE_KERNEL] * network.n_layers,
            ).fingerprint,
        }
        assert len(prints) == 4

    def test_same_inputs_same_fingerprint(self, context):
        a = compile_network(_network(seed=9), context=context)
        b = compile_network(_network(seed=9), context=context)
        assert a.fingerprint == b.fingerprint


# ----------------------------------------------------------------------
# Compile errors and validation
# ----------------------------------------------------------------------
class TestErrors:
    def test_not_a_network(self, context):
        with pytest.raises(CompileError, match="FeedForwardNetwork"):
            compile_network(object(), context=context)

    def test_bad_dtype(self, context):
        with pytest.raises(CompileError, match="dtype"):
            compile_network(
                _network(seed=0), context=context, dtype="float16"
            )

    def test_bad_max_batch(self, context):
        with pytest.raises(CompileError, match="max_batch"):
            compile_network(_network(seed=0), context=context, max_batch=0)

    def test_bad_kernel_override(self, context):
        with pytest.raises(CompileError, match="unknown kernel"):
            compile_network(
                _network(seed=0),
                context=context,
                kernels=["blas", None, None],
            )

    def test_kernel_override_length_mismatch(self, context):
        with pytest.raises(CompileError, match="entries"):
            compile_network(
                _network(seed=0), context=context, kernels=[None]
            )

    def test_batch_exceeding_max_batch(self, context):
        plan = compile_network(
            _network(seed=0), context=context, max_batch=4
        )
        out = np.empty(8)
        with pytest.raises(CompileError, match="exceeds"):
            plan.execute_into(np.zeros((8, 12)), out)

    def test_score_validates_features(self, context):
        plan = compile_network(_network(seed=0), context=context)
        with pytest.raises(ValueError, match="2-dimensional"):
            plan.score(np.zeros(12))
        with pytest.raises(ValueError, match="expected 12"):
            plan.score(np.zeros((3, 5)))

    def test_profile_rejects_empty_and_oversized(self, context):
        plan = compile_network(
            _network(seed=0), context=context, max_batch=8
        )
        with pytest.raises(CompileError, match="profile batch"):
            plan.profile_layers(np.zeros((0, 12)))
        with pytest.raises(CompileError, match="profile batch"):
            plan.profile_layers(np.zeros((9, 12)))


# ----------------------------------------------------------------------
# Plan introspection
# ----------------------------------------------------------------------
class TestIntrospection:
    def test_layer_plans_describe_the_network(self, context):
        network = _network((16, 8), sparsity=0.9, seed=10)
        plan = compile_network(network, context=context)
        assert plan.n_layers == 3
        assert [lp.index for lp in plan.layers] == [1, 2, 3]
        assert plan.layers[0].in_width == 12
        assert plan.layers[0].out_width == 16
        assert plan.layers[-1].out_width == 1
        assert plan.layers[-1].activation == "none"
        assert all(
            lp.activation == "relu6" for lp in plan.layers[:-1]
        )
        assert plan.layers[0].sparsity == pytest.approx(0.9, abs=0.01)
        for lp in plan.layers:
            assert lp.predicted_dense_us_per_doc > 0
            assert lp.predicted_sparse_us_per_doc > 0
            assert lp.describe()

    def test_predicted_price_sums_chosen_kernels(self, context):
        plan = compile_network(_network(seed=11), context=context)
        assert plan.predicted_us_per_doc == pytest.approx(
            sum(lp.predicted_us_per_doc for lp in plan.layers)
        )

    def test_profile_layers_returns_positive_times(self, context):
        plan = compile_network(_network(seed=12), context=context)
        x = np.random.default_rng(12).normal(size=(16, 12))
        times = plan.profile_layers(x, repeats=3)
        assert len(times) == plan.n_layers
        assert all(t > 0 for t in times)


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
class TestServing:
    def test_adapter_scores_like_its_plan(
        self, small_student, context, rng
    ):
        scorer = make_scorer(small_student, compiled=True, context=context)
        assert isinstance(scorer, CompiledNetworkScorer)
        assert scorer.backend == "compiled-network"
        assert isinstance(scorer.plan, InferencePlan)
        assert scorer.plan.stable  # serving compiles chunk-invariant
        x = rng.normal(size=(20, small_student.input_dim))
        z = small_student.normalizer.transform(x)
        np.testing.assert_array_equal(scorer.score(x), scorer.plan.score(z))
        assert scorer.predicted_us_per_doc == pytest.approx(
            scorer.plan.predicted_us_per_doc
        )
        assert scorer.fingerprint() == scorer.plan.fingerprint
        assert "compiled net" in scorer.describe()

    def test_adapter_is_chunk_invariant(self, small_student, context, rng):
        scorer = make_scorer(small_student, compiled=True, context=context)
        x = rng.normal(size=(41, small_student.input_dim))
        whole = scorer.score(x)
        sharded = np.concatenate(
            [scorer.score(x[i : i + 7]) for i in range(0, 41, 7)]
        )
        np.testing.assert_array_equal(whole, sharded)

    def test_service_backend_options(self, small_student, context, rng):
        from repro.runtime import ServiceConfig
        from repro.serving import ScoringService

        config = ServiceConfig(
            backend="compiled-network",
            backend_options={"compiled": True, "plan_dtype": "float32"},
            allow_unpriced=True,
        )
        service = ScoringService(small_student, config, context=context)
        assert service.scorer.backend == "compiled-network"
        assert service.scorer.plan.dtype_name == "float32"
        x = rng.normal(size=(16, small_student.input_dim))
        scores = service.score(x)
        assert scores.shape == (16,)
        assert np.all(np.isfinite(scores))

    def test_backend_options_round_trip_and_validation(self):
        from repro.exceptions import ConfigError
        from repro.runtime import ServiceConfig

        config = ServiceConfig(
            backend="compiled-network",
            backend_options={"compiled": True, "plan_dtype": "float32"},
        )
        clone = ServiceConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.backend_options == {
            "compiled": True,
            "plan_dtype": "float32",
        }
        assert ServiceConfig().to_dict()["backend_options"] is None
        with pytest.raises(ConfigError, match="mapping"):
            ServiceConfig(backend_options="compiled=True")
        with pytest.raises(ConfigError, match="strings"):
            ServiceConfig(backend_options={1: True})


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_compile_records_series_and_report(self, context, obs_clean):
        from repro.obs import compile_report

        network = _network((16, 8), sparsity=0.95, seed=13)
        kernels = [SPARSE_KERNEL] + [None] * (network.n_layers - 1)
        compile_network(network, context=context, kernels=kernels)
        compile_network(network, context=context, dtype="float32")
        report = compile_report()
        assert {row.dtype for row in report.rows} <= {"float64", "float32"}
        row = report.dtype("float64")
        assert row is not None
        assert row.plans == 1
        assert row.sparse_layers >= 1
        assert row.dense_layers + row.sparse_layers == network.n_layers
        assert row.buffer_bytes > 0
        assert row.compile_us > 0
        assert 0 < row.sparse_share < 1
        assert "float64" in report.render()

    def test_compile_emits_span(self, context, obs_clean):
        obs_clean.set_tracer(obs_clean.Tracer(enabled=True))
        compile_network(_network(seed=14), context=context)
        names = [s.name for s in obs_clean.get_tracer().root_spans()]
        assert "compile.plan" in names


# ----------------------------------------------------------------------
# CLI probe
# ----------------------------------------------------------------------
class TestCliProbe:
    def test_compile_command_prints_plan(self, capsys):
        from repro.cli import main

        main(
            [
                "compile",
                "--architecture",
                "16x8",
                "--features",
                "12",
                "--sparsity",
                "0.9",
                "--batch",
                "32",
                "--repeats",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "csr-spmm" in out or "dense-gemm" in out
        assert "fingerprint" in out
        assert "us/doc" in out
