"""Shared fixtures.

Expensive artefacts (synthetic datasets, trained forests, distilled
students) are session-scoped so the whole suite trains each of them only
once; tests must not mutate them (clone first).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_msn30k_like, train_validation_test_split
from repro.distill import DistillationConfig, Distiller
from repro.forest import GradientBoostingConfig, LambdaMartRanker


@pytest.fixture(scope="session")
def tiny_dataset():
    """~120 queries / ~20 docs each, 136 features."""
    return make_msn30k_like(n_queries=120, docs_per_query=20, seed=11)


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    return train_validation_test_split(tiny_dataset, seed=11)


@pytest.fixture(scope="session")
def small_forest(tiny_splits):
    """A 20-tree, 16-leaf LambdaMART ensemble (fast to train)."""
    train, vali, _ = tiny_splits
    config = GradientBoostingConfig(
        n_trees=20, max_leaves=16, learning_rate=0.15, min_data_in_leaf=5
    )
    return LambdaMartRanker(config, seed=3).fit(train, vali, name="test-forest")


@pytest.fixture(scope="session")
def small_student(tiny_splits, small_forest):
    """A small student distilled from ``small_forest``."""
    train, _, _ = tiny_splits
    config = DistillationConfig(
        epochs=20,
        batch_size=128,
        learning_rate=0.005,
        lr_milestones=(15,),
        steps_per_epoch=20,
    )
    return Distiller(config, seed=5).distill(
        small_forest, train, hidden=(64, 32)
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def obs_clean():
    """Pristine process-wide observability state, restored after.

    Swaps in a disabled tracer, an empty registry, a disabled request
    recorder and a fresh SLO monitor; tests that enable tracing or
    assert on metric/trace/burn series use this fixture so they neither
    see nor leave behind another test's spans, counters or records.
    """
    from repro import obs

    previous_tracer = obs.set_tracer(obs.Tracer(enabled=False))
    previous_registry = obs.set_registry(obs.MetricsRegistry())
    previous_recorder = obs.set_request_recorder(obs.RequestRecorder())
    previous_monitor = obs.set_slo_monitor(obs.SloMonitor())
    try:
        yield obs
    finally:
        obs.set_tracer(previous_tracer)
        obs.set_registry(previous_registry)
        obs.set_request_recorder(previous_recorder)
        obs.set_slo_monitor(previous_monitor)


@pytest.fixture(scope="session")
def predictor_cache():
    """One calibrated NetworkTimePredictor for the whole session."""
    from repro.timing import NetworkTimePredictor

    return NetworkTimePredictor()


@pytest.fixture(scope="session")
def mini_pipeline():
    """A miniature MSN30K pipeline (tiny scale, fully end-to-end)."""
    from repro.core import EfficientRankingPipeline, ExperimentScale

    scale = ExperimentScale(
        n_queries=120,
        docs_per_query=20,
        tree_scale=0.05,
        distill_epochs=8,
        distill_milestones=(6,),
        prune_epochs=4,
        finetune_epochs=2,
        prune_milestones=(),
        seed=13,
    )
    return EfficientRankingPipeline.for_msn30k(scale)
