"""Tests for repro.timing.dense_predictor (Eq. 3 / Table 2)."""

import pytest

from repro.exceptions import ArchitectureError
from repro.matmul import DenseGemmExecutor
from repro.timing import DenseTimePredictor, GflopsSurface
from repro.timing.dense_predictor import validate_architecture


@pytest.fixture(scope="module")
def predictor():
    return DenseTimePredictor(GflopsSurface.measure(batch_size=1000))


def executor_time_us_per_doc(arch, f=136, n=1000, first_layer_extra_ns=0.6):
    """Forward-pass 'real' time: layer GEMMs plus the first layer's
    bias+ReLU6 output write (the Table 7 effect the predictor models)."""
    ex = DenseGemmExecutor()
    dims = (f,) + tuple(arch)
    total = sum(
        ex.report(dims[i + 1], n, dims[i]).time_ns for i in range(len(dims) - 1)
    )
    total += first_layer_extra_ns * dims[1] * n
    return total / n / 1000.0


class TestValidateArchitecture:
    def test_valid(self):
        assert validate_architecture(10, [5, 3]) == (5, 3)

    def test_empty_rejected(self):
        with pytest.raises(ArchitectureError):
            validate_architecture(10, [])

    def test_nonpositive_rejected(self):
        with pytest.raises(ArchitectureError):
            validate_architecture(10, [5, 0])
        with pytest.raises(ArchitectureError):
            validate_architecture(0, [5])


class TestTable2:
    """Predicted times must match executor ('real') times, as in Table 2."""

    @pytest.mark.parametrize(
        "arch,paper_real",
        [
            ((1000, 500, 500, 100), 14.4),
            ((200, 100, 100, 50), 1.3),
            ((300, 150, 150, 30), 2.0),
            ((500, 100), 2.1),
        ],
    )
    def test_prediction_matches_executor(self, predictor, arch, paper_real):
        predicted = predictor.forward_time_us_per_doc(136, arch)
        real = executor_time_us_per_doc(arch)
        assert predicted == pytest.approx(real, rel=0.05)

    @pytest.mark.parametrize(
        "arch,paper_real",
        [
            ((1000, 500, 500, 100), 14.4),
            ((200, 100, 100, 50), 1.3),
            ((300, 150, 150, 30), 2.0),
            ((500, 100), 2.1),
        ],
    )
    def test_prediction_near_paper(self, predictor, arch, paper_real):
        # Absolute proximity to the published i9-9900K numbers; see
        # EXPERIMENTS.md for the full paper-vs-measured record.
        predicted = predictor.forward_time_us_per_doc(136, arch)
        assert predicted == pytest.approx(paper_real, rel=0.25)


class TestLayerTimes:
    def test_layer_count(self, predictor):
        times = predictor.layer_times(136, (400, 200, 200, 100))
        assert len(times) == 4

    def test_widths_threaded(self, predictor):
        times = predictor.layer_times(136, (400, 200))
        assert (times[0].in_width, times[0].out_width) == (136, 400)
        assert (times[1].in_width, times[1].out_width) == (400, 200)

    def test_flops_property(self, predictor):
        lt = predictor.layer_times(136, (400,))[0]
        assert lt.flops == 2 * 136 * 400

    def test_breakdown_sums_to_100(self, predictor):
        pct = predictor.layer_breakdown(136, (400, 200, 200, 100))
        assert sum(pct) == pytest.approx(100.0)

    def test_first_layer_dominates_small_nets(self, predictor):
        # Table 7: the first layer is the most expensive in the small
        # architectures whose first layer is widest.
        for arch in [(100, 50, 50, 10), (200, 100, 100, 50)]:
            pct = predictor.layer_breakdown(136, arch)
            assert pct[0] == max(pct)

    def test_flagship_first_layer_near_dominant(self, predictor):
        # Table 7 reports 35% vs 33% for the first two layers of
        # 400x200x200x100; the second layer carries more raw FLOPs, so we
        # assert near-parity rather than strict dominance.
        pct = predictor.layer_breakdown(136, (400, 200, 200, 100))
        assert pct[0] == pytest.approx(max(pct), abs=5.0)

    def test_table7_first_layer_impacts(self, predictor):
        # Paper: 35% / 60% / 45% for the three architectures (without the
        # scoring head, which Table 7 lists separately as the 5th layer).
        for arch, expected in [
            ((400, 200, 200, 100), 35.0),
            ((100, 50, 50, 10), 60.0),
            ((200, 100, 100, 50), 45.0),
        ]:
            impact = predictor.first_layer_impact(136, arch)
            assert impact == pytest.approx(expected, abs=10.0)

    def test_bias_relu_term_optional(self):
        surface = GflopsSurface.measure(
            batch_size=64, m_grid=(100, 200), k_grid=(64, 136)
        )
        base = DenseTimePredictor(surface)
        with_act = DenseTimePredictor(surface, bias_relu_ns_per_neuron=0.5)
        t0 = base.forward_time_us_per_doc(136, (100, 100))
        t1 = with_act.forward_time_us_per_doc(136, (100, 100))
        assert t1 > t0
