"""Property-based tests: QuickScorer equals direct traversal on random forests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import TreeEnsemble
from repro.forest.tree import NO_CHILD, RegressionTree
from repro.quickscorer import QuickScorer


def random_tree(rng: np.random.Generator, n_features: int, max_depth: int) -> RegressionTree:
    """Grow a random binary tree by recursive splitting."""
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []

    def grow(depth: int) -> int:
        node = len(feature)
        feature.append(-1)
        threshold.append(np.nan)
        left.append(NO_CHILD)
        right.append(NO_CHILD)
        value.append(0.0)
        if depth >= max_depth or rng.random() < 0.3:
            value[node] = float(rng.normal())
            return node
        feature[node] = int(rng.integers(0, n_features))
        threshold[node] = float(rng.uniform(0.1, 0.9))
        left[node] = grow(depth + 1)
        right[node] = grow(depth + 1)
        return node

    grow(0)
    return RegressionTree(
        feature=np.asarray(feature),
        threshold=np.asarray(threshold),
        left=np.asarray(left),
        right=np.asarray(right),
        value=np.asarray(value),
    )


def random_forest(seed: int, n_trees: int, n_features: int, max_depth: int) -> TreeEnsemble:
    rng = np.random.default_rng(seed)
    trees = [random_tree(rng, n_features, max_depth) for _ in range(n_trees)]
    return TreeEnsemble(
        trees=trees,
        weights=rng.uniform(0.05, 0.3, size=n_trees),
        base_score=float(rng.normal()),
        n_features=n_features,
    )


class TestQuickScorerProperty:
    @given(
        seed=st.integers(0, 10_000),
        n_trees=st.integers(1, 8),
        n_features=st.integers(1, 6),
        max_depth=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_quickscorer_equals_traversal(self, seed, n_trees, n_features, max_depth):
        forest = random_forest(seed, n_trees, n_features, max_depth)
        rng = np.random.default_rng(seed + 1)
        x = rng.uniform(-0.2, 1.2, size=(30, n_features))
        qs = QuickScorer(forest)
        np.testing.assert_allclose(qs.score(x), forest.predict(x), atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_values_exactly_on_thresholds(self, seed):
        # Boundary semantics: x == threshold goes left everywhere.
        forest = random_forest(seed, n_trees=4, n_features=3, max_depth=4)
        thresholds = [
            t for tree in forest.trees
            for t in tree.threshold[~np.isnan(tree.threshold)]
        ]
        if not thresholds:
            return
        x = np.full((len(thresholds), 3), thresholds[0])
        for i, t in enumerate(thresholds):
            x[i, :] = t
        qs = QuickScorer(forest)
        np.testing.assert_allclose(qs.score(x), forest.predict(x), atol=1e-10)

    @given(seed=st.integers(0, 5_000), deep=st.integers(7, 9))
    @settings(max_examples=10, deadline=None)
    def test_deep_trees_multiword(self, seed, deep):
        # Depth 7-9 trees can exceed 64 leaves -> multi-word bitvectors.
        forest = random_forest(seed, n_trees=2, n_features=4, max_depth=deep)
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(20, 4))
        qs = QuickScorer(forest)
        np.testing.assert_allclose(qs.score(x), forest.predict(x), atol=1e-10)

    def test_stats_invariants_on_random_forest(self):
        forest = random_forest(3, n_trees=6, n_features=4, max_depth=5)
        x = np.random.default_rng(0).uniform(size=(64, 4))
        qs = QuickScorer(forest)
        qs.score(x)
        stats = qs.last_stats
        assert 0.0 <= stats.false_node_fraction <= 1.0
        assert stats.false_nodes_total <= 64 * stats.total_internal_nodes
        assert stats.nodes_touched_fraction <= 1.0 + 1e-9


class TestEnsembleProperty:
    @given(seed=st.integers(0, 5_000), cut=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_truncate_prefix_consistency(self, seed, cut):
        forest = random_forest(seed, n_trees=6, n_features=3, max_depth=4)
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(10, 3))
        sub = forest.truncate(cut)
        manual = np.full(10, forest.base_score)
        for tree, w in zip(forest.trees[:cut], forest.weights[:cut]):
            manual += w * tree.predict(x)
        np.testing.assert_allclose(sub.predict(x), manual, atol=1e-12)

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_serialization_roundtrip(self, seed, tmp_path_factory):
        forest = random_forest(seed, n_trees=3, n_features=3, max_depth=4)
        path = tmp_path_factory.mktemp("forests") / f"f{seed}.json"
        forest.save(path)
        loaded = TreeEnsemble.load(path)
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(8, 3))
        np.testing.assert_allclose(loaded.predict(x), forest.predict(x))
