"""Tests for repro.pruning.schedule and the gradual pipeline modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PruningError
from repro.pruning import (
    FirstLayerPruner,
    FirstLayerPruningConfig,
    LinearSchedule,
    PolynomialSchedule,
)


class TestLinearSchedule:
    def test_endpoints(self):
        sched = LinearSchedule(final_sparsity=0.9, n_epochs=10)
        assert sched.sparsity_at(9) == pytest.approx(0.9)
        assert sched.sparsity_at(100) == pytest.approx(0.9)

    def test_midpoint(self):
        sched = LinearSchedule(final_sparsity=0.8, n_epochs=8)
        assert sched.sparsity_at(3) == pytest.approx(0.4)

    def test_initial_offset(self):
        sched = LinearSchedule(
            final_sparsity=0.9, n_epochs=10, initial_sparsity=0.5
        )
        assert sched.sparsity_at(0) == pytest.approx(0.54)

    def test_monotone(self):
        sched = LinearSchedule(final_sparsity=0.95, n_epochs=20)
        values = [sched.sparsity_at(e) for e in range(25)]
        assert values == sorted(values)

    def test_invalid(self):
        with pytest.raises(PruningError):
            LinearSchedule(final_sparsity=1.0, n_epochs=5)
        with pytest.raises(PruningError):
            LinearSchedule(final_sparsity=0.5, n_epochs=0)
        with pytest.raises(PruningError):
            LinearSchedule(final_sparsity=0.3, n_epochs=5, initial_sparsity=0.5)
        with pytest.raises(PruningError):
            LinearSchedule(final_sparsity=0.5, n_epochs=5).sparsity_at(-1)


class TestPolynomialSchedule:
    def test_endpoints(self):
        sched = PolynomialSchedule(final_sparsity=0.987, n_epochs=12)
        assert sched.sparsity_at(11) == pytest.approx(0.987)

    def test_front_loaded(self):
        # AGP prunes faster than linear early on.
        agp = PolynomialSchedule(final_sparsity=0.9, n_epochs=10)
        linear = LinearSchedule(final_sparsity=0.9, n_epochs=10)
        assert agp.sparsity_at(1) > linear.sparsity_at(1)

    @given(
        final=st.floats(0.1, 0.99),
        n_epochs=st.integers(2, 40),
        power=st.floats(1.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_bounded(self, final, n_epochs, power):
        sched = PolynomialSchedule(
            final_sparsity=final, n_epochs=n_epochs, power=power
        )
        values = [sched.sparsity_at(e) for e in range(n_epochs + 3)]
        assert values == sorted(values)
        assert all(0.0 <= v <= final + 1e-12 for v in values)

    def test_invalid_power(self):
        with pytest.raises(PruningError):
            PolynomialSchedule(final_sparsity=0.5, n_epochs=5, power=0.0)


class TestGradualPipelineModes:
    @pytest.mark.parametrize("method", ["agp", "linear"])
    def test_gradual_reaches_target(
        self, method, small_student, small_forest, tiny_splits
    ):
        config = FirstLayerPruningConfig(
            method=method,
            target_sparsity=0.9,
            epochs_prune=5,
            epochs_finetune=1,
            steps_per_epoch=5,
            lr_milestones=(),
        )
        pruner = FirstLayerPruner(config, seed=0)
        pruned = pruner.prune(small_student, small_forest, tiny_splits[0])
        assert pruned.first_layer_sparsity() == pytest.approx(0.9, abs=0.02)

    def test_gradual_trace_monotone(
        self, small_student, small_forest, tiny_splits
    ):
        config = FirstLayerPruningConfig(
            method="agp",
            target_sparsity=0.85,
            epochs_prune=4,
            epochs_finetune=1,
            steps_per_epoch=5,
            lr_milestones=(),
        )
        pruner = FirstLayerPruner(config, seed=0)
        pruner.prune(small_student, small_forest, tiny_splits[0])
        sparsity = pruner.trace_.sparsity
        assert all(b >= a - 1e-12 for a, b in zip(sparsity, sparsity[1:]))

    def test_invalid_method(self):
        with pytest.raises(ValueError, match="method"):
            FirstLayerPruningConfig(method="magic")

    def test_invalid_target(self):
        with pytest.raises(ValueError, match="target_sparsity"):
            FirstLayerPruningConfig(method="agp", target_sparsity=1.0)
