"""Tests for repro.datasets.sampling (negative subsampling)."""

import numpy as np
import pytest

from repro.datasets import make_istella_s_like, subsample_negatives
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def dataset():
    return make_istella_s_like(n_queries=60, docs_per_query=20, seed=8)


class TestSubsampleNegatives:
    def test_negatives_capped(self, dataset):
        out = subsample_negatives(dataset, max_negatives_per_query=5, seed=0)
        for qi in range(out.n_queries):
            sl = out.query_slice(qi)
            negatives = int(np.sum(out.labels[sl] == 0))
            assert negatives <= 5

    def test_all_positives_kept(self, dataset):
        out = subsample_negatives(dataset, max_negatives_per_query=3, seed=0)
        assert int(np.sum(out.labels >= 1)) == int(np.sum(dataset.labels >= 1))

    def test_query_count_preserved(self, dataset):
        out = subsample_negatives(dataset, max_negatives_per_query=3, seed=0)
        assert out.n_queries == dataset.n_queries

    def test_no_empty_queries(self, dataset):
        out = subsample_negatives(dataset, max_negatives_per_query=1, seed=0)
        assert out.query_sizes().min() >= 1

    def test_shrinks_skewed_dataset(self, dataset):
        out = subsample_negatives(dataset, max_negatives_per_query=3, seed=0)
        assert out.n_docs < dataset.n_docs

    def test_deterministic(self, dataset):
        a = subsample_negatives(dataset, 4, seed=5)
        b = subsample_negatives(dataset, 4, seed=5)
        np.testing.assert_array_equal(a.features, b.features)

    def test_rows_keep_feature_alignment(self, dataset):
        # Every surviving row must exist verbatim in the original data.
        out = subsample_negatives(dataset, 4, seed=1)
        original = {
            (int(q),) + tuple(np.round(row, 6))
            for q, row in zip(dataset.qids, dataset.features)
        }
        for q, row in zip(out.qids[:50], out.features[:50]):
            assert (int(q),) + tuple(np.round(row, 6)) in original

    def test_custom_threshold(self, dataset):
        out = subsample_negatives(
            dataset, 2, relevance_threshold=2, seed=0
        )
        # Grade-1 docs now count as negatives and are capped too.
        for qi in range(out.n_queries):
            sl = out.query_slice(qi)
            assert int(np.sum(out.labels[sl] < 2)) <= 2

    def test_invalid_cap(self, dataset):
        with pytest.raises(DatasetError):
            subsample_negatives(dataset, 0)

    def test_name_suffixed(self, dataset):
        out = subsample_negatives(dataset, 3, seed=0)
        assert out.name.endswith("/neg3")
