"""Asyncio front-end: coalescing bit-identity, QoS behaviour, stats safety."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.obs.probe import build_probe_models
from repro.runtime import AsyncConfig, ServiceConfig, TenantConfig
from repro.runtime.batching import ServiceStats
from repro.serving import (
    AsyncScoringService,
    RequestShedError,
    ScoringService,
)
from repro.serving.frontend import _Pending

BACKENDS = [
    ("quickscorer", "quickscorer"),
    ("dense-network", "dense-network"),
    ("sparse-network", "sparse-network"),
    ("compiled-network", "sparse-network"),
]


@pytest.fixture(scope="module")
def probe_models():
    return build_probe_models(n_queries=4, docs_per_query=8, seed=0)


@pytest.fixture(scope="module")
def services(probe_models):
    """One ScoringService per backend, shared across examples."""
    return {
        backend: ScoringService(
            probe_models[model_key], ServiceConfig(backend=backend)
        )
        for backend, model_key in BACKENDS
    }


def _score_interleaved(service, requests, *, frontend=None, tenant="default"):
    """All requests concurrently through a fresh front-end; ordered."""

    async def _run():
        async with AsyncScoringService(
            service, frontend=frontend or AsyncConfig(max_wait_us=1000.0)
        ) as front:
            return await asyncio.gather(
                *(front.score(x, tenant=tenant) for x in requests)
            )

    return asyncio.run(_run())


# ----------------------------------------------------------------------
# Satellite 3: hypothesis — interleaved == sequential, bitwise
# ----------------------------------------------------------------------
class TestCoalescingBitIdentity:
    @pytest.mark.parametrize("backend", [b for b, _ in BACKENDS])
    @given(
        sizes=st.lists(st.integers(0, 13), min_size=1, max_size=12),
        seed=st.integers(0, 2**16),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_interleaved_matches_sequential(
        self, services, backend, sizes, seed
    ):
        service = services[backend]
        n_features = service.scorer.input_dim
        rng = np.random.default_rng(seed)
        requests = [
            rng.standard_normal((n, n_features)) for n in sizes
        ]
        sequential = [service.score(x) for x in requests]
        interleaved = _score_interleaved(service, requests)
        for ref, got in zip(sequential, interleaved):
            np.testing.assert_array_equal(got, ref)
            assert got.dtype == np.float64

    def test_identity_survives_tiny_batch_caps(self, services):
        # Forcing many small coalesced batches must not change scores.
        service = services["dense-network"]
        rng = np.random.default_rng(7)
        requests = [
            rng.standard_normal((n, service.scorer.input_dim))
            for n in (5, 1, 9, 3, 7)
        ]
        sequential = [service.score(x) for x in requests]
        interleaved = _score_interleaved(
            service,
            requests,
            frontend=AsyncConfig(
                max_wait_us=1000.0, max_batch_requests=2, max_batch_docs=8
            ),
        )
        for ref, got in zip(sequential, interleaved):
            np.testing.assert_array_equal(got, ref)


# ----------------------------------------------------------------------
# Front-end behaviour
# ----------------------------------------------------------------------
class TestFrontend:
    def test_requires_running(self, services):
        front = AsyncScoringService(services["dense-network"])

        async def _call():
            await front.score(np.zeros((1, 136)))

        with pytest.raises(ReproError, match="not running"):
            asyncio.run(_call())

    def test_zero_doc_request(self, services):
        service = services["dense-network"]
        [scores] = _score_interleaved(
            service, [np.zeros((0, service.scorer.input_dim))]
        )
        assert scores.shape == (0,)

    def test_requests_coalesce(self, services, obs_clean):
        service = services["dense-network"]
        rng = np.random.default_rng(3)
        requests = [
            rng.standard_normal((4, service.scorer.input_dim))
            for _ in range(10)
        ]

        async def _run():
            async with AsyncScoringService(
                service, frontend=AsyncConfig(max_wait_us=2000.0)
            ) as front:
                await asyncio.gather(
                    *(front.score(x) for x in requests)
                )
                return front.summary()

        summary = asyncio.run(_run())
        assert summary["coalesced_requests"] == 10
        assert summary["batches"] < 10  # at least some sharing happened
        assert summary["requests_per_batch"] > 1.0
        report = obs_clean.serving_report()
        assert report.batches == summary["batches"]
        row = report.tenant("default")
        assert row is not None and row.admitted == row.served == 10

    def test_shed_raises_and_is_recorded(self, services, obs_clean):
        service = services["dense-network"]
        frontend = AsyncConfig(
            tenants=(TenantConfig(name="t", rate_per_s=1.0, burst=1),)
        )
        x = np.zeros((2, service.scorer.input_dim))

        async def _run():
            async with AsyncScoringService(
                service, frontend=frontend
            ) as front:
                first = await front.score(x, tenant="t")
                with pytest.raises(RequestShedError) as excinfo:
                    await front.score(x, tenant="t")
                return first, excinfo.value

        scores, err = asyncio.run(_run())
        assert scores.shape == (2,)
        assert (err.tenant, err.reason) == ("t", "rate-limit")
        row = obs_clean.serving_report().tenant("t")
        assert row.admitted == 1 and row.shed == 1
        assert row.shed_reasons == (("rate-limit", 1),)

    def test_stop_drains_pending_requests(self, services):
        service = services["dense-network"]
        x = np.ones((3, service.scorer.input_dim))

        async def _run():
            front = await AsyncScoringService(
                service, frontend=AsyncConfig(max_wait_us=50_000.0)
            ).start()
            task = asyncio.ensure_future(front.score(x))
            await asyncio.sleep(0)  # let it enqueue
            await front.stop()  # must answer, not abandon
            return await task

        scores = asyncio.run(_run())
        np.testing.assert_array_equal(scores, service.score(x))

    def test_engine_failure_reaches_every_caller(self, probe_models):
        from repro.runtime import FaultPolicy, make_scorer, with_faults

        faulty = with_faults(
            make_scorer(
                probe_models["dense-network"], backend="dense-network"
            ),
            FaultPolicy.every(1, "error"),
        )
        service = ScoringService(faulty)
        x = np.zeros((2, service.scorer.input_dim))

        async def _run():
            async with AsyncScoringService(service) as front:
                return await asyncio.gather(
                    front.score(x),
                    front.score(x),
                    return_exceptions=True,
                )

        results = asyncio.run(_run())
        assert len(results) == 2
        assert all(isinstance(r, Exception) for r in results)

    def test_slo_miss_counted_but_served(self, services, obs_clean):
        service = services["dense-network"]
        frontend = AsyncConfig(
            tenants=(TenantConfig(name="strict", deadline_us=0.5),)
        )
        x = np.zeros((2, service.scorer.input_dim))
        [scores] = _score_interleaved(
            service, [x], frontend=frontend, tenant="strict"
        )
        assert scores.shape == (2,)  # served despite the miss
        row = obs_clean.serving_report().tenant("strict")
        assert row.served == 1 and row.slo_miss == 1

    def test_latency_includes_queueing_drift_does_not(self, probe_models):
        # Satellite 2: a fresh service so stats are exclusively ours.
        service = ScoringService(
            probe_models["dense-network"],
            ServiceConfig(backend="dense-network"),
        )
        rng = np.random.default_rng(5)
        requests = [
            rng.standard_normal((4, service.scorer.input_dim))
            for _ in range(8)
        ]
        _score_interleaved(
            service, requests, frontend=AsyncConfig(max_wait_us=5000.0)
        )
        stats = service.stats
        assert stats.requests == 8
        # The ~5 ms linger sat in the queue: it must show in the
        # latency axis (p50 > linger) but not in the kernel axis.
        assert stats.queued_seconds > 0.0
        assert stats.p50_us > 5000.0
        assert stats.wall_seconds * 1e6 < stats.p50_us * len(requests)

    def test_config_flows_from_service_config(self, probe_models):
        service = ScoringService(
            probe_models["dense-network"],
            ServiceConfig(
                backend="dense-network",
                frontend=AsyncConfig(max_batch_requests=3),
            ),
        )
        front = AsyncScoringService(service)
        assert front.frontend.max_batch_requests == 3
        with pytest.raises(ValueError, match="not both"):
            AsyncScoringService(service, ServiceConfig())


# ----------------------------------------------------------------------
# Drain order: priority classes, FIFO within, batch caps
# ----------------------------------------------------------------------
class TestDrainOrder:
    def _pending(self, front, tenant, rows, tag):
        state = front.admission.state(tenant)
        state.queued += 1
        item = _Pending(
            np.full((rows, 2), tag, dtype=np.float64),
            tenant,
            state,
            0.0,
            None,  # future untouched by _drain
        )
        from collections import deque

        front._queues.setdefault(state.config.priority, deque()).append(item)
        front._queued += 1
        return item

    def _front(self, services, **kwargs):
        return AsyncScoringService(
            services["dense-network"], frontend=AsyncConfig(**kwargs)
        )

    def test_priority_then_fifo(self, services):
        front = self._front(
            services,
            tenants=(
                TenantConfig(name="fast", priority=0),
                TenantConfig(name="slow", priority=2),
            ),
        )
        a = self._pending(front, "slow", 1, 1)
        b = self._pending(front, "fast", 1, 2)
        c = self._pending(front, "fast", 1, 3)
        d = self._pending(front, "default", 1, 4)  # implicit priority 1
        assert front._drain() == [b, c, d, a]
        assert front._queued == 0
        assert front.admission.state("fast").queued == 0

    def test_request_cap(self, services):
        front = self._front(services, max_batch_requests=2)
        items = [self._pending(front, "default", 1, i) for i in range(5)]
        assert front._drain() == items[:2]
        assert front._drain() == items[2:4]
        assert front._drain() == items[4:]

    def test_doc_cap_never_splits_a_request(self, services):
        front = self._front(services, max_batch_docs=10)
        a = self._pending(front, "default", 6, 1)
        b = self._pending(front, "default", 6, 2)
        c = self._pending(front, "default", 3, 3)
        # a+b exceeds 10 docs -> b starts the next batch; c rides along.
        assert front._drain() == [a]
        assert front._drain() == [b, c]

    def test_oversized_request_still_drains_alone(self, services):
        front = self._front(services, max_batch_docs=4)
        a = self._pending(front, "default", 9, 1)
        assert front._drain() == [a]


# ----------------------------------------------------------------------
# Satellite 1: stats and registry are safe under concurrent writers
# ----------------------------------------------------------------------
class TestConcurrentAccounting:
    def test_service_stats_record_is_thread_safe(self):
        stats = ServiceStats()
        threads, per_thread = 8, 1000

        def hammer():
            for _ in range(per_thread):
                # 0.5 / 0.25 are exact binary floats: the accumulated
                # sums are order-independent, so totals must be exact.
                stats.record(2, 0.5, kernel_seconds=0.25)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        n = threads * per_thread
        assert stats.requests == n
        assert stats.documents == 2 * n
        assert stats.wall_seconds == 0.25 * n
        assert stats.queued_seconds == 0.25 * n
        assert stats._latency_us.count == n

    def test_registry_series_are_thread_safe(self, obs_clean):
        counter = obs_clean.counter("serving.requests", tenant="x")
        hist = obs_clean.histogram("serving.latency_us", tenant="x")
        threads, per_thread = 8, 1000

        def hammer():
            for _ in range(per_thread):
                counter.inc()
                hist.add(1.0)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert counter.value == threads * per_thread
        assert hist.count == threads * per_thread
