"""Versioned model registry, hot swap, shadow gate and rollback."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.obs.probe import build_probe_models
from repro.runtime import (
    BudgetExceededError,
    LifecycleConfig,
    LifecycleError,
    LifecycleManager,
    ModelRegistry,
    ParallelConfig,
    ServiceConfig,
    StubScorer,
    VersionedScorer,
    ranking_agreement,
    score_drift_pct,
)
from repro.serving import LoadSpec, ScoringService, make_queries, run_load


@pytest.fixture(scope="module")
def probe():
    """Dataset + incumbent student + good / regressed candidates."""
    models = build_probe_models(n_queries=6, docs_per_query=10, seed=9)
    incumbent = models["dense-network"]
    good = incumbent.clone()
    for p in (good.network.linears[-1].weight, good.network.linears[-1].bias):
        p.data *= 1.001
    regressed = incumbent.clone()
    for p in (
        regressed.network.linears[-1].weight,
        regressed.network.linears[-1].bias,
    ):
        p.data *= -1.0
    return models["dataset"], incumbent, good, regressed


def _queries(dataset):
    return [
        dataset.features[dataset.query_slice(q)]
        for q in range(dataset.n_queries)
    ]


@pytest.fixture(scope="module")
def ref_scorers(probe):
    """Raw single-threaded scorers of the incumbent and good candidate."""
    from repro.runtime import make_scorer

    _, incumbent, good, _ = probe
    return make_scorer(incumbent), make_scorer(good)


def _gated_service(incumbent, **lifecycle_kwargs):
    kwargs = dict(
        shadow_mode="sync", shadow_fraction=1.0, shadow_min_requests=4
    )
    kwargs.update(lifecycle_kwargs)
    return ScoringService(
        incumbent,
        ServiceConfig(
            max_batch_size=None,
            parallel=ParallelConfig(workers=2, cache_entries=2048),
            lifecycle=LifecycleConfig(**kwargs),
        ),
    )


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestLifecycleConfig:
    def test_round_trip(self):
        config = LifecycleConfig(
            shadow_fraction=0.5,
            shadow_min_requests=8,
            max_drift_pct=5.0,
            shadow_mode="sync",
            replay_capacity=32,
        )
        rebuilt = LifecycleConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert rebuilt == config

    def test_unknown_keys_named(self):
        with pytest.raises(ConfigError, match="shadow_pct"):
            LifecycleConfig.from_dict({"shadow_pct": 0.5})

    def test_validation(self):
        with pytest.raises(ConfigError, match="shadow_fraction"):
            LifecycleConfig(shadow_fraction=1.5)
        with pytest.raises(ConfigError, match="shadow_min_requests"):
            LifecycleConfig(shadow_min_requests=0)
        with pytest.raises(ConfigError, match="max_drift_pct"):
            LifecycleConfig(max_drift_pct=0.0)
        with pytest.raises(ConfigError, match="min_agreement"):
            LifecycleConfig(min_agreement=2.0)
        with pytest.raises(ConfigError, match="shadow_mode"):
            LifecycleConfig(shadow_mode="async")
        with pytest.raises(ConfigError, match="replay_capacity"):
            LifecycleConfig(replay_capacity=-1)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_first_version_auto_activates(self, probe):
        _, incumbent, good, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        assert registry.active.version_id == "v1"
        entry = registry.register(good)
        assert entry.version_id == "v2"  # auto id from the sequence
        assert registry.active.version_id == "v1"  # later ones stay inactive
        assert len(registry) == 2 and "v2" in registry

    def test_activate_flips_atomically(self, probe):
        _, incumbent, good, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        registry.register(good, version="v2")
        previous, entry = registry.activate("v2")
        assert previous.version_id == "v1" and entry.version_id == "v2"
        assert registry.previous.version_id == "v1"

    def test_duplicate_and_unknown_rejected(self, probe):
        _, incumbent, good, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        with pytest.raises(LifecycleError, match="already registered"):
            registry.register(good, version="v1")
        with pytest.raises(LifecycleError, match="unknown version"):
            registry.activate("nope")
        with pytest.raises(LifecycleError, match="unknown version"):
            registry.get("nope")

    def test_cannot_discard_active(self, probe):
        _, incumbent, _, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        with pytest.raises(LifecycleError, match="active"):
            registry.discard("v1")

    def test_input_dim_mismatch_rejected(self, probe):
        _, incumbent, _, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        with pytest.raises(LifecycleError, match="features"):
            registry.register(StubScorer(input_dim=7), version="odd")

    def test_batchability_mismatch_rejected(self, probe):
        _, incumbent, _, _ = probe
        registry = ModelRegistry(incumbent, version="v1")

        class Unbatchable(StubScorer):
            batchable = False

        with pytest.raises(LifecycleError, match="batchab"):
            registry.register(Unbatchable(), version="whole")

    def test_summary_json_safe(self, probe):
        _, incumbent, good, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        registry.register(good, version="v2")
        summary = registry.summary()
        json.dumps(summary)
        assert summary["active"] == "v1"
        assert [v["version"] for v in summary["versions"]] == ["v1", "v2"]
        events = [h["event"] for h in summary["history"]]
        assert events[0] == "registered" and "activated" in events

    def test_empty_registry_has_no_active(self):
        registry = ModelRegistry()
        with pytest.raises(LifecycleError, match="no active"):
            registry.active


# ----------------------------------------------------------------------
# Versioned scorer
# ----------------------------------------------------------------------
class TestVersionedScorer:
    def test_delegates_scorer_protocol(self, probe):
        _, incumbent, _, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        versioned = VersionedScorer(registry)
        raw = registry.active.scorer
        assert versioned.backend == raw.backend
        assert versioned.input_dim == raw.input_dim
        assert versioned.batchable == raw.batchable
        assert versioned.fingerprint() == registry.active.fingerprint
        assert versioned.describe() == raw.describe()

    def test_counts_served_requests_per_version(self, probe, obs_clean):
        dataset, incumbent, good, _ = probe
        registry = ModelRegistry(incumbent, version="v1")
        versioned = VersionedScorer(registry)
        x = _queries(dataset)[0]
        versioned.score(x)
        versioned.score(x)
        registry.register(good, version="v2", activate=True)
        versioned.score(x)
        assert versioned.served_by_version == {"v1": 2, "v2": 1}
        assert versioned.requests == 3
        report = obs_clean.lifecycle_report()
        assert report.version("v1").requests == 2
        assert report.version("v2").documents == len(x)

    def test_requires_registry(self):
        with pytest.raises(TypeError, match="ModelRegistry"):
            VersionedScorer("not a registry")


# ----------------------------------------------------------------------
# Shadow comparison math
# ----------------------------------------------------------------------
class TestShadowMath:
    def test_identical_scores_no_drift_full_agreement(self, rng):
        scores = rng.standard_normal(40)
        assert score_drift_pct(scores, scores) == 0.0
        assert ranking_agreement(scores, scores) == pytest.approx(1.0)

    def test_reversed_ranking_disagrees(self, rng):
        scores = np.sort(rng.standard_normal(40))
        assert ranking_agreement(scores, -scores) < 0.5

    def test_scaled_candidate_drifts(self):
        scores = np.ones(10)
        assert score_drift_pct(scores, 1.2 * scores) == pytest.approx(20.0)

    def test_empty_and_mismatched_are_nan(self):
        assert np.isnan(score_drift_pct([], []))
        assert np.isnan(ranking_agreement([1.0, 2.0], [1.0]))


# ----------------------------------------------------------------------
# Swap / gate / rollback through the service
# ----------------------------------------------------------------------
class TestSwap:
    def test_forced_swap_is_bit_identical_pre_and_post(self, probe):
        dataset, incumbent, good, _ = probe
        x = _queries(dataset)[0]
        ref_incumbent = ScoringService(incumbent).score(x)
        ref_candidate = ScoringService(good).score(x)
        service = _gated_service(incumbent)
        np.testing.assert_array_equal(service.score(x), ref_incumbent)
        outcome = service.swap(good, version="v2", force=True)
        assert outcome["action"] == "forced"
        assert outcome["event"]["from_version"] == "v1"
        assert outcome["event"]["invalidated"] > 0  # x was cached under v1
        np.testing.assert_array_equal(service.score(x), ref_candidate)
        service.close()

    def test_gate_promotes_close_candidate(self, probe):
        dataset, incumbent, good, _ = probe
        service = _gated_service(incumbent)
        assert service.swap(good, version="v2")["action"] == "shadowing"
        for x in _queries(dataset)[:4]:
            service.score(x)
        assert service.registry.active.version_id == "v2"
        gate = service.lifecycle.last_gate
        assert gate.passed and gate.compared >= 4
        assert gate.mean_drift_pct < 1.0
        assert gate.mean_agreement > 0.99
        assert service.lifecycle.swap_events[-1].kind == "promoted"
        service.close()

    def test_gate_rolls_back_regressed_candidate(self, probe, obs_clean):
        dataset, incumbent, _, regressed = probe
        service = _gated_service(incumbent)
        assert service.swap(regressed, version="bad")["action"] == "shadowing"
        for x in _queries(dataset)[:4]:
            service.score(x)
        assert service.registry.active.version_id == "v1"
        assert service.lifecycle.state == "serving"
        gate = service.lifecycle.last_gate
        assert not gate.passed
        assert any("drift" in r for r in gate.reasons)
        event = service.lifecycle.swap_events[-1]
        assert event.kind == "rolled-back"
        assert event.invalidated > 0  # shadow-warmed rows under "bad"
        assert obs_clean.lifecycle_report().rollbacks == 1
        service.close()

    def test_without_auto_rollback_shadow_waits_for_decide(self, probe):
        dataset, incumbent, _, regressed = probe
        service = _gated_service(incumbent, auto_rollback=False)
        service.swap(regressed, version="bad")
        for x in _queries(dataset):
            service.score(x)
        assert service.lifecycle.state == "shadowing"
        gate = service.lifecycle.decide()
        assert not gate.passed
        assert service.registry.active.version_id == "v1"
        with pytest.raises(LifecycleError, match="no shadow phase"):
            service.lifecycle.decide()
        service.close()

    def test_new_swap_supersedes_shadow_phase(self, probe):
        dataset, incumbent, good, regressed = probe
        service = _gated_service(incumbent)
        service.swap(regressed, version="bad")
        service.swap(good, version="good")
        assert service.lifecycle.candidate.version_id == "good"
        events = [h["event"] for h in service.registry.history]
        assert "shadow-superseded" in events
        for x in _queries(dataset)[:4]:
            service.score(x)
        assert service.registry.active.version_id == "good"
        service.close()

    def test_manual_rollback_restores_previous(self, probe):
        dataset, incumbent, good, _ = probe
        x = _queries(dataset)[0]
        ref_incumbent = ScoringService(incumbent).score(x)
        service = _gated_service(incumbent)
        service.score(x)
        service.swap(good, version="v2", force=True)
        event = service.rollback()
        assert event.kind == "rolled-back"
        assert service.registry.active.version_id == "v1"
        np.testing.assert_array_equal(service.score(x), ref_incumbent)
        service.close()
        fresh = _gated_service(incumbent)  # single version: nowhere to go
        with pytest.raises(LifecycleError, match="previous"):
            fresh.rollback()
        fresh.close()

    def test_budget_admission_discards_over_budget_candidate(self, probe):
        _, incumbent, good, _ = probe
        service = ScoringService(
            incumbent,
            ServiceConfig(
                budget_us_per_doc=1e6,
                lifecycle=LifecycleConfig(shadow_mode="sync"),
            ),
        )
        registry = service.registry
        manager = service.lifecycle
        manager.budget_us_per_doc = 1e-9  # nothing fits any more
        with pytest.raises(BudgetExceededError, match="exceeds"):
            service.swap(good, version="v2", force=True)
        assert "v2" not in registry  # failed admission leaves no corpse
        assert registry.active.version_id == "v1"
        service.close()

    def test_unpriced_candidate_needs_allow_unpriced(self, probe):
        _, incumbent, _, _ = probe

        class Unpriceable(StubScorer):
            @property
            def predicted_us_per_doc(self):
                raise RuntimeError("no calibration available")

        registry = ModelRegistry(incumbent, version="v1")
        manager = LifecycleManager(
            registry,
            LifecycleConfig(shadow_mode="sync"),
            budget_us_per_doc=10.0,
        )
        with pytest.raises(BudgetExceededError, match="no finite price"):
            manager.swap(Unpriceable(), version="stub", force=True)
        assert "stub" not in registry
        manager.allow_unpriced = True
        outcome = manager.swap(Unpriceable(), version="stub", force=True)
        assert outcome["action"] == "forced"

    def test_swap_refreshes_engine_price(self, probe):
        _, incumbent, good, _ = probe
        service = _gated_service(incumbent)
        service.swap(good, version="v2", force=True)
        assert service.stats.predicted_us_per_doc == pytest.approx(
            service.registry.get("v2").price
        )
        service.close()

    def test_cache_invalidation_is_fingerprint_scoped(self, probe):
        dataset, incumbent, good, _ = probe
        x, y = _queries(dataset)[:2]
        service = _gated_service(incumbent)
        cache = service.cache
        service.score(x)
        service.score(y)
        rows_before = len(cache)
        assert rows_before == len(x) + len(y)
        service.swap(good, version="v2", force=True)
        assert len(cache) == 0  # every cached row was the incumbent's
        service.score(x)  # rewarm under v2's fingerprint
        service.swap(incumbent, version="v1-again", force=True)
        # only v2's rows vanish; v1-again recomputes from scratch
        assert len(cache) == 0
        assert cache.invalidations >= 2
        service.close()


# ----------------------------------------------------------------------
# Property: swaps never blur version boundaries
# ----------------------------------------------------------------------
class TestSwapBitIdentity:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_pre_swap_matches_incumbent_post_swap_matches_candidate(
        self, probe, ref_scorers, seed
    ):
        _, incumbent, good, _ = probe
        ref_incumbent, ref_candidate = ref_scorers
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((int(rng.integers(1, 24)), 136))
        service = _gated_service(incumbent)
        np.testing.assert_array_equal(
            service.score(x), ref_incumbent.score(x)
        )
        service.swap(good, version="v2", force=True)
        np.testing.assert_array_equal(
            service.score(x), ref_candidate.score(x)
        )
        service.close()


# ----------------------------------------------------------------------
# Swap under concurrent load (the zero-downtime claim)
# ----------------------------------------------------------------------
class TestSwapUnderLoad:
    def test_mid_load_swap_loses_nothing(self, probe, obs_clean):
        _, incumbent, good, _ = probe
        service = _gated_service(incumbent)
        spec = LoadSpec(
            mode="closed",
            workers=4,
            requests_per_worker=10,
            n_queries=6,
            docs_per_query=10,
            seed=5,
        )
        report = run_load(
            service,
            spec,
            make_queries(spec, 136),
            swap_at=0.5,
            swap_fn=lambda front: front.swap(good, version="v2", force=True),
        )
        assert report.errors == 0 and report.shed == 0
        assert report.served == report.offered == 40
        assert len(report.swap_events) == 1
        event = report.swap_events[0]
        assert event["action"] == "forced"
        assert 1 <= event["at_request"] <= report.offered
        assert set(report.served_by_version) == {"v1", "v2"}
        assert sum(report.served_by_version.values()) == report.served
        assert service.registry.active.version_id == "v2"
        json.dumps(report.to_dict())
        assert "swap at" in report.render()
        service.close()

    def test_swap_at_validation(self, probe):
        from repro.exceptions import ReproError

        _, incumbent, _, _ = probe
        service = ScoringService(incumbent)
        spec = LoadSpec(mode="closed", workers=1, requests_per_worker=1)
        with pytest.raises(ReproError, match="swap_fn"):
            run_load(service, spec, n_features=136, swap_at=0.5)
        with pytest.raises(ReproError, match=r"\(0, 1\)"):
            run_load(
                service,
                spec,
                n_features=136,
                swap_at=1.5,
                swap_fn=lambda front: None,
            )


# ----------------------------------------------------------------------
# The fixed-model path: unchanged behaviour, wrapped silently
# ----------------------------------------------------------------------
class TestFixedModelPath:
    def test_plain_model_auto_wraps_without_warning(self, probe, recwarn):
        dataset, incumbent, _, _ = probe
        service = ScoringService(incumbent)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
        assert service.registry.active.version_id == "v1"
        assert service.registry.active.source == "seed"
        assert service.model is incumbent

    def test_wrapped_path_scores_identically_to_prebuilt_registry(
        self, probe
    ):
        dataset, incumbent, _, _ = probe
        x = _queries(dataset)[0]
        wrapped = ScoringService(incumbent)
        explicit = ScoringService(
            ModelRegistry(incumbent, version="v1"), ServiceConfig()
        )
        np.testing.assert_array_equal(wrapped.score(x), explicit.score(x))

    def test_empty_registry_rejected(self):
        with pytest.raises(ValueError, match="empty ModelRegistry"):
            ScoringService(ModelRegistry(), ServiceConfig())

    def test_legacy_kwargs_still_warn_through_registry_path(self, probe):
        _, incumbent, _, _ = probe
        with pytest.warns(DeprecationWarning, match="deprecated"):
            service = ScoringService(incumbent, deadline_us=1e6)
        assert service.registry.active.version_id == "v1"
        assert service.chain is not None


# ----------------------------------------------------------------------
# Replay-fed redistillation through the manager
# ----------------------------------------------------------------------
class TestRedistill:
    def test_redistill_requires_replay(self, probe):
        _, incumbent, _, _ = probe
        service = _gated_service(incumbent)  # replay_capacity=0
        with pytest.raises(LifecycleError, match="replay"):
            service.redistill()
        service.close()

    def test_redistill_swaps_in_fine_tuned_student(self, probe):
        dataset, incumbent, _, _ = probe
        service = _gated_service(incumbent, replay_capacity=64)
        queries = _queries(dataset)
        for _ in range(2):
            for x in queries:
                service.score(x)
        replay = service.lifecycle.replay
        assert len(replay) > 0
        assert replay.total_rows > replay.distinct  # dedup observed
        outcome = service.redistill(
            epochs=1, version="v2", force=True, seed=0
        )
        assert outcome["action"] == "forced"
        active = service.registry.active
        assert active.version_id == "v2" and active.source == "redistilled"
        scores = service.score(queries[0])
        assert np.isfinite(scores).all()
        service.close()
