"""Tests for the typed ServiceConfig surface and the deprecated kwargs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.runtime import (
    CircuitBreakerConfig,
    FaultPolicy,
    ManualClock,
    ParallelConfig,
    ResilienceConfig,
    RetryPolicy,
    ServiceConfig,
    StubScorer,
    with_faults,
)
from repro.serving import ScoringService


@pytest.fixture(scope="module")
def features(tiny_splits):
    return tiny_splits[2].features[:120]


# ----------------------------------------------------------------------
# Config objects
# ----------------------------------------------------------------------
class TestConfigObjects:
    def test_service_config_round_trip(self):
        config = ServiceConfig(
            budget_us_per_doc=40.0,
            max_batch_size=None,
            backend="quickscorer",
            allow_unpriced=True,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=3),
                breaker=CircuitBreakerConfig(window=16),
                deadline_us=5e5,
            ),
            parallel=ParallelConfig(workers=4, cache_entries=512),
        )
        rebuilt = ServiceConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_from_dict_accepts_nested_dicts(self):
        config = ServiceConfig.from_dict(
            {
                "budget_us_per_doc": 10.0,
                "resilience": {"deadline_us": 1e6},
                "parallel": {"workers": 2},
            }
        )
        assert config.resilience.deadline_us == 1e6
        assert config.parallel.workers == 2
        assert config.max_batch_size == 256  # default preserved

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown ServiceConfig"):
            ServiceConfig.from_dict({"latency_sla": 1.0})
        with pytest.raises(ConfigError, match="unknown ResilienceConfig"):
            ResilienceConfig.from_dict({"retries": 3})

    def test_fallback_models_not_serializable(self):
        config = ResilienceConfig(fallback_models=(StubScorer(),))
        with pytest.raises(ConfigError, match="live model"):
            config.to_dict()

    def test_fallback_models_coerced_to_tuple(self):
        config = ResilienceConfig(fallback_models=[StubScorer()])
        assert isinstance(config.fallback_models, tuple)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ConfigError, match="deadline_us"):
            ResilienceConfig(deadline_us=-1.0)

    def test_invalid_nested_dict_rejected(self):
        with pytest.raises(ConfigError, match="invalid retry"):
            ResilienceConfig.from_dict(
                {"retry": {"max_attempts": 2, "bogus": True}}
            )

    def test_frontend_config_round_trip(self):
        from repro.runtime import AsyncConfig, TenantConfig

        config = ServiceConfig(
            backend="dense-network",
            frontend=AsyncConfig(
                max_wait_us=250.0,
                max_batch_requests=32,
                slo_us=10_000.0,
                tenants=(
                    TenantConfig(
                        name="web", rate_per_s=500.0, burst=64, priority=0
                    ),
                    TenantConfig(name="batch", priority=2, deadline_us=5e4),
                ),
            ),
        )
        rebuilt = ServiceConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.frontend.tenant("web").rate_per_s == 500.0
        assert rebuilt.frontend.tenant("missing") is None

    def test_frontend_from_nested_dicts(self):
        config = ServiceConfig.from_dict(
            {
                "frontend": {
                    "max_wait_us": 100.0,
                    "tenants": [{"name": "a", "rate_per_s": 10.0}],
                }
            }
        )
        assert config.frontend.max_wait_us == 100.0
        assert config.frontend.tenants[0].name == "a"
        # JSON-able end to end
        import json

        assert json.loads(json.dumps(config.to_dict())) == config.to_dict()

    def test_lifecycle_round_trip(self):
        from repro.runtime import LifecycleConfig

        config = ServiceConfig(
            backend="dense-network",
            lifecycle=LifecycleConfig(
                shadow_fraction=0.5,
                shadow_min_requests=4,
                shadow_mode="sync",
                replay_capacity=128,
            ),
        )
        import json

        rebuilt = ServiceConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert rebuilt == config
        assert rebuilt.lifecycle.shadow_fraction == 0.5

    def test_lifecycle_from_nested_dict(self):
        config = ServiceConfig.from_dict(
            {"lifecycle": {"shadow_fraction": 0.1, "max_drift_pct": 5.0}}
        )
        assert config.lifecycle.shadow_fraction == 0.1
        assert config.lifecycle.shadow_min_requests == 16  # default kept

    def test_lifecycle_unknown_keys_named(self):
        from repro.runtime import LifecycleConfig

        with pytest.raises(ConfigError, match="mirror_fraction"):
            LifecycleConfig.from_dict({"mirror_fraction": 0.5})
        with pytest.raises(ConfigError, match="unknown LifecycleConfig"):
            ServiceConfig.from_dict(
                {"lifecycle": {"mirror_fraction": 0.5}}
            )

    def test_frontend_validation(self):
        from repro.runtime import AsyncConfig, TenantConfig

        with pytest.raises(ConfigError, match="rate_per_s"):
            TenantConfig(name="t", rate_per_s=0.0)
        with pytest.raises(ConfigError, match="priority"):
            TenantConfig(name="t", priority=-1)
        with pytest.raises(ConfigError, match="unknown TenantConfig"):
            TenantConfig.from_dict({"name": "t", "rate": 1.0})
        with pytest.raises(ConfigError, match="unique"):
            AsyncConfig(
                tenants=(TenantConfig(name="a"), TenantConfig(name="a"))
            )
        with pytest.raises(ConfigError, match="unknown AsyncConfig"):
            AsyncConfig.from_dict({"linger_us": 5.0})


# ----------------------------------------------------------------------
# Deprecated kwargs
# ----------------------------------------------------------------------
class TestDeprecatedKwargs:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fallback_models": [StubScorer()]},
            {"retry_policy": RetryPolicy(max_attempts=2)},
            {"breaker_config": CircuitBreakerConfig(window=8)},
            {"deadline_us": 1e6},
            {"allow_unpriced": True},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_each_legacy_kwarg_warns(self, small_forest, kwargs):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            service = ScoringService(small_forest, **kwargs)
        if "allow_unpriced" in kwargs:
            assert service.chain is None
            assert service.config.allow_unpriced is True
        else:
            assert service.chain is not None

    def test_warning_names_the_kwarg_and_replacement(self, small_forest):
        with pytest.warns(
            DeprecationWarning, match=r"'deadline_us'.*ResilienceConfig"
        ):
            ScoringService(small_forest, deadline_us=1e6)

    def test_config_path_does_not_warn(self, small_forest, recwarn):
        ScoringService(
            small_forest,
            ServiceConfig(resilience=ResilienceConfig(deadline_us=1e6)),
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget_us_per_doc": 1e6},
            {"max_batch_size": 64},
            {"backend": "quickscorer"},
            {"deadline_us": 1e6},
            {"allow_unpriced": True},
        ],
        ids=lambda kw: next(iter(kw)),
    )
    def test_config_plus_kwarg_conflicts(self, small_forest, kwargs):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="not both"):
                ScoringService(small_forest, ServiceConfig(), **kwargs)

    def test_legacy_and_config_builds_are_equivalent(
        self, small_forest, features
    ):
        """The deprecated kwargs and the config build identical ladders."""
        clock = ManualClock()

        def faulty_primary():
            from repro.runtime import make_scorer

            return with_faults(
                make_scorer(small_forest, backend="quickscorer"),
                FaultPolicy.every(2),
                sleep=clock.sleep,
            )

        def serve(service):
            outputs = []
            for lo in range(0, len(features), 20):
                outputs.append(service.score(features[lo : lo + 20]))
            return np.concatenate(outputs)

        retry = RetryPolicy(max_attempts=1)
        breaker = CircuitBreakerConfig(
            window=8, min_samples=8, failure_rate_threshold=1.0
        )
        with pytest.warns(DeprecationWarning):
            legacy = ScoringService(
                faulty_primary(),
                fallback_models=[StubScorer()],
                retry_policy=retry,
                breaker_config=breaker,
                clock=clock,
                sleep=clock.sleep,
            )
        modern = ScoringService(
            faulty_primary(),
            ServiceConfig(
                resilience=ResilienceConfig(
                    fallback_models=(StubScorer(),),
                    retry=retry,
                    breaker=breaker,
                )
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        np.testing.assert_array_equal(serve(legacy), serve(modern))
        assert legacy.fallback_ratio == modern.fallback_ratio > 0
        assert [t["served"] for t in legacy.resilience_summary()] == [
            t["served"] for t in modern.resilience_summary()
        ]

    def test_legacy_config_attribute_reflects_kwargs(self, small_forest):
        with pytest.warns(DeprecationWarning):
            service = ScoringService(
                small_forest,
                budget_us_per_doc=1e6,
                deadline_us=2e6,
            )
        assert isinstance(service.config, ServiceConfig)
        assert service.config.budget_us_per_doc == 1e6
        assert service.config.resilience.deadline_us == 2e6


# ----------------------------------------------------------------------
# Config-built services, end to end
# ----------------------------------------------------------------------
class TestServiceFromConfig:
    def test_plain_config_service_scores(self, small_forest, features):
        service = ScoringService(small_forest, ServiceConfig())
        assert service.score(features).shape == (len(features),)
        assert service.parallel_summary() is None
        assert service.resilience_summary() is None

    def test_parallel_config_service_bit_identical(
        self, small_forest, features
    ):
        plain = ScoringService(small_forest)
        reference = plain.score(features)
        service = ScoringService(
            small_forest,
            ServiceConfig(
                max_batch_size=None,
                parallel=ParallelConfig(workers=2, cache_entries=2048),
            ),
        )
        np.testing.assert_array_equal(service.score(features), reference)
        np.testing.assert_array_equal(service.score(features), reference)
        summary = service.parallel_summary()
        assert summary["requests"] == 2
        assert summary["cache"]["hits"] > 0

    def test_parallel_under_resilience(self, small_forest, features):
        """The chain wraps the versioned/sharded scorer unchanged."""
        from repro.runtime import ShardedScorer, VersionedScorer

        service = ScoringService(
            small_forest,
            ServiceConfig(
                max_batch_size=None,
                parallel=ParallelConfig(workers=2),
                resilience=ResilienceConfig(fallback_models=(StubScorer(),)),
            ),
        )
        assert isinstance(service.chain.tiers[0].inner, VersionedScorer)
        assert isinstance(service.sharded, ShardedScorer)
        reference = ScoringService(small_forest).score(features)
        np.testing.assert_array_equal(service.score(features), reference)
        assert service.fallback_ratio == 0.0
