"""Tests for repro.quickscorer.scorer — traversal correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_msn30k_like
from repro.forest import FeatureBinner, GradientBoostingConfig, LambdaMartRanker
from repro.quickscorer import QuickScorer
from repro.quickscorer.scorer import _lowest_set_bit_position


class TestLowestSetBit:
    def test_single_word(self):
        words = np.asarray([[0b1000]], dtype=np.uint64)
        assert _lowest_set_bit_position(words).tolist() == [3]

    def test_second_word(self):
        words = np.asarray([[0, 0b10]], dtype=np.uint64)
        assert _lowest_set_bit_position(words).tolist() == [65]

    def test_high_bit(self):
        words = np.asarray([[1 << 63]], dtype=np.uint64)
        assert _lowest_set_bit_position(words).tolist() == [63]

    def test_empty_raises(self):
        words = np.asarray([[0]], dtype=np.uint64)
        with pytest.raises(RuntimeError):
            _lowest_set_bit_position(words)

    @given(st.integers(0, 127))
    @settings(max_examples=50, deadline=None)
    def test_matches_python_bit_length(self, position):
        words = np.zeros((1, 2), dtype=np.uint64)
        w, b = divmod(position, 64)
        words[0, w] = np.uint64(1) << np.uint64(b)
        # Add noise above the lowest bit.
        if position < 127:
            wn, bn = divmod(127, 64)
            words[0, wn] |= np.uint64(1) << np.uint64(bn)
        assert _lowest_set_bit_position(words)[0] == position


class TestScoringCorrectness:
    def test_matches_ensemble_exactly(self, small_forest, tiny_dataset):
        qs = QuickScorer(small_forest)
        x = tiny_dataset.features[:200]
        np.testing.assert_allclose(
            qs.score(x), small_forest.predict(x), atol=1e-10
        )

    def test_boundary_values_at_thresholds(self, small_forest):
        # Documents placed exactly on split thresholds exercise the <=
        # convention on both paths.
        points = small_forest.split_points()
        x = np.zeros((5, small_forest.n_features))
        for f, pts in enumerate(points):
            if len(pts):
                x[:, f] = pts[0]
        qs = QuickScorer(small_forest)
        np.testing.assert_allclose(qs.score(x), small_forest.predict(x))

    def test_batching_equivalent(self, small_forest, tiny_dataset):
        x = tiny_dataset.features[:100]
        big = QuickScorer(small_forest, batch_size=4096).score(x)
        small = QuickScorer(small_forest, batch_size=7).score(x)
        np.testing.assert_allclose(big, small)

    def test_multi_word_forest(self):
        # Forest whose trees exceed 64 leaves: multi-word bitvectors.
        data = make_msn30k_like(n_queries=60, docs_per_query=25, seed=33)
        config = GradientBoostingConfig(
            n_trees=5, max_leaves=100, learning_rate=0.2, min_data_in_leaf=2
        )
        forest = LambdaMartRanker(config, seed=0).fit(data)
        assert forest.max_leaves > 64
        qs = QuickScorer(forest)
        x = data.features[:100]
        np.testing.assert_allclose(qs.score(x), forest.predict(x), atol=1e-10)

    def test_feature_count_validated(self, small_forest):
        with pytest.raises(ValueError, match="expected"):
            QuickScorer(small_forest).score(np.zeros((2, 3)))

    def test_invalid_batch_size(self, small_forest):
        with pytest.raises(ValueError):
            QuickScorer(small_forest, batch_size=0)


class TestTraversalStats:
    def test_stats_recorded(self, small_forest, tiny_dataset):
        qs = QuickScorer(small_forest)
        qs.score(tiny_dataset.features[:50])
        stats = qs.last_stats
        assert stats.n_docs == 50
        assert stats.n_trees == small_forest.n_trees
        assert stats.false_nodes_total > 0

    def test_false_fraction_below_classical(self, small_forest, tiny_dataset):
        # QuickScorer's headline: far fewer nodes touched than the ~80%
        # of classical traversal.
        qs = QuickScorer(small_forest)
        qs.score(tiny_dataset.features[:200])
        assert 0.0 < qs.last_stats.false_node_fraction < 0.8

    def test_fraction_bounded_by_touched(self, small_forest, tiny_dataset):
        qs = QuickScorer(small_forest)
        qs.score(tiny_dataset.features[:50])
        stats = qs.last_stats
        assert stats.false_node_fraction <= stats.nodes_touched_fraction <= 1.0

    def test_per_doc_average(self, small_forest, tiny_dataset):
        qs = QuickScorer(small_forest)
        qs.score(tiny_dataset.features[:10])
        stats = qs.last_stats
        assert stats.false_nodes_per_doc == pytest.approx(
            stats.false_nodes_total / 10
        )
