"""Tests for repro.nn losses, optimizers and schedulers."""

import numpy as np
import pytest

from repro.nn import Adam, MseLoss, MultiStepLr, Sgd
from repro.nn.layers import Parameter


class TestMseLoss:
    def test_value(self):
        loss = MseLoss()
        v = loss.forward(np.asarray([1.0, 2.0]), np.asarray([0.0, 0.0]))
        assert v == pytest.approx(2.5)

    def test_gradient(self):
        loss = MseLoss()
        pred = np.asarray([1.0, 2.0])
        loss.forward(pred, np.asarray([0.0, 0.0]))
        np.testing.assert_allclose(loss.backward(), 2 * pred / 2)

    def test_zero_at_match(self):
        loss = MseLoss()
        assert loss.forward(np.ones(3), np.ones(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MseLoss().forward(np.ones(2), np.ones(3))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MseLoss().backward()


def quadratic_params():
    """One parameter minimizing f(w) = ||w - target||^2 / 2."""
    p = Parameter(np.asarray([5.0, -3.0]))
    target = np.asarray([1.0, 2.0])
    return p, target


class TestSgd:
    def test_descends_quadratic(self):
        p, target = quadratic_params()
        opt = Sgd([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            p.grad += p.data - target
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        p1, target = quadratic_params()
        p2 = Parameter(p1.data.copy())
        plain = Sgd([p1], lr=0.01)
        momentum = Sgd([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, opt in ((p1, plain), (p2, momentum)):
                opt.zero_grad()
                p.grad += p.data - target
                opt.step()
        assert np.linalg.norm(p2.data - target) < np.linalg.norm(p1.data - target)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Sgd([Parameter(np.zeros(1))], momentum=1.0)


class TestAdam:
    def test_descends_quadratic(self):
        p, target = quadratic_params()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            p.grad += p.data - target
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_magnitude_near_lr(self):
        # Adam's bias-corrected first step is ~lr regardless of gradient
        # scale.
        p = Parameter(np.asarray([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad += 1000.0
        opt.step()
        assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.asarray([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()  # zero loss gradient: only decay acts
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestMultiStepLr:
    def test_decay_at_milestones(self):
        opt = Sgd([Parameter(np.zeros(1))], lr=1.0)
        sched = MultiStepLr(opt, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_paper_msn30k_schedule(self):
        # gamma 0.1 at epochs 50 and 80 (Table 9).
        opt = Sgd([Parameter(np.zeros(1))], lr=0.001)
        sched = MultiStepLr(opt, milestones=[50, 80], gamma=0.1)
        for _ in range(100):
            sched.step()
        assert opt.lr == pytest.approx(0.001 * 0.01)

    def test_invalid_gamma(self):
        opt = Sgd([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            MultiStepLr(opt, [1], gamma=0.0)

    def test_invalid_milestones(self):
        opt = Sgd([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            MultiStepLr(opt, [0], gamma=0.5)
