"""Tests for repro.forest.ensemble (TreeEnsemble)."""

import numpy as np
import pytest

from repro.forest import TreeEnsemble


class TestPrediction:
    def test_additive_model(self, small_forest, tiny_dataset):
        x = tiny_dataset.features[:20]
        manual = np.full(20, small_forest.base_score)
        for tree, w in zip(small_forest.trees, small_forest.weights):
            manual += w * tree.predict(x)
        np.testing.assert_allclose(small_forest.predict(x), manual)

    def test_feature_count_checked(self, small_forest):
        with pytest.raises(ValueError, match="expected"):
            small_forest.predict(np.zeros((3, 5)))

    def test_staged_predict_matches_truncate(self, small_forest, tiny_dataset):
        x = tiny_dataset.features[:15]
        staged = small_forest.staged_predict(x, stages=[5, 10, 20])
        for n in (5, 10, 20):
            np.testing.assert_allclose(
                staged[n], small_forest.truncate(n).predict(x)
            )

    def test_staged_predict_stage_zero(self, small_forest, tiny_dataset):
        x = tiny_dataset.features[:5]
        staged = small_forest.staged_predict(x, stages=[0])
        np.testing.assert_allclose(staged[0], small_forest.base_score)

    def test_staged_predict_invalid_stage(self, small_forest):
        with pytest.raises(ValueError):
            small_forest.staged_predict(np.zeros((2, 136)), stages=[999])


class TestTruncate:
    def test_prefix_semantics(self, small_forest):
        sub = small_forest.truncate(7)
        assert sub.n_trees == 7
        assert sub.trees[0] is small_forest.trees[0]
        assert sub.base_score == small_forest.base_score

    def test_invalid_sizes(self, small_forest):
        with pytest.raises(ValueError):
            small_forest.truncate(0)
        with pytest.raises(ValueError):
            small_forest.truncate(small_forest.n_trees + 1)

    def test_custom_name(self, small_forest):
        assert small_forest.truncate(3, name="tiny").name == "tiny"


class TestStructure:
    def test_describe_format(self, small_forest):
        text = small_forest.describe()
        assert "trees" in text and "leaves" in text

    def test_max_leaves_respects_config(self, small_forest):
        assert small_forest.max_leaves <= 16

    def test_split_points_sorted_unique(self, small_forest):
        points = small_forest.split_points()
        assert len(points) == small_forest.n_features
        for pts in points:
            if len(pts) > 1:
                assert (np.diff(pts) > 0).all()

    def test_split_points_cached(self, small_forest):
        a = small_forest.split_points()
        b = small_forest.split_points()
        assert a is b

    def test_total_nodes_positive(self, small_forest):
        assert small_forest.total_nodes() >= small_forest.n_trees

    def test_learning_curve_monotone_stages(self, small_forest, tiny_splits):
        from repro.metrics import mean_ndcg

        _, _, test = tiny_splits
        curve = small_forest.learning_curve(
            test, lambda ds, s: mean_ndcg(ds, s, 10), stages=[2, 10, 20]
        )
        assert [n for n, _ in curve] == [2, 10, 20]
        assert all(0.0 <= v <= 1.0 for _, v in curve)
        # The full forest ranks at least as well as the 2-tree prefix on
        # the training signal it was boosted for.
        assert curve[-1][1] >= curve[0][1] - 0.05

    def test_learning_curve_default_stages(self, small_forest, tiny_splits):
        from repro.metrics import mean_ndcg

        _, _, test = tiny_splits
        curve = small_forest.learning_curve(
            test, lambda ds, s: mean_ndcg(ds, s, 10)
        )
        stages = [n for n, _ in curve]
        assert stages == sorted(stages)
        assert stages[-1] == small_forest.n_trees

    def test_feature_importance_counts_nodes(self, small_forest):
        importance = small_forest.feature_importance()
        assert len(importance) == small_forest.n_features
        total_internal = sum(
            len(t.internal_nodes()) for t in small_forest.trees
        )
        assert importance.sum() == total_internal

    def test_feature_importance_favours_informative(self, small_forest):
        # The synthetic generator puts signal in the first 40 features.
        importance = small_forest.feature_importance()
        assert importance[:40].sum() > importance[40:].sum()

    def test_feature_importance_invalid_kind(self, small_forest):
        with pytest.raises(ValueError):
            small_forest.feature_importance(kind="gain")

    def test_weight_length_validated(self, small_forest):
        with pytest.raises(ValueError, match="weights"):
            TreeEnsemble(
                trees=small_forest.trees,
                weights=np.ones(2),
                base_score=0.0,
                n_features=136,
            )


class TestSerialization:
    def test_roundtrip_predictions(self, small_forest, tiny_dataset, tmp_path):
        path = tmp_path / "forest.json"
        small_forest.save(path)
        loaded = TreeEnsemble.load(path)
        x = tiny_dataset.features[:25]
        np.testing.assert_allclose(
            loaded.predict(x), small_forest.predict(x), rtol=1e-12
        )

    def test_roundtrip_metadata(self, small_forest, tmp_path):
        path = tmp_path / "forest.json"
        small_forest.save(path)
        loaded = TreeEnsemble.load(path)
        assert loaded.n_trees == small_forest.n_trees
        assert loaded.name == small_forest.name
        assert loaded.max_leaves == small_forest.max_leaves
