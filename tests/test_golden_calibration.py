"""Golden-value regression tests for the calibrated cost models.

The library's scientific claims depend on the calibration constants; an
accidental change to any executor or spec default would silently shift
every reported microsecond.  These tests pin the key derived values to
narrow golden ranges so such drift fails loudly (update them *together*
with a deliberate recalibration, documenting the change in DESIGN.md).
"""

import pytest

from repro.matmul import DenseGemmExecutor, SparseGemmExecutor
from repro.quickscorer import QuickScorerCostModel
from repro.timing import GflopsSurface, calibrate_sparse_predictor


class TestQuickScorerGolden:
    def test_per_tree_cost_64_leaves(self):
        model = QuickScorerCostModel()
        assert model.per_tree_ns(64) == pytest.approx(9.03, abs=0.3)

    def test_anchor_878(self):
        model = QuickScorerCostModel()
        assert model.scoring_time_us(878, 64) == pytest.approx(8.24, abs=0.15)


class TestDenseGolden:
    def test_zone_values(self):
        zones = GflopsSurface.measure(batch_size=1000).zone_summary()
        assert zones.low_k_gflops == pytest.approx(87.0, abs=4.0)
        assert zones.mid_k_gflops == pytest.approx(112.0, abs=5.0)
        assert zones.high_k_gflops == pytest.approx(129.0, abs=5.0)

    def test_flagship_layer_time(self):
        executor = DenseGemmExecutor()
        report = executor.report(400, 1000, 136)
        assert report.gflops == pytest.approx(100.0, abs=8.0)


class TestSparseGolden:
    def test_calibrated_coefficients(self):
        predictor = calibrate_sparse_predictor()
        assert predictor.l_c_vec_ns == pytest.approx(0.295, abs=0.05)
        assert predictor.l_b_vec_ns == pytest.approx(0.15, abs=0.04)
        assert predictor.l_a_vec_ns == pytest.approx(0.17, abs=0.05)
        assert predictor.l_c_over_l_b == pytest.approx(2.0, abs=0.35)

    def test_executor_event_costs_sum(self):
        # A minimal one-nonzero multiplication exercises every term once.
        import numpy as np

        from repro.matmul import CsrMatrix

        executor = SparseGemmExecutor()
        a = CsrMatrix.from_dense(np.asarray([[0.0, 2.0]]))
        _, report = executor.multiply(a, np.ones((2, 8)), compute=False)
        timing = executor.timing
        expected = (
            timing.load_c_vec_ns
            + timing.store_c_vec_ns
            + timing.broadcast_ns
            + timing.fma_vec_ns
            + timing.load_b_vec_miss_ns
            + timing.jit_call_overhead_ns
        )
        assert report.time_ns == pytest.approx(expected)
