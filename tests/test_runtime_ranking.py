"""Declarative ranking pipelines: config round-trips, build, serving."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.obs.probe import build_probe_models
from repro.runtime import (
    PipelineConfig,
    PipelineStageConfig,
    RankingPipeline,
    ServiceConfig,
    build_pipeline,
    make_scorer,
)
from repro.serving import AsyncScoringService, ScoringService


@pytest.fixture(scope="module")
def probe_models():
    return build_probe_models(n_queries=8, docs_per_query=16, seed=21)


@pytest.fixture(scope="module")
def roles(probe_models):
    return {k: m for k, m in probe_models.items() if k != "dataset"}


THREE_STAGES = (
    {"model": "sparse-network", "keep_fraction": 0.4},
    {"model": "dense-network", "keep_fraction": 0.5},
    {"model": "quickscorer"},
)


class TestPipelineStageConfig:
    def test_roundtrip(self):
        stage = PipelineStageConfig(
            model="student",
            backend="compiled-network",
            keep_fraction=0.3,
            backend_options={"plan_dtype": "float32"},
            cost_us_per_doc=1.5,
            name="fast-student",
        )
        restored = PipelineStageConfig.from_dict(
            json.loads(json.dumps(stage.to_dict()))
        )
        assert restored == stage
        assert restored.label == "fast-student"

    def test_defaults(self):
        stage = PipelineStageConfig.from_dict({"model": "teacher"})
        assert stage.keep_fraction == 1.0
        assert stage.backend is None
        assert stage.label == "teacher"

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="keep_franction"):
            PipelineStageConfig.from_dict(
                {"model": "m", "keep_franction": 0.5}
            )

    def test_model_required(self):
        with pytest.raises(ConfigError, match="model"):
            PipelineStageConfig.from_dict({"keep_fraction": 0.5})

    def test_invalid_keep_fraction(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigError):
                PipelineStageConfig(model="m", keep_fraction=bad)

    def test_invalid_cost(self):
        with pytest.raises(ConfigError):
            PipelineStageConfig(model="m", cost_us_per_doc=-1.0)

    def test_backend_options_validated(self):
        with pytest.raises(ConfigError, match="mapping"):
            PipelineStageConfig(model="m", backend_options=[1, 2])


class TestPipelineConfig:
    def test_roundtrip_through_json(self):
        config = PipelineConfig(
            stages=list(THREE_STAGES), budget_us_per_query=40.0
        )
        restored = PipelineConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored == config
        assert restored.roles == (
            "sparse-network",
            "dense-network",
            "quickscorer",
        )

    def test_dict_stages_coerced(self):
        config = PipelineConfig(stages=[{"model": "a"}])
        assert isinstance(config.stages[0], PipelineStageConfig)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError, match="at least one stage"):
            PipelineConfig(stages=[])

    def test_invalid_budget(self):
        for bad in (0.0, -5.0, float("inf"), float("nan")):
            with pytest.raises(ConfigError):
                PipelineConfig(stages=[{"model": "a"}], budget_us_per_query=bad)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="budget_us"):
            PipelineConfig.from_dict(
                {"stages": [{"model": "a"}], "budget_us": 5.0}
            )


class TestBuildPipeline:
    def test_builds_ranking_pipeline(self, roles):
        pipeline = build_pipeline(
            roles, PipelineConfig(stages=list(THREE_STAGES)), name="probe"
        )
        assert isinstance(pipeline, RankingPipeline)
        assert pipeline.name == "probe"
        assert [s.name for s in pipeline.stages] == [
            "sparse-network",
            "dense-network",
            "quickscorer",
        ]
        assert pipeline.describe().startswith("probe:")
        # Stage prices come from the calibrated backends.
        assert all(s.cost_us_per_doc > 0 for s in pipeline.stages)

    def test_mapping_config_coerced(self, roles):
        pipeline = build_pipeline(
            roles, {"stages": [{"model": "quickscorer"}]}
        )
        assert isinstance(pipeline.config, PipelineConfig)

    def test_missing_role_lists_available(self, roles):
        config = PipelineConfig(stages=[{"model": "nonesuch"}])
        with pytest.raises(ConfigError, match="nonesuch") as err:
            build_pipeline(roles, config)
        assert "quickscorer" in str(err.value)

    def test_prebuilt_scorer_used_as_is(self, roles):
        scorer = make_scorer(roles["quickscorer"])
        pipeline = build_pipeline(
            {"qs": scorer},
            PipelineConfig(stages=[{"model": "qs", "name": "forest"}]),
        )
        assert pipeline.stages[0].cost_us_per_doc == pytest.approx(
            scorer.predicted_us_per_doc
        )

    def test_prebuilt_scorer_rejects_backend(self, roles):
        scorer = make_scorer(roles["quickscorer"])
        config = PipelineConfig(
            stages=[{"model": "qs", "backend": "quickscorer"}]
        )
        with pytest.raises(ConfigError, match="already a built scorer"):
            build_pipeline({"qs": scorer}, config)

    def test_cost_override_wins(self, roles):
        config = PipelineConfig(
            stages=[{"model": "quickscorer", "cost_us_per_doc": 123.0}]
        )
        pipeline = build_pipeline(roles, config)
        assert pipeline.stages[0].cost_us_per_doc == 123.0

    def test_scores_are_refinement(self, probe_models, roles):
        dataset = probe_models["dataset"]
        pipeline = build_pipeline(
            roles, PipelineConfig(stages=list(THREE_STAGES))
        )
        x = dataset.features[dataset.query_slice(0)]
        result = pipeline.score_query_detailed(x)
        assert result.stages_run == 3
        for level in range(2):
            assert set(result.survivors[level + 1].tolist()) <= set(
                result.survivors[level].tolist()
            )


class TestServiceConfigPipeline:
    def test_nested_roundtrip(self):
        config = ServiceConfig(
            pipeline=PipelineConfig(
                stages=list(THREE_STAGES), budget_us_per_query=25.0
            ),
            max_batch_size=None,
        )
        restored = ServiceConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored.pipeline == config.pipeline

    def test_dict_pipeline_coerced(self):
        config = ServiceConfig(
            pipeline={"stages": [{"model": "a"}], "budget_us_per_query": None}
        )
        assert isinstance(config.pipeline, PipelineConfig)

    def test_pipeline_excludes_backend(self):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            ServiceConfig(
                pipeline={"stages": [{"model": "a"}]}, backend="quickscorer"
            )

    def test_none_pipeline_serializes(self):
        assert ServiceConfig().to_dict()["pipeline"] is None


class TestScoringServiceIntegration:
    def _service(self, roles, **kwargs):
        return ScoringService(
            roles,
            ServiceConfig(
                pipeline=PipelineConfig(stages=list(THREE_STAGES), **kwargs),
                max_batch_size=None,
            ),
        )

    def test_builds_pipeline_from_role_mapping(self, probe_models, roles):
        service = self._service(roles)
        assert isinstance(service.pipeline, RankingPipeline)
        assert service.scorer.backend == "cascade"
        dataset = probe_models["dataset"]
        x = dataset.features[dataset.query_slice(1)]
        served = service.score(x)
        direct = service.pipeline.score_query(x)
        np.testing.assert_array_equal(served, direct)

    def test_pipeline_summary(self, roles):
        summary = self._service(roles).pipeline_summary()
        assert [row["stage"] for row in summary] == [
            "sparse-network",
            "dense-network",
            "quickscorer",
        ]
        assert all(row["cost_us_per_doc"] > 0 for row in summary)
        assert summary[0]["keep_fraction"] == 0.4

    def test_plain_service_has_no_pipeline(self, roles):
        service = ScoringService(roles["quickscorer"], ServiceConfig())
        assert service.pipeline is None
        assert service.pipeline_summary() is None

    def test_prebuilt_pipeline_model_accepted(self, roles):
        pipeline = build_pipeline(
            roles, PipelineConfig(stages=list(THREE_STAGES))
        )
        service = ScoringService(
            pipeline,
            ServiceConfig(pipeline=pipeline.config, max_batch_size=None),
        )
        assert service.pipeline is pipeline

    def test_non_mapping_model_rejected(self, roles):
        with pytest.raises(ValueError, match="mapping"):
            ScoringService(
                roles["quickscorer"],
                ServiceConfig(
                    pipeline=PipelineConfig(stages=list(THREE_STAGES)),
                    max_batch_size=None,
                ),
            )

    def test_budgeted_service_exits_early(self, probe_models, roles, obs_clean):
        service = self._service(roles, budget_us_per_query=2.0)
        dataset = probe_models["dataset"]
        for q in range(dataset.n_queries):
            service.score(dataset.features[dataset.query_slice(q)])
        report = obs_clean.cascade_report()
        assert report.queries.get("pipeline") == dataset.n_queries
        assert report.early_exits.get("pipeline", 0) > 0

    def test_async_frontend_serves_pipeline(self, probe_models, roles):
        service = self._service(roles)
        dataset = probe_models["dataset"]
        requests = [
            dataset.features[dataset.query_slice(q)]
            for q in range(dataset.n_queries)
        ]
        expected = [service.pipeline.score_query(x) for x in requests]

        async def _run():
            async with AsyncScoringService(service) as front:
                return await asyncio.gather(
                    *(front.score(x) for x in requests)
                )

        results = asyncio.run(_run())
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)


class TestCascadeObsReport:
    def test_record_and_report(self, obs_clean):
        obs_clean.record_cascade_query(
            "p",
            stage_names=("a", "b"),
            stage_docs=(10, 4),
            stage_us=(5.0, 20.0),
            predicted_spend_us=12.5,
            exited_early=False,
        )
        obs_clean.record_cascade_query(
            "p",
            stage_names=("a",),
            stage_docs=(8,),
            stage_us=(4.0,),
            predicted_spend_us=8.0,
            exited_early=True,
        )
        report = obs_clean.cascade_report()
        assert report.queries == {"p": 2}
        assert report.early_exits == {"p": 1}
        assert report.mean_predicted_spend_us["p"] == pytest.approx(10.25)
        rows = report.pipeline("p")
        assert [(r.level, r.stage) for r in rows] == [(0, "a"), (1, "b")]
        assert rows[0].queries == 2
        assert rows[0].docs == 18
        assert rows[0].docs_per_query == pytest.approx(9.0)
        assert rows[1].us_per_doc == pytest.approx(5.0)
        rendered = report.render()
        assert "Cascade funnel" in rendered
        assert "1 budget early-exits" in rendered

    def test_empty_report_renders(self, obs_clean):
        assert "no cascade queries" in obs_clean.cascade_report().render()
