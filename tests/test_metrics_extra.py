"""Tests for repro.metrics.extra (P@k, R@k, ERR)."""

import numpy as np
import pytest

from repro.datasets import LtrDataset
from repro.metrics import (
    err,
    mean_err,
    mean_precision_at_k,
    precision_at_k,
    recall_at_k,
)


class TestPrecisionAtK:
    def test_all_relevant_top(self):
        assert precision_at_k([3, 2, 1], [1, 1, 0], k=2) == 1.0

    def test_none_relevant_top(self):
        assert precision_at_k([3, 2, 1], [0, 0, 1], k=2) == 0.0

    def test_k_beyond_list(self):
        assert precision_at_k([2, 1], [1, 0], k=10) == pytest.approx(0.5)

    def test_graded_threshold(self):
        assert precision_at_k([2, 1], [1, 2], k=2, relevance_threshold=2) == 0.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], k=0)


class TestRecallAtK:
    def test_full_recall(self):
        assert recall_at_k([3, 2, 1], [1, 1, 0], k=2) == 1.0

    def test_half_recall(self):
        assert recall_at_k([3, 2, 1], [1, 0, 1], k=1) == pytest.approx(0.5)

    def test_no_relevant_nan(self):
        assert np.isnan(recall_at_k([1, 2], [0, 0], k=1))


class TestErr:
    def test_perfect_single_doc(self):
        # One grade-4 doc at rank 1: ERR = (2^4-1)/2^4 = 0.9375.
        assert err([1.0], [4]) == pytest.approx(0.9375)

    def test_cascade_discount(self):
        # Same doc at rank 2 behind an irrelevant one: halved.
        assert err([1.0, 2.0], [4, 0]) == pytest.approx(0.9375 / 2)

    def test_better_ranking_higher_err(self):
        labels = [0, 4, 1]
        good = err([0.0, 2.0, 1.0], labels)
        bad = err([2.0, 0.0, 1.0], labels)
        assert good > bad

    def test_bounded_zero_one(self, rng):
        labels = rng.integers(0, 5, size=15)
        value = err(rng.normal(size=15), labels)
        assert 0.0 <= value <= 1.0

    def test_cutoff(self):
        labels = [0, 0, 4]
        assert err([3.0, 2.0, 1.0], labels, k=2) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            err([1.0], [1], max_grade=0)
        with pytest.raises(ValueError):
            err([1.0], [1], k=0)


class TestAggregates:
    def make_dataset(self):
        return LtrDataset(
            features=np.zeros((4, 1)),
            labels=np.asarray([2, 0, 4, 0]),
            qids=np.asarray([1, 1, 2, 2]),
        )

    def test_mean_err(self):
        ds = self.make_dataset()
        scores = np.asarray([2.0, 1.0, 2.0, 1.0])  # both perfect
        expected_q1 = (2**2 - 1) / 2**4
        expected_q2 = (2**4 - 1) / 2**4
        assert mean_err(ds, scores) == pytest.approx(
            (expected_q1 + expected_q2) / 2
        )

    def test_mean_precision(self):
        ds = self.make_dataset()
        scores = np.asarray([2.0, 1.0, 1.0, 2.0])  # q2 reversed
        assert mean_precision_at_k(ds, scores, k=1) == pytest.approx(0.5)
