"""Tests for repro.timing.verification."""

import pytest

from repro.timing.verification import (
    AnchorCheck,
    CalibrationReport,
    verify_calibration,
)


class TestAnchorCheck:
    def test_drift_and_ok(self):
        check = AnchorCheck("x", expected=10.0, measured=10.5, tolerance=0.1)
        assert check.drift == pytest.approx(0.05)
        assert check.ok

    def test_drifted(self):
        check = AnchorCheck("x", expected=10.0, measured=13.0, tolerance=0.1)
        assert not check.ok


class TestVerifyCalibration:
    @pytest.fixture(scope="class")
    def report(self):
        return verify_calibration()

    def test_all_anchors_hold(self, report):
        assert report.ok, report.render()

    def test_covers_all_models(self, report):
        names = {c.name for c in report.checks}
        assert "qs_878x64_us" in names
        assert "gflops_mid_k" in names
        assert "lc_over_lb" in names

    def test_render_mentions_status(self, report):
        text = report.render()
        assert "Calibration verification" in text
        assert "ok" in text

    def test_quick_mode_skips_dense(self):
        report = verify_calibration(include_dense=False, include_sparse=False)
        assert len(report.checks) == 3
        assert report.ok

    def test_failures_empty_when_ok(self, report):
        assert report.failures() == []

    def test_report_detects_drift(self):
        bad = CalibrationReport(
            checks=(
                AnchorCheck("a", 1.0, 2.0, 0.1),
                AnchorCheck("b", 1.0, 1.0, 0.1),
            )
        )
        assert not bad.ok
        assert [c.name for c in bad.failures()] == ["a"]
        assert "DRIFTED" in bad.render()
