"""Tests for the per-tenant multi-window SLO burn-rate monitor."""

import pytest

from repro import obs
from repro.exceptions import ReproError
from repro.obs.slo import BurnRow, SloMonitor, SloPolicy, _burn


#: Small policy for fast manual-clock replays: 10s fast / 60s slow
#: windows over 6 ten-second buckets, 99% objective (budget 1%).
POLICY = SloPolicy(
    objective=0.99,
    fast_window_s=10.0,
    slow_window_s=60.0,
    fast_burn=14.4,
    slow_burn=6.0,
    bins=6,
)


def _feed(monitor, tenant, *, t0, n, miss_every=0, dt=0.01):
    """Record n responses starting at t0, every `miss_every`-th a miss."""
    for i in range(n):
        miss = bool(miss_every) and i % miss_every == 0
        monitor.record(tenant, miss, now=t0 + i * dt)


class TestSloPolicy:
    def test_derived_quantities(self):
        assert POLICY.error_budget == pytest.approx(0.01)
        assert POLICY.bucket_s == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ReproError, match="objective"):
            SloPolicy(objective=1.0)
        with pytest.raises(ReproError, match="positive"):
            SloPolicy(fast_window_s=0.0)
        with pytest.raises(ReproError, match="fast window"):
            SloPolicy(fast_window_s=7200.0)
        with pytest.raises(ReproError, match="bins"):
            SloPolicy(bins=1)


class TestBurnMath:
    def test_burn_rate(self):
        # 1% misses against a 1% budget burns at exactly 1x.
        assert _burn(1, 100, 0.01) == pytest.approx(1.0)
        assert _burn(10, 100, 0.01) == pytest.approx(10.0)
        assert _burn(0, 100, 0.01) == 0.0
        assert _burn(0, 0, 0.01) == 0.0  # no traffic, no burn

    def test_states(self):
        def row(fast_burn, slow_burn, slow_served=100):
            return BurnRow(
                tenant="t",
                fast_served=100,
                fast_missed=0,
                slow_served=slow_served,
                slow_missed=0,
                fast_burn=fast_burn,
                slow_burn=slow_burn,
                fast_threshold=14.4,
                slow_threshold=6.0,
            )

        assert row(0.0, 0.0, slow_served=0).state == "idle"
        assert row(0.0, 0.0).state == "ok"
        # Fast window hot but slow window cool: a single bad batch —
        # does NOT page.
        assert row(20.0, 1.0).state == "ok"
        assert row(1.0, 8.0).state == "slow-burn"
        assert row(20.0, 8.0).state == "fast-burn"


class TestSloMonitor:
    def test_fast_burn_requires_both_windows(self):
        monitor = SloMonitor(POLICY, clock=lambda: 0.0)
        # 50s of clean traffic, then a terrible last 10s (50% misses).
        _feed(monitor, "web", t0=100.0, n=500, dt=0.1)
        _feed(monitor, "web", t0=150.0, n=100, miss_every=2, dt=0.1)
        row = monitor.report(now=159.9).tenant("web")
        # Fast window: 50/100 misses = 5000x burn.  Slow window:
        # 50/600 ~ 8.3x — both over threshold -> page.
        assert row.fast_burn > POLICY.fast_burn
        assert row.slow_burn > POLICY.slow_burn
        assert row.state == "fast-burn"

    def test_single_bad_batch_does_not_page(self):
        monitor = SloMonitor(POLICY, clock=lambda: 0.0)
        # 50s of clean traffic at high volume, then 10 straight misses.
        _feed(monitor, "web", t0=100.0, n=5000, dt=0.01)
        _feed(monitor, "web", t0=150.0, n=10, miss_every=1, dt=0.1)
        row = monitor.report(now=159.9).tenant("web")
        assert row.fast_burn > POLICY.fast_burn  # fast window screams...
        assert row.slow_burn < POLICY.slow_burn  # ...slow window shrugs
        assert row.state == "ok"

    def test_misses_age_out_of_the_windows(self):
        monitor = SloMonitor(POLICY, clock=lambda: 0.0)
        _feed(monitor, "web", t0=100.0, n=100, miss_every=1, dt=0.01)
        assert monitor.report(now=105.0).tenant("web").state == "fast-burn"
        # 70s later the miss burst has left even the slow window, but
        # fresh clean traffic keeps the tenant out of "idle".
        _feed(monitor, "web", t0=170.0, n=10, dt=0.01)
        row = monitor.report(now=171.0).tenant("web")
        assert row.slow_missed == 0
        assert row.state == "ok"

    def test_tenants_are_independent(self):
        monitor = SloMonitor(POLICY, clock=lambda: 0.0)
        _feed(monitor, "web", t0=100.0, n=200, miss_every=1, dt=0.1)
        _feed(monitor, "batch", t0=100.0, n=200, dt=0.1)
        report = monitor.report(now=119.9)
        assert report.tenant("web").state == "fast-burn"
        assert report.tenant("batch").state == "ok"
        assert [r.tenant for r in report.alerting] == ["web"]

    def test_injected_clock_drives_defaults(self):
        times = iter([10.0, 10.1, 10.2])
        monitor = SloMonitor(POLICY, clock=lambda: next(times))
        monitor.record("web", True)
        monitor.record("web", False)
        row = monitor.report().tenant("web")
        assert row.fast_served == 2 and row.fast_missed == 1

    def test_report_shapes(self):
        monitor = SloMonitor(POLICY, clock=lambda: 0.0)
        assert monitor.report(now=0.0).render() == "(no SLO traffic recorded)"
        _feed(monitor, "web", t0=100.0, n=100, miss_every=10, dt=0.01)
        report = monitor.report(now=101.0)
        doc = report.to_dict()
        assert doc["objective"] == 0.99
        assert doc["rows"][0]["tenant"] == "web"
        assert doc["rows"][0]["fast_missed"] == 10
        text = report.render()
        assert "web" in text and "burn" in text
        assert "web" in report.tenant("web").describe()
        assert report.tenant("nope") is None

    def test_reset(self):
        monitor = SloMonitor(POLICY, clock=lambda: 0.0)
        monitor.record("web", True, now=1.0)
        monitor.reset()
        assert monitor.report(now=1.0).rows == ()


class TestModuleDefaults:
    def test_record_and_report_via_module_api(self, obs_clean):
        obs.record_slo_event("web", True)
        obs.record_slo_event("web", False)
        row = obs.slo_burn_report().tenant("web")
        assert row.fast_served == 2 and row.fast_missed == 1

    def test_record_response_feeds_the_monitor(self, obs_clean):
        # The serving bridge: any SLO-accounted response lands in the
        # burn windows; responses without an SLO do not.
        obs.record_response("web", latency_us=900.0, slo_us=500.0)
        obs.record_response("web", latency_us=100.0, slo_us=500.0)
        obs.record_response("web", latency_us=100.0)
        row = obs.slo_burn_report().tenant("web")
        assert row.fast_served == 2 and row.fast_missed == 1

    def test_set_monitor_swaps_and_returns_previous(self, obs_clean):
        mine = SloMonitor(POLICY)
        previous = obs.set_slo_monitor(mine)
        try:
            assert obs.get_slo_monitor() is mine
        finally:
            obs.set_slo_monitor(previous)
