"""Tests for repro.timing.sparse_predictor and calibration (Eq. 5 / Table 4)."""

import numpy as np
import pytest

from repro.exceptions import CalibrationError, PredictorError
from repro.matmul import CsrMatrix, SparseGemmExecutor
from repro.timing import calibrate_sparse_predictor
from repro.timing.calibration import CalibrationMatrices


@pytest.fixture(scope="module")
def predictor():
    return calibrate_sparse_predictor()


@pytest.fixture(scope="module")
def executor():
    return SparseGemmExecutor()


def random_pruned(m, k, sparsity, seed=0):
    rng = np.random.default_rng(seed)
    nnz = int(round((1 - sparsity) * m * k))
    dense = np.zeros(m * k)
    dense[rng.choice(m * k, nnz, replace=False)] = rng.normal(size=nnz)
    return CsrMatrix.from_dense(dense.reshape(m, k))


class TestCalibrationMatrices:
    def test_single_column_structure(self):
        probes = CalibrationMatrices.build(50, seed=0)
        a_c = probes.single_column
        assert a_c.nnz == 50
        assert a_c.n_active_cols == 1
        assert a_c.n_active_rows == 50

    def test_row_diagonal_structure(self):
        a_rd = CalibrationMatrices.build(50, seed=0).row_diagonal
        assert a_rd.nnz == 50
        assert a_rd.n_active_rows == 50
        assert a_rd.n_active_cols == 50

    def test_two_columns_structure(self):
        a_2c = CalibrationMatrices.build(50, seed=0).two_columns
        assert a_2c.nnz == 100
        assert a_2c.n_active_cols == 2

    def test_too_small_rejected(self):
        with pytest.raises(CalibrationError):
            CalibrationMatrices.build(2)


class TestCalibratedCoefficients:
    def test_all_positive(self, predictor):
        assert predictor.l_c_vec_ns > 0
        assert predictor.l_b_vec_ns > 0
        assert predictor.l_a_vec_ns > 0
        assert predictor.l_a_scalar_ns >= 0

    def test_lc_twice_lb(self, predictor):
        # Section 4.4: "we empirically verify ... L_c = 2 L_b".
        assert predictor.l_c_over_l_b == pytest.approx(2.0, rel=0.25)

    def test_deterministic(self):
        a = calibrate_sparse_predictor(seed=3)
        b = calibrate_sparse_predictor(seed=3)
        assert a.l_b_vec_ns == pytest.approx(b.l_b_vec_ns)


class TestPredictionAccuracy:
    """Table 4: Eq. 5 must track the executor across shapes and batches."""

    @pytest.mark.parametrize(
        "m,sparsity",
        [(400, 0.995), (400, 0.986), (300, 0.985), (200, 0.982),
         (100, 0.989), (50, 0.987)],
    )
    @pytest.mark.parametrize("batch", [16, 32, 64])
    def test_matches_simulator(self, predictor, executor, m, sparsity, batch):
        a = random_pruned(m, 136, sparsity, seed=m + batch)
        simulated = executor.measure_time_us(a, batch)
        predicted = predictor.time_for(a, batch)
        assert predicted == pytest.approx(simulated, rel=0.25)

    def test_distinguishes_same_shape_different_sparsity(self, predictor):
        # Table 4: two 200x136 instances at 98.2% vs 97.1% must differ.
        sparse = random_pruned(200, 136, 0.982, seed=1)
        denser = random_pruned(200, 136, 0.971, seed=1)
        assert predictor.time_for(denser, 64) > predictor.time_for(sparse, 64)

    def test_batch_scaling(self, predictor):
        a = random_pruned(400, 136, 0.99, seed=2)
        t16 = predictor.time_for(a, 16)
        t64 = predictor.time_for(a, 64)
        assert 2.5 <= t64 / t16 <= 4.5


class TestPredictorInterface:
    def test_large_batch_rejected_strict(self, predictor):
        a = random_pruned(100, 100, 0.99, seed=3)
        with pytest.raises(PredictorError, match="cache-residency"):
            predictor.time_for(a, 256)

    def test_large_batch_extrapolates_nonstrict(self, predictor):
        a = random_pruned(100, 100, 0.99, seed=3)
        t = predictor.time_for(a, 256, strict=False)
        assert t > predictor.time_for(a, 64)

    def test_worst_case_uses_full_dims(self, predictor):
        t_worst = predictor.worst_case_time_us(400, 136, 0.99, 64)
        a = random_pruned(400, 136, 0.99, seed=4)
        t_actual = predictor.time_for(a, 64)
        assert t_worst >= t_actual * 0.95

    def test_worst_case_zero_nnz(self, predictor):
        assert predictor.worst_case_time_us(100, 100, 1.0, 64) == 0.0

    def test_invalid_sparsity(self, predictor):
        with pytest.raises(PredictorError):
            predictor.worst_case_time_us(10, 10, 1.5, 16)

    def test_invalid_batch(self, predictor):
        with pytest.raises(PredictorError):
            predictor.n_vectors(0)

    def test_negative_counts_rejected(self, predictor):
        with pytest.raises(PredictorError):
            predictor.time_us(nnz=-1, active_rows=0, active_cols=0, batch=8)
