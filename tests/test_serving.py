"""Tests for repro.serving (the scoring-service wrapper)."""

import numpy as np
import pytest

from repro.serving import BudgetExceededError, ScoringService


class TestForestService:
    def test_scores_match_ensemble(self, small_forest, tiny_dataset):
        service = ScoringService(small_forest)
        x = tiny_dataset.features[:50]
        np.testing.assert_allclose(
            service.score(x), small_forest.predict(x), atol=1e-10
        )

    def test_predicted_cost_from_quickscorer_model(self, small_forest):
        from repro.quickscorer import QuickScorerCostModel

        service = ScoringService(small_forest)
        expected = QuickScorerCostModel().scoring_time_for(small_forest)
        assert service.stats.predicted_us_per_doc == pytest.approx(expected)

    def test_budget_enforced(self, small_forest):
        with pytest.raises(BudgetExceededError):
            ScoringService(small_forest, budget_us_per_doc=0.0001)

    def test_budget_accepts_cheap_model(self, small_forest):
        service = ScoringService(small_forest, budget_us_per_doc=100.0)
        assert service.budget_us_per_doc == 100.0


class TestStudentService:
    def test_dense_student_priced_dense(self, small_student, predictor_cache):
        service = ScoringService(small_student, predictor=predictor_cache)
        report = predictor_cache.predict(
            small_student.input_dim, small_student.hidden
        )
        assert service.stats.predicted_us_per_doc == pytest.approx(
            report.dense_total_us_per_doc
        )

    def test_scores_match_student(
        self, small_student, tiny_dataset, predictor_cache
    ):
        service = ScoringService(small_student, predictor=predictor_cache)
        x = tiny_dataset.features[:40]
        np.testing.assert_allclose(
            service.score(x), small_student.predict(x)
        )

    def test_pruned_student_priced_hybrid(
        self, small_student, predictor_cache
    ):
        from repro.pruning import LevelPruner

        pruned = small_student.clone()
        LevelPruner(0.95).apply(pruned.network.first_layer)
        dense_service = ScoringService(small_student, predictor=predictor_cache)
        sparse_service = ScoringService(pruned, predictor=predictor_cache)
        assert (
            sparse_service.stats.predicted_us_per_doc
            < dense_service.stats.predicted_us_per_doc
        )


class TestServiceOperations:
    def test_stats_accumulate(self, small_forest, tiny_dataset):
        service = ScoringService(small_forest)
        service.score(tiny_dataset.features[:10])
        service.score(tiny_dataset.features[:20])
        assert service.stats.requests == 2
        assert service.stats.documents == 30
        assert service.stats.mean_docs_per_request == pytest.approx(15.0)
        assert service.stats.wall_seconds > 0

    def test_rank_descending(self, small_forest, tiny_dataset):
        service = ScoringService(small_forest)
        x = tiny_dataset.features[:15]
        order = service.rank(x)
        scores = small_forest.predict(x)
        assert list(scores[order]) == sorted(scores, reverse=True)

    def test_top_k(self, small_forest, tiny_dataset):
        service = ScoringService(small_forest)
        x = tiny_dataset.features[:15]
        top = service.top_k(x, 3)
        assert len(top) == 3
        scores = small_forest.predict(x)
        assert set(top) == set(np.argsort(-scores)[:3])

    def test_top_k_invalid(self, small_forest, tiny_dataset):
        service = ScoringService(small_forest)
        with pytest.raises(ValueError):
            service.top_k(tiny_dataset.features[:5], 0)

    def test_unsupported_model_type(self):
        with pytest.raises(TypeError, match="unsupported model"):
            ScoringService(object())

    def test_service_over_persisted_student(
        self, small_student, tiny_dataset, predictor_cache, tmp_path
    ):
        # Persistence + serving integration: a student loaded from disk
        # serves identical scores.
        from repro.distill import DistilledStudent

        path = tmp_path / "student.json"
        small_student.save(path)
        service = ScoringService(
            DistilledStudent.load(path), predictor=predictor_cache
        )
        x = tiny_dataset.features[:25]
        np.testing.assert_allclose(
            service.score(x), small_student.predict(x), atol=1e-12
        )
