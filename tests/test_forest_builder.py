"""Tests for repro.forest.builder (histogram tree growing)."""

import numpy as np
import pytest

from repro.forest import FeatureBinner
from repro.forest.builder import HistogramTreeBuilder, TreeGrowthConfig


def build_tree(x, targets, **kwargs):
    """Fit one regression tree to (x, targets) with L2 gradients."""
    binner = FeatureBinner(max_bins=64)
    binned = binner.fit_transform(x)
    config = TreeGrowthConfig(**kwargs) if kwargs else TreeGrowthConfig()
    builder = HistogramTreeBuilder(binned, binner, config)
    # L2 loss from a zero model: g = -targets, h = 1.
    g = -np.asarray(targets, dtype=np.float64)
    h = np.ones(len(targets))
    return builder.build(g, h)


class TestGrowth:
    def test_learns_a_single_split(self, rng):
        x = rng.uniform(size=(400, 3))
        y = np.where(x[:, 1] > 0.5, 2.0, -2.0)
        tree = build_tree(x, y, max_leaves=2, lambda_l2=0.0, min_data_in_leaf=5)
        assert tree.n_leaves == 2
        assert tree.feature[0] == 1
        assert tree.threshold[0] == pytest.approx(0.5, abs=0.05)
        pred = tree.predict(x)
        assert np.corrcoef(pred, y)[0, 1] > 0.99

    def test_respects_max_leaves(self, rng):
        x = rng.uniform(size=(500, 4))
        y = rng.normal(size=500)
        tree = build_tree(x, y, max_leaves=8, min_data_in_leaf=5)
        assert tree.n_leaves <= 8

    def test_respects_min_data_in_leaf(self, rng):
        x = rng.uniform(size=(300, 2))
        y = rng.normal(size=300)
        tree = build_tree(x, y, max_leaves=32, min_data_in_leaf=40)
        leaf_counts = np.bincount(tree.predict_leaf(x))
        assert leaf_counts.min() >= 40

    def test_respects_max_depth(self, rng):
        x = rng.uniform(size=(500, 3))
        y = rng.normal(size=500)
        tree = build_tree(x, y, max_leaves=64, max_depth=2, min_data_in_leaf=5)
        assert tree.depth() <= 2

    def test_leaf_values_are_regularized_means(self, rng):
        x = rng.uniform(size=(200, 2))
        y = np.where(x[:, 0] > 0.5, 1.0, 0.0)
        lam = 3.0
        tree = build_tree(x, y, max_leaves=2, lambda_l2=lam, min_data_in_leaf=5)
        leaf_pos = tree.predict_leaf(x)
        for leaf in range(tree.n_leaves):
            members = y[leaf_pos == leaf]
            expected = members.sum() / (len(members) + lam)
            actual = tree.value[tree.leaf_indices()[leaf]]
            assert actual == pytest.approx(expected, rel=1e-9)

    def test_pure_noise_few_splits_vs_signal(self, rng):
        x = rng.uniform(size=(300, 2))
        noise_tree = build_tree(x, rng.normal(0, 1e-9, 300), max_leaves=16)
        signal_tree = build_tree(
            x, np.where(x[:, 0] > 0.5, 5.0, -5.0), max_leaves=16
        )
        assert signal_tree.n_leaves >= noise_tree.n_leaves

    def test_bagging_rows_subset(self, rng):
        x = rng.uniform(size=(400, 2))
        y = np.where(x[:, 0] > 0.5, 1.0, -1.0)
        binner = FeatureBinner(max_bins=32)
        binned = binner.fit_transform(x)
        builder = HistogramTreeBuilder(binned, binner, TreeGrowthConfig())
        rows = rng.choice(400, size=200, replace=False)
        tree = builder.build(-y, np.ones(400), rows)
        assert tree.n_leaves >= 2

    def test_gradient_shape_validated(self, rng):
        x = rng.uniform(size=(50, 2))
        binner = FeatureBinner(max_bins=8)
        builder = HistogramTreeBuilder(binner.fit_transform(x), binner)
        with pytest.raises(ValueError, match="1-D"):
            builder.build(np.zeros(10), np.ones(10))

    def test_deeper_trees_fit_better(self, rng):
        x = rng.uniform(size=(600, 3))
        y = (
            np.where(x[:, 0] > 0.5, 2.0, 0.0)
            + np.where(x[:, 1] > 0.3, 1.0, 0.0)
            + np.where(x[:, 2] > 0.7, 0.5, 0.0)
        )
        small = build_tree(x, y, max_leaves=2, min_data_in_leaf=5)
        large = build_tree(x, y, max_leaves=16, min_data_in_leaf=5)
        mse_small = np.mean((small.predict(x) - y) ** 2)
        mse_large = np.mean((large.predict(x) - y) ** 2)
        assert mse_large < mse_small


class TestTreeGrowthConfig:
    def test_invalid_max_leaves(self):
        with pytest.raises(ValueError):
            TreeGrowthConfig(max_leaves=1)

    def test_invalid_min_data(self):
        with pytest.raises(ValueError):
            TreeGrowthConfig(min_data_in_leaf=0)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            TreeGrowthConfig(lambda_l2=-1.0)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TreeGrowthConfig(max_depth=0)
