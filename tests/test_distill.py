"""Tests for repro.distill (teacher, augmentation, distiller, student)."""

import numpy as np
import pytest

from repro.distill import (
    DistillationConfig,
    DistilledStudent,
    Distiller,
    SplitPointAugmenter,
    TreeEnsembleTeacher,
)
from repro.distill.distiller import make_distillation_provider
from repro.datasets.normalization import ZNormalizer
from repro.exceptions import DatasetError
from repro.metrics import mean_ndcg
from repro.nn import FeedForwardNetwork


class TestTeacher:
    def test_scores_match_ensemble(self, small_forest, tiny_dataset):
        teacher = TreeEnsembleTeacher(small_forest)
        x = tiny_dataset.features[:30]
        np.testing.assert_allclose(teacher.score(x), small_forest.predict(x))

    def test_split_points_delegated(self, small_forest):
        teacher = TreeEnsembleTeacher(small_forest)
        points = teacher.split_points()
        assert len(points) == small_forest.n_features

    def test_describe(self, small_forest):
        assert "trees" in TreeEnsembleTeacher(small_forest).describe()


class TestAugmenter:
    def test_midpoints_strictly_inside_cells(self):
        splits = [np.asarray([0.5])]
        aug = SplitPointAugmenter(splits, [0.0], [1.0])
        # Lists: {0, 0.5, 1} -> midpoints {0.25, 0.75}.
        np.testing.assert_allclose(aug.midpoints[0], [0.25, 0.75])

    def test_feature_without_splits(self):
        aug = SplitPointAugmenter([np.empty(0)], [2.0], [4.0])
        np.testing.assert_allclose(aug.midpoints[0], [3.0])

    def test_constant_feature(self):
        aug = SplitPointAugmenter([np.empty(0)], [5.0], [5.0])
        np.testing.assert_allclose(aug.midpoints[0], [5.0])

    def test_samples_only_midpoints(self):
        aug = SplitPointAugmenter([np.asarray([0.5])], [0.0], [1.0])
        samples = aug.sample(200, seed=0)
        assert set(np.unique(samples[:, 0])) <= {0.25, 0.75}

    def test_sample_shape(self, small_forest, tiny_splits):
        train = tiny_splits[0]
        teacher = TreeEnsembleTeacher(small_forest)
        aug = SplitPointAugmenter.from_teacher(teacher, train)
        samples = aug.sample(50, seed=1)
        assert samples.shape == (50, train.n_features)

    def test_samples_within_feature_ranges(self, small_forest, tiny_splits):
        train = tiny_splits[0]
        aug = SplitPointAugmenter.from_teacher(
            TreeEnsembleTeacher(small_forest), train
        )
        samples = aug.sample(100, seed=2)
        lo, hi = train.feature_ranges()
        assert (samples >= lo - 1e-9).all()
        assert (samples <= hi + 1e-9).all()

    def test_sample_deterministic(self, small_forest, tiny_splits):
        aug = SplitPointAugmenter.from_teacher(
            TreeEnsembleTeacher(small_forest), tiny_splits[0]
        )
        np.testing.assert_array_equal(aug.sample(10, seed=3), aug.sample(10, seed=3))

    def test_invalid_n(self):
        aug = SplitPointAugmenter([np.empty(0)], [0.0], [1.0])
        with pytest.raises(ValueError):
            aug.sample(0)

    def test_misaligned_inputs(self):
        with pytest.raises(DatasetError):
            SplitPointAugmenter([np.empty(0)], [0.0, 1.0], [1.0])


class TestProvider:
    def test_batch_composition(self, small_forest, tiny_splits):
        train = tiny_splits[0]
        normalizer = ZNormalizer().fit(train.features)
        provider = make_distillation_provider(
            TreeEnsembleTeacher(small_forest), train, normalizer,
            augmented_fraction=0.5,
        )
        rng = np.random.default_rng(0)
        xb, yb = provider(rng, 64)
        assert xb.shape == (64, train.n_features)
        assert yb.shape == (64,)

    def test_pure_real_fraction(self, small_forest, tiny_splits):
        train = tiny_splits[0]
        normalizer = ZNormalizer().fit(train.features)
        provider = make_distillation_provider(
            TreeEnsembleTeacher(small_forest), train, normalizer,
            augmented_fraction=0.0,
        )
        xb, yb = provider(np.random.default_rng(0), 32)
        assert len(xb) == 32

    def test_targets_are_teacher_scores(self, small_forest, tiny_splits):
        # With augmented_fraction=1, every target must equal the teacher's
        # score of the (denormalized) batch row.
        train = tiny_splits[0]
        normalizer = ZNormalizer().fit(train.features)
        provider = make_distillation_provider(
            TreeEnsembleTeacher(small_forest), train, normalizer,
            augmented_fraction=1.0,
        )
        xb, yb = provider(np.random.default_rng(0), 16)
        raw = normalizer.inverse_transform(xb)
        np.testing.assert_allclose(yb, small_forest.predict(raw), atol=1e-8)


class TestDistiller:
    def test_student_approximates_teacher(self, small_student, small_forest, tiny_splits):
        _, _, test = tiny_splits
        student_scores = small_student.predict(test.features)
        teacher_scores = small_forest.predict(test.features)
        corr = np.corrcoef(student_scores, teacher_scores)[0, 1]
        # At this miniature training scale the approximation is partial;
        # a strong positive correlation is the reproducible property.
        assert corr > 0.5

    def test_student_ranks_above_random(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        ndcg_student = mean_ndcg(test, small_student.predict(test.features), 10)
        random_scores = np.random.default_rng(0).normal(size=test.n_docs)
        assert ndcg_student > mean_ndcg(test, random_scores, 10)

    def test_architecture_honoured(self, small_student):
        assert small_student.hidden == (64, 32)
        assert small_student.describe() == "64x32"

    def test_teacher_description_recorded(self, small_student):
        assert "trees" in small_student.teacher_description

    def test_distill_with_prebuilt_network(self, small_forest, tiny_splits):
        train = tiny_splits[0]
        net = FeedForwardNetwork(train.n_features, (16,), seed=0)
        config = DistillationConfig(epochs=2, steps_per_epoch=3)
        student = Distiller(config, seed=0).distill(
            small_forest, train, hidden=None, network=net
        )
        assert student.network is net

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DistillationConfig(augmented_fraction=1.5)


class TestStudent:
    def test_prediction_normalizes_internally(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        raw = test.features[:10]
        expected = small_student.network.predict(
            small_student.normalizer.transform(raw)
        )
        np.testing.assert_allclose(small_student.predict(raw), expected)

    def test_clone_independent(self, small_student, tiny_splits):
        clone = small_student.clone()
        x = tiny_splits[2].features[:5]
        np.testing.assert_allclose(clone.predict(x), small_student.predict(x))
        clone.network.first_layer.weight.data += 1.0
        assert not np.allclose(clone.predict(x), small_student.predict(x))

    def test_sparsity_reporting(self, small_student):
        assert small_student.first_layer_sparsity() == pytest.approx(0.0, abs=0.01)
        assert len(small_student.layer_sparsities()) == 3

    def test_unfitted_normalizer_rejected(self):
        net = FeedForwardNetwork(4, (2,), seed=0)
        with pytest.raises(ValueError):
            DistilledStudent(net, ZNormalizer())

    def test_save_load_roundtrip(self, small_student, tiny_splits, tmp_path):
        _, _, test = tiny_splits
        path = tmp_path / "student.json"
        small_student.save(path)
        loaded = DistilledStudent.load(path)
        # Raw-feature scoring must match exactly: the normalizer's
        # training statistics travel with the network.
        np.testing.assert_allclose(
            loaded.predict(test.features[:30]),
            small_student.predict(test.features[:30]),
            atol=1e-12,
        )
        assert loaded.teacher_description == small_student.teacher_description

    def test_save_load_preserves_masks(self, small_student, tmp_path):
        from repro.pruning import LevelPruner

        pruned = small_student.clone()
        LevelPruner(0.9).apply(pruned.network.first_layer)
        path = tmp_path / "pruned.json"
        pruned.save(path)
        loaded = DistilledStudent.load(path)
        assert loaded.first_layer_sparsity() == pytest.approx(
            pruned.first_layer_sparsity()
        )
