"""Tests for repro.reporting."""

import pytest

from repro.reporting import (
    evaluate_zoo,
    render_report,
    significance_matrix,
    write_report,
)


class TestEvaluateZoo:
    def test_defaults_cover_families(self, mini_pipeline):
        models = evaluate_zoo(
            mini_pipeline,
            forests=[mini_pipeline.zoo.small_forest],
            networks=[mini_pipeline.zoo.low_latency[2]],
        )
        assert {m.family for m in models} == {"forest", "neural"}

    def test_duplicate_architectures_skipped(self, mini_pipeline):
        spec = mini_pipeline.zoo.low_latency[2]
        models = evaluate_zoo(
            mini_pipeline,
            forests=[],
            networks=[spec, spec],
        )
        assert len(models) == 1


class TestSignificanceMatrix:
    def test_pairs_and_fields(self, mini_pipeline):
        models = evaluate_zoo(
            mini_pipeline,
            forests=[mini_pipeline.zoo.small_forest, mini_pipeline.zoo.mid_forest],
            networks=[],
        )
        rows = significance_matrix(models)
        assert len(rows) == 1
        a, b, diff, p, sig = rows[0]
        assert 0.0 < p <= 1.0
        assert sig in ("yes", "no")


class TestRenderReport:
    @pytest.fixture(scope="class")
    def report(self, mini_pipeline):
        return render_report(mini_pipeline, include_significance=True)

    def test_sections_present(self, report):
        assert "# Experiment report" in report
        assert "## Models" in report
        assert "## Pareto summary" in report
        assert "## Significance" in report

    def test_dataset_summaries(self, report):
        assert "queries" in report
        assert "teacher:" in report

    def test_write_report(self, mini_pipeline, tmp_path):
        path = tmp_path / "report.md"
        text = write_report(
            mini_pipeline, path, include_significance=False
        )
        assert path.read_text() == text
        assert "## Significance" not in text
