"""Admission layer: token buckets, shed reasons, per-tenant state."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.runtime import AsyncConfig, TenantConfig
from repro.serving import (
    AdmissionController,
    RequestShedError,
    TokenBucket,
)
from repro.serving.tenancy import SHED_REASONS


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 4, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 1 token at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 2, clock=clock)
        clock.advance(60.0)
        assert bucket.available() == pytest.approx(2.0)

    def test_clock_regression_is_harmless(self):
        clock = FakeClock(10.0)
        bucket = TokenBucket(1.0, 1, clock=clock)
        assert bucket.try_acquire()
        clock.now = 5.0  # clock goes backwards: no negative refill
        assert not bucket.try_acquire()

    def test_invalid_parameters(self):
        with pytest.raises(ReproError, match="rate_per_s"):
            TokenBucket(0.0, 1)
        with pytest.raises(ReproError, match="burst"):
            TokenBucket(1.0, 0)


class TestAdmissionController:
    def _controller(self, *tenants, clock=None, **async_kwargs):
        config = AsyncConfig(tenants=tuple(tenants), **async_kwargs)
        return AdmissionController(config, clock=clock or FakeClock())

    def test_default_tenant_is_unlimited(self):
        controller = self._controller()
        for _ in range(500):
            state, reason = controller.admit("anything", queue_depth=0)
            assert reason is None
        assert state.admitted == 500

    def test_rate_limit_reason_and_refill(self):
        clock = FakeClock()
        controller = self._controller(
            TenantConfig(name="t", rate_per_s=1.0, burst=2), clock=clock
        )
        reasons = [
            controller.admit("t", queue_depth=0, now=clock.now)[1]
            for _ in range(3)
        ]
        assert reasons == [None, None, "rate-limit"]
        clock.advance(1.0)
        _, reason = controller.admit("t", queue_depth=0, now=clock.now)
        assert reason is None

    def test_global_queue_depth_shed(self):
        controller = self._controller(max_queue_depth=4)
        _, reason = controller.admit("t", queue_depth=4)
        assert reason == "queue-depth"
        _, reason = controller.admit("t", queue_depth=3)
        assert reason is None

    def test_tenant_queue_depth_shed_and_release(self):
        controller = self._controller(
            TenantConfig(name="t", max_queue_depth=2)
        )
        assert controller.admit("t", queue_depth=0)[1] is None
        assert controller.admit("t", queue_depth=0)[1] is None
        assert (
            controller.admit("t", queue_depth=0)[1] == "tenant-queue-depth"
        )
        controller.release("t")
        assert controller.admit("t", queue_depth=0)[1] is None

    def test_queue_check_precedes_bucket(self):
        # A full queue must not burn bucket tokens.
        clock = FakeClock()
        controller = self._controller(
            TenantConfig(name="t", rate_per_s=1.0, burst=1),
            clock=clock,
            max_queue_depth=1,
        )
        _, reason = controller.admit("t", queue_depth=1, now=clock.now)
        assert reason == "queue-depth"
        _, reason = controller.admit("t", queue_depth=0, now=clock.now)
        assert reason is None  # the token survived the queue-depth shed

    def test_all_reasons_are_declared(self):
        assert set(SHED_REASONS) == {
            "rate-limit", "queue-depth", "tenant-queue-depth",
        }

    def test_summary_orders_declared_first(self):
        controller = self._controller(
            TenantConfig(name="z"), TenantConfig(name="a")
        )
        controller.admit("implicit", queue_depth=0)
        names = [row["tenant"] for row in controller.summary()]
        assert names == ["z", "a", "implicit"]

    def test_effective_slo_prefers_tenant_deadline(self):
        controller = self._controller(
            TenantConfig(name="strict", deadline_us=100.0)
        )
        assert controller.state("strict").effective_slo_us(5000.0) == 100.0
        assert controller.state("other").effective_slo_us(5000.0) == 5000.0
        assert controller.state("other").effective_slo_us(None) is None


class TestRequestShedError:
    def test_carries_tenant_and_reason(self):
        err = RequestShedError("web", "rate-limit")
        assert err.tenant == "web"
        assert err.reason == "rate-limit"
        assert isinstance(err, ReproError)
        assert "web" in str(err) and "rate-limit" in str(err)
