"""Tests for repro.nn.network (FeedForwardNetwork)."""

import numpy as np
import pytest

from repro.exceptions import ArchitectureError
from repro.nn import Dropout, FeedForwardNetwork, Linear, MseLoss, ReLU6


class TestArchitecture:
    def test_layer_stack_structure(self):
        net = FeedForwardNetwork(10, (8, 4), seed=0)
        kinds = [type(l) for l in net.layers]
        assert kinds == [Linear, ReLU6, Linear, ReLU6, Linear]

    def test_dropout_only_after_first_layer(self):
        net = FeedForwardNetwork(10, (8, 4, 2), dropout=0.1, seed=0)
        kinds = [type(l) for l in net.layers]
        assert kinds.count(Dropout) == 1
        assert kinds[1] is Dropout  # right after the first Linear

    def test_scoring_head_width_one(self):
        net = FeedForwardNetwork(10, (8, 4), seed=0)
        assert net.linears[-1].out_features == 1
        assert net.n_layers == 3

    def test_describe(self):
        assert FeedForwardNetwork(10, (400, 200), seed=0).describe() == "400x200"

    def test_n_parameters(self):
        net = FeedForwardNetwork(3, (2,), seed=0)
        # 3*2 + 2 (first) + 2*1 + 1 (head).
        assert net.n_parameters() == 6 + 2 + 2 + 1

    def test_invalid_architectures(self):
        with pytest.raises(ArchitectureError):
            FeedForwardNetwork(0, (4,))
        with pytest.raises(ArchitectureError):
            FeedForwardNetwork(4, ())
        with pytest.raises(ArchitectureError):
            FeedForwardNetwork(4, (4, 0))

    def test_flops_per_doc(self):
        net = FeedForwardNetwork(3, (2,), seed=0)
        # 3*2 weights + 2*1 head weights, 2 FLOPs each.
        assert net.flops_per_doc() == 2 * (6 + 2)

    def test_flops_per_doc_sparse_count(self):
        net = FeedForwardNetwork(4, (4,), seed=0)
        dense_flops = net.flops_per_doc()
        net.first_layer.set_mask(np.eye(4))
        sparse_flops = net.flops_per_doc(count_sparse_as_zero=True)
        assert sparse_flops == dense_flops - 2 * (16 - 4)

    def test_deterministic_init(self, rng):
        a = FeedForwardNetwork(5, (4,), seed=9)
        b = FeedForwardNetwork(5, (4,), seed=9)
        np.testing.assert_array_equal(
            a.linears[0].weight.data, b.linears[0].weight.data
        )


class TestForwardBackward:
    def test_forward_shape(self, rng):
        net = FeedForwardNetwork(6, (4, 3), seed=0)
        assert net.forward(rng.normal(size=(10, 6))).shape == (10,)

    def test_full_gradient_check(self, rng):
        net = FeedForwardNetwork(4, (5, 3), seed=2)
        x = rng.normal(size=(6, 4))
        y = rng.normal(size=6)
        loss = MseLoss()
        net.zero_grad()
        loss.forward(net.forward(x, training=True), y)
        net.backward(loss.backward())
        eps = 1e-6
        for linear in net.linears:
            i, j = 0, 0
            analytic = linear.weight.grad[i, j]
            linear.weight.data[i, j] += eps
            up = loss.forward(net.forward(x), y)
            linear.weight.data[i, j] -= 2 * eps
            down = loss.forward(net.forward(x), y)
            linear.weight.data[i, j] += eps
            assert analytic == pytest.approx((up - down) / (2 * eps), rel=1e-4, abs=1e-10)

    def test_predict_batched_consistent(self, rng):
        net = FeedForwardNetwork(6, (8,), seed=0)
        x = rng.normal(size=(50, 6))
        np.testing.assert_allclose(
            net.predict(x, batch_size=7), net.predict(x, batch_size=100)
        )

    def test_predict_matches_forward_bitwise(self, rng):
        """The chunk buffer must not perturb scores: whole-batch predict
        runs the same BLAS calls as forward, so equality is exact."""
        net = FeedForwardNetwork(6, (8, 4), seed=1)
        x = rng.normal(size=(33, 6))
        np.testing.assert_array_equal(net.predict(x), net.forward(x))

    def test_predict_reuses_chunk_buffer(self, rng):
        net = FeedForwardNetwork(6, (8,), seed=0)
        x = rng.normal(size=(40, 6))
        net.predict(x, batch_size=16)
        buffer = net._chunk_buffer
        assert buffer.shape == (16, 6)
        net.predict(x, batch_size=16)
        assert net._chunk_buffer is buffer  # reused, not reallocated

    def test_predict_allocation_stable_across_calls(self, rng):
        """Steady-state predicts must not grow the heap (the chunk
        buffer is allocated once, on the warm-up call)."""
        import gc
        import tracemalloc

        net = FeedForwardNetwork(12, (16, 8), seed=2)
        x = rng.normal(size=(256, 12))
        out_bytes = x.shape[0] * 8  # the returned score vector
        net.predict(x, batch_size=64)  # warm up buffer + BLAS state
        gc.collect()
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(50):
            net.predict(x, batch_size=64)
        gc.collect()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grew = sum(
            s.size_diff
            for s in after.compare_to(before, "lineno")
            if s.size_diff > 0
        )
        # Tolerate tracemalloc's own bookkeeping, but 50 predicts must
        # not have allocated 50 chunk buffers (~50 * 64*12*8 bytes).
        assert grew < 10 * out_bytes, f"predict leaked {grew} bytes"

    def test_predict_rejects_non_float64_forward(self, rng):
        net = FeedForwardNetwork(4, (3,), seed=0)

        class _CastingLayer:
            def forward(self, x, training=False):
                return x.astype(np.float32)

        net.layers.append(_CastingLayer())
        with pytest.raises(TypeError, match="float32"):
            net.predict(rng.normal(size=(5, 4)))

    def test_predict_validates_features(self, rng):
        net = FeedForwardNetwork(6, (8,), seed=0)
        with pytest.raises(ValueError, match="expected 6"):
            net.predict(rng.normal(size=(5, 7)))

    def test_zero_grad(self, rng):
        net = FeedForwardNetwork(4, (3,), seed=0)
        loss = MseLoss()
        loss.forward(net.forward(rng.normal(size=(5, 4)), training=True), np.zeros(5))
        net.backward(loss.backward())
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())


class TestState:
    def test_get_set_weights_roundtrip(self, rng):
        a = FeedForwardNetwork(5, (4, 3), seed=1)
        b = FeedForwardNetwork(5, (4, 3), seed=2)
        b.set_weights(a.get_weights())
        x = rng.normal(size=(8, 5))
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_set_weights_shape_mismatch(self):
        a = FeedForwardNetwork(5, (4,), seed=0)
        b = FeedForwardNetwork(5, (4, 3), seed=0)
        with pytest.raises(ValueError):
            a.set_weights(b.get_weights())

    def test_clone_independent(self, rng):
        net = FeedForwardNetwork(5, (4,), seed=1)
        twin = net.clone()
        x = rng.normal(size=(6, 5))
        np.testing.assert_allclose(net.predict(x), twin.predict(x))
        twin.linears[0].weight.data += 1.0
        assert not np.allclose(net.predict(x), twin.predict(x))

    def test_clone_copies_masks(self):
        net = FeedForwardNetwork(5, (4,), seed=1)
        net.first_layer.set_mask(np.zeros((4, 5)))
        twin = net.clone()
        assert twin.first_layer.sparsity() == 1.0
        twin.first_layer.mask[0, 0] = 1.0
        assert net.first_layer.mask[0, 0] == 0.0

    def test_save_load_roundtrip(self, tmp_path, rng):
        net = FeedForwardNetwork(5, (6, 3), dropout=0.1, seed=3)
        net.first_layer.set_mask(
            (np.abs(net.first_layer.weight.data) > 0.1).astype(float)
        )
        path = tmp_path / "net.json"
        net.save(path)
        loaded = FeedForwardNetwork.load(path)
        x = rng.normal(size=(10, 5))
        np.testing.assert_allclose(loaded.predict(x), net.predict(x))
        assert loaded.first_layer.sparsity() == net.first_layer.sparsity()

    def test_layer_sparsities(self):
        net = FeedForwardNetwork(5, (4,), seed=0)
        assert net.layer_sparsities() == [0.0, 0.0]
        net.first_layer.set_mask(np.zeros((4, 5)))
        assert net.layer_sparsities()[0] == 1.0
