"""Tests for the command-line interface (end-to-end over files)."""

import numpy as np
import pytest

from repro.cli import _parse_hidden, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A tiny dataset + trained forest shared across CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    data = root / "data.txt"
    forest = root / "forest.json"
    assert (
        main(
            [
                "generate", str(data),
                "--queries", "60", "--docs", "12", "--seed", "1",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "train-forest", str(data), str(forest),
                "--trees", "10", "--leaves", "8", "--seed", "1",
            ]
        )
        == 0
    )
    return {"root": root, "data": data, "forest": forest}


class TestParseHidden:
    def test_valid(self):
        assert _parse_hidden("400x200x100") == (400, 200, 100)

    def test_case_insensitive(self):
        assert _parse_hidden("50X25") == (50, 25)

    def test_invalid_text(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_hidden("400-200")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_hidden("400x0")


class TestGenerate(object):
    def test_writes_svmlight(self, workspace):
        text = workspace["data"].read_text()
        assert "qid:" in text
        assert len(text.splitlines()) > 400

    def test_istella_flavour(self, tmp_path):
        out = tmp_path / "ist.txt"
        assert (
            main(
                [
                    "generate", str(out), "--flavour", "istella",
                    "--queries", "20", "--docs", "10",
                ]
            )
            == 0
        )
        first = out.read_text().splitlines()[0]
        assert "220:" in first  # istella schema has 220 features


class TestTrainForest:
    def test_forest_loadable(self, workspace):
        from repro.forest import TreeEnsemble

        forest = TreeEnsemble.load(workspace["forest"])
        assert forest.n_trees == 10


class TestDistillAndPrune:
    def test_full_pipeline(self, workspace, capsys):
        root = workspace["root"]
        student_path = root / "student.json"
        code = main(
            [
                "distill", str(workspace["data"]), str(workspace["forest"]),
                str(student_path),
                "--architecture", "32x16", "--epochs", "4", "--seed", "1",
            ]
        )
        assert code == 0
        assert "distilled 32x16" in capsys.readouterr().out

        pruned_path = root / "pruned.json"
        code = main(
            [
                "prune", str(workspace["data"]), str(workspace["forest"]),
                str(student_path), str(pruned_path),
                "--epochs-prune", "2", "--epochs-finetune", "1", "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sparsity" in out

        from repro.distill import DistilledStudent

        pruned = DistilledStudent.load(pruned_path)
        assert pruned.first_layer_sparsity() > 0.5

    def test_score_with_network(self, workspace, tmp_path, capsys):
        student_path = workspace["root"] / "student.json"
        if not student_path.exists():
            pytest.skip("distill test did not run first")
        scores_path = tmp_path / "scores.txt"
        code = main(
            [
                "score", str(workspace["data"]), str(scores_path),
                "--network", str(student_path),
            ]
        )
        assert code == 0
        scores = np.loadtxt(scores_path)
        assert len(scores) > 400


class TestScore:
    def test_score_with_forest(self, workspace, tmp_path, capsys):
        scores_path = tmp_path / "scores.txt"
        code = main(
            [
                "score", str(workspace["data"]), str(scores_path),
                "--forest", str(workspace["forest"]),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NDCG@10" in out
        assert scores_path.exists()


class TestVerify:
    def test_quick_verify_passes(self, capsys):
        assert main(["verify", "--quick"]) == 0
        assert "Calibration verification" in capsys.readouterr().out


class TestPredictTime:
    def test_inline_calibration(self, capsys):
        code = main(
            [
                "predict-time", "400x200x200x100",
                "--compare-forest", "878", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dense" in out and "pruned forecast" in out
        assert "QuickScorer 878x64" in out

    def test_with_saved_predictor(self, tmp_path, capsys):
        pred_path = tmp_path / "pred.json"
        assert main(["calibrate", str(pred_path)]) == 0
        code = main(
            [
                "predict-time", "100x50x50x25",
                "--predictor", str(pred_path),
            ]
        )
        assert code == 0
        assert "us/doc" in capsys.readouterr().out


class TestThroughput:
    def test_sweep_reports_rates_and_hit_ratio(self, capsys):
        code = main(
            [
                "throughput",
                "--queries", "6", "--docs", "24",
                "--workers", "1", "2",
                "--shard-rows", "0", "32",
                "--cache-entries", "4096",
                "--repeats", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "docs/sec" in out
        assert "Parallel scoring" in out
        assert "hit ratio" in out
        # One speedup figure per workers x shard-rows combination.
        import re

        assert len(re.findall(r"\d+\.\d\dx", out)) == 4

    def test_quickscorer_backend_sweep(self, capsys):
        code = main(
            [
                "throughput",
                "--backend", "quickscorer",
                "--queries", "4", "--docs", "16",
                "--workers", "2",
                "--shard-rows", "0",
                "--repeats", "1",
            ]
        )
        assert code == 0
        assert "quickscorer" in capsys.readouterr().out


class TestCascade:
    def test_probe_pipeline_and_funnel(self, tmp_path, capsys):
        out_json = tmp_path / "cascade.json"
        code = main(
            [
                "cascade",
                "--queries", "6", "--docs", "16",
                "--keep", "0.4", "0.5",
                "--budget-us", "30",
                "--repeats", "1",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Cascade funnel" in out
        assert "budget early-exits" in out
        assert "expected amortized cost" in out
        for system in ("cascade", "sparse-network", "quickscorer"):
            assert system in out

        import json

        payload = json.loads(out_json.read_text())
        assert payload["pipeline"]["budget_us_per_query"] == 30.0
        assert [s["model"] for s in payload["pipeline"]["stages"]] == [
            "sparse-network", "dense-network", "quickscorer",
        ]
        assert {row["system"] for row in payload["rows"]} == {
            "cascade", "sparse-network", "dense-network", "quickscorer",
        }
        for row in payload["rows"]:
            assert row["us_per_query"] > 0
            assert 0.0 <= row["ndcg10"] <= 1.0

    def test_unbudgeted_runs_all_stages(self, capsys):
        code = main(
            ["cascade", "--queries", "4", "--docs", "12", "--repeats", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 budget early-exits" in out


class TestServe:
    def test_concurrent_probe_requests_bit_identical(self, capsys):
        code = main(
            [
                "serve",
                "--backend", "dense-network",
                "--queries", "6", "--docs", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical to sequential scoring" in out
        assert "Serving front-end" in out


class TestLoadtest:
    def test_closed_loop_with_tenants(self, tmp_path, capsys):
        out_json = tmp_path / "load.json"
        code = main(
            [
                "loadtest",
                "--mode", "closed",
                "--workers", "4", "--requests-per-worker", "5",
                "--distinct-queries", "8", "--docs", "4",
                "--tenant", "web=3::0",
                "--tenant", "limited=1:1",
                "--slo-us", "60000",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Load run (closed): 20 offered" in out
        assert "limited" in out and "web" in out
        import json

        payload = json.loads(out_json.read_text())
        assert payload["load"]["offered"] == 20
        assert any(
            s["name"].startswith("serving.")
            for s in payload["metrics"]["series"]
        )

    def test_spec_file_round_trip(self, tmp_path, capsys):
        import json

        from repro.serving import LoadSpec

        spec_path = tmp_path / "spec.json"
        spec = LoadSpec(
            mode="closed", workers=2, requests_per_worker=3,
            n_queries=4, docs_per_query=4,
        )
        spec_path.write_text(json.dumps(spec.to_dict()))
        code = main(["loadtest", "--spec", str(spec_path)])
        assert code == 0
        assert "6 offered" in capsys.readouterr().out

    def test_tenant_parse_rejects_garbage(self):
        import argparse

        from repro.cli import _parse_tenant

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_tenant("no-equals-sign")
        name, weight, cfg = _parse_tenant("sla=2::0:8000")
        assert (name, weight) == ("sla", 2.0)
        assert cfg.priority == 0 and cfg.deadline_us == 8000.0
        assert cfg.rate_per_s is None

    def test_swap_at_records_timeline(self, tmp_path, capsys):
        import json

        out_json = tmp_path / "load.json"
        code = main(
            [
                "loadtest",
                "--mode", "closed",
                "--workers", "4", "--requests-per-worker", "5",
                "--distinct-queries", "8", "--docs", "4",
                "--swap-at", "0.5",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "swap at" in out and "forced" in out
        assert "served by version" in out
        payload = json.loads(out_json.read_text())
        events = payload["load"]["swap_events"]
        assert len(events) == 1 and events[0]["action"] == "forced"
        by_version = payload["load"]["served_by_version"]
        assert set(by_version) == {"v1", "v2"}
        assert sum(by_version.values()) == payload["load"]["served"]
        assert payload["load"]["errors"] == 0


class TestSwap:
    def test_gate_promotes_and_rolls_back(self, tmp_path, capsys):
        import json

        out_json = tmp_path / "lifecycle.json"
        code = main(
            [
                "swap",
                "--queries", "6", "--docs", "8", "--requests", "8",
                "--shadow-min", "6", "--regressed",
                "--json", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gate PASSED" in out and "gate TRIPPED" in out
        assert "Model lifecycle" in out
        # the regressed candidate must not end up live
        assert out.rstrip().count("active version: candidate") == 2
        payload = json.loads(out_json.read_text())
        kinds = [e["kind"] for e in payload["swap_events"]]
        assert "promoted" in kinds and "rolled-back" in kinds


class TestTrace:
    def test_probe_load_renders_slowest_timelines(self, capsys):
        code = main(
            [
                "trace",
                "--workers", "4", "--requests-per-worker", "4",
                "--docs", "6", "--slowest", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace " in out and "status=ok" in out
        # A full timeline renders every post-enqueue stage.
        for stage in ("queue-wait", "coalesce", "kernel", "respond"):
            assert stage in out
        assert "2 trace(s) shown" in out

    def test_flight_file_and_prefix_match(self, tmp_path, capsys):
        import json

        records = [
            {
                "trace_id": "aaaa000011112222",
                "tenant": "web",
                "status": "ok",
                "n_docs": 4,
                "batch_id": 1,
                "wall_us": 1500.0,
                "attrs": {},
                "stages": [
                    {
                        "name": "kernel",
                        "start_us": 0.0,
                        "duration_us": 1500.0,
                        "attrs": {"backend": "dense-network"},
                    }
                ],
            },
            {
                "trace_id": "bbbb000011112222",
                "tenant": "batch",
                "status": "shed",
                "n_docs": 4,
                "wall_us": 10.0,
                "attrs": {"reason": "rate-limit"},
                "stages": [],
            },
        ]
        path = tmp_path / "flight.json"
        path.write_text(json.dumps({"records": records}))
        code = main(["trace", "aaaa", "--flight", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "aaaa000011112222" in out and "bbbb" not in out
        assert "backend=dense-network" in out

    def test_flight_file_trace_sample_form(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(
                {
                    "trace_sample": {
                        "trace_id": "cafecafecafecafe",
                        "tenant": "web",
                        "status": "ok",
                        "wall_us": 900.0,
                        "stages": [],
                    }
                }
            )
        )
        assert main(["trace", "--flight", str(path)]) == 0
        assert "cafecafecafecafe" in capsys.readouterr().out

    def test_unmatched_prefix_fails(self, tmp_path, capsys):
        import json

        path = tmp_path / "flight.json"
        path.write_text(json.dumps([]))
        assert main(["trace", "zzzz", "--flight", str(path)]) == 1


class TestTop:
    def test_renders_frames_and_final_report(self, capsys):
        code = main(
            [
                "top",
                "--duration", "0.3", "--rate", "150",
                "--docs", "6", "--interval", "0.05", "--frames", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top [final]" in out
        assert "Serving front-end" in out
        assert "SLO burn" in out
        assert "Flight recorder" in out
        assert "Load run (open)" in out
