"""Tests for repro.forest.gbdt and repro.forest.lambdamart."""

import numpy as np
import pytest

from repro.datasets import make_msn30k_like, train_validation_test_split
from repro.exceptions import TrainingError
from repro.forest import (
    GradientBoostingConfig,
    GradientBoostingRegressor,
    L2Objective,
    LambdaMartRanker,
)
from repro.forest.lambdamart import ndcg_at_10
from repro.metrics import mean_ndcg


@pytest.fixture(scope="module")
def small_data():
    data = make_msn30k_like(n_queries=80, docs_per_query=15, seed=21)
    return train_validation_test_split(data, seed=21)


class TestConfig:
    def test_defaults_valid(self):
        GradientBoostingConfig()

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            GradientBoostingConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingConfig(learning_rate=1.5)

    def test_invalid_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingConfig(subsample=0.0)

    def test_invalid_trees(self):
        with pytest.raises(ValueError):
            GradientBoostingConfig(n_trees=0)

    def test_growth_config_mirrors_fields(self):
        cfg = GradientBoostingConfig(max_leaves=33, lambda_l2=2.5)
        growth = cfg.growth_config()
        assert growth.max_leaves == 33
        assert growth.lambda_l2 == 2.5


class TestRegression:
    def test_l2_boosting_reduces_mse(self, small_data):
        train, _, _ = small_data
        config = GradientBoostingConfig(
            n_trees=15, max_leaves=8, learning_rate=0.3, min_data_in_leaf=5
        )
        booster = GradientBoostingRegressor(config, L2Objective(), seed=0)
        model = booster.fit(train)
        pred = model.predict(train.features)
        base_mse = np.mean((train.labels - train.labels.mean()) ** 2)
        mse = np.mean((pred - train.labels) ** 2)
        assert mse < 0.7 * base_mse

    def test_base_score_is_target_mean(self, small_data):
        train, _, _ = small_data
        config = GradientBoostingConfig(n_trees=2, max_leaves=4)
        model = GradientBoostingRegressor(config, L2Objective(), seed=0).fit(train)
        assert model.base_score == pytest.approx(train.labels.mean())

    def test_bagging_still_learns(self, small_data):
        train, _, _ = small_data
        config = GradientBoostingConfig(
            n_trees=15, max_leaves=8, learning_rate=0.3, subsample=0.5,
            min_data_in_leaf=5,
        )
        model = GradientBoostingRegressor(config, L2Objective(), seed=0).fit(train)
        pred = model.predict(train.features)
        assert np.corrcoef(pred, train.labels)[0, 1] > 0.5


class TestLambdaMart:
    def test_beats_random_on_test(self, small_data):
        train, vali, test = small_data
        config = GradientBoostingConfig(
            n_trees=15, max_leaves=16, learning_rate=0.15, min_data_in_leaf=5
        )
        forest = LambdaMartRanker(config, seed=0).fit(train, vali)
        scores = forest.predict(test.features)
        random_scores = np.random.default_rng(0).normal(size=test.n_docs)
        assert mean_ndcg(test, scores, 10) > mean_ndcg(test, random_scores, 10) + 0.1

    def test_more_trees_help_on_train(self, small_data):
        train, _, _ = small_data
        config = GradientBoostingConfig(
            n_trees=20, max_leaves=16, learning_rate=0.15, min_data_in_leaf=5
        )
        forest = LambdaMartRanker(config, seed=0).fit(train)
        few = forest.truncate(5)
        ndcg_few = mean_ndcg(train, few.predict(train.features), 10)
        ndcg_all = mean_ndcg(train, forest.predict(train.features), 10)
        assert ndcg_all >= ndcg_few

    def test_history_recorded(self, small_data):
        train, vali, _ = small_data
        config = GradientBoostingConfig(
            n_trees=12, max_leaves=8, eval_every=4, min_data_in_leaf=5
        )
        ranker = LambdaMartRanker(config, seed=0)
        ranker.fit(train, vali)
        history = ranker.history_
        assert history.iterations == [4, 8, 12]
        assert len(history.valid_metric) == 3
        assert history.best_iteration in history.iterations

    def test_early_stopping_truncates(self, small_data):
        train, vali, _ = small_data
        config = GradientBoostingConfig(
            n_trees=40,
            max_leaves=4,
            learning_rate=0.8,  # aggressive: overfits quickly
            eval_every=2,
            early_stopping_rounds=2,
            min_data_in_leaf=5,
        )
        ranker = LambdaMartRanker(config, seed=0)
        forest = ranker.fit(train, vali)
        if ranker.history_.stopped_early:
            assert forest.n_trees == ranker.history_.best_iteration
            assert forest.n_trees < 40

    def test_early_stopping_requires_validation(self, small_data):
        train, _, _ = small_data
        config = GradientBoostingConfig(n_trees=5, early_stopping_rounds=1)
        with pytest.raises(TrainingError, match="validation"):
            LambdaMartRanker(config, seed=0).fit(train)

    def test_warm_start_contains_prefix(self, small_data):
        train, vali, _ = small_data
        config = GradientBoostingConfig(
            n_trees=6, max_leaves=8, learning_rate=0.2, min_data_in_leaf=5
        )
        first = LambdaMartRanker(config, seed=0).fit(train)
        extended = LambdaMartRanker(config, seed=1).fit(
            train, init_ensemble=first, name="extended"
        )
        assert extended.n_trees == 12
        assert extended.trees[:6] == first.trees
        # Truncating back to the prefix reproduces the original scores.
        x = train.features[:30]
        np.testing.assert_allclose(
            extended.truncate(6).predict(x), first.predict(x)
        )

    def test_warm_start_improves_training_fit(self, small_data):
        train, _, _ = small_data
        from repro.forest.lambdamart import ndcg_at_10

        config = GradientBoostingConfig(
            n_trees=8, max_leaves=8, learning_rate=0.2, min_data_in_leaf=5
        )
        first = LambdaMartRanker(config, seed=0).fit(train)
        extended = LambdaMartRanker(config, seed=1).fit(
            train, init_ensemble=first
        )
        base = ndcg_at_10(train, first.predict(train.features))
        more = ndcg_at_10(train, extended.predict(train.features))
        assert more >= base - 1e-9

    def test_warm_start_feature_mismatch(self, small_data):
        train, _, _ = small_data
        from repro.datasets import make_istella_s_like

        other = make_istella_s_like(n_queries=20, docs_per_query=10)
        config = GradientBoostingConfig(n_trees=3, max_leaves=4)
        foreign = LambdaMartRanker(config, seed=0).fit(other)
        with pytest.raises(TrainingError, match="feature count"):
            LambdaMartRanker(config, seed=0).fit(train, init_ensemble=foreign)

    def test_ndcg_at_10_metric(self, small_data):
        train, _, _ = small_data
        value = ndcg_at_10(train, np.zeros(train.n_docs))
        assert 0.0 <= value <= 1.0
