"""Smoke tests for the example scripts.

Only the analytic examples run in the test suite (the training ones take
minutes and are exercised by the benchmark harness's equivalent paths);
each must execute cleanly and print its headline sections.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestAnalyticExamples:
    @pytest.mark.slow
    def test_latency_budget_design(self):
        out = run_example("latency_budget_design.py")
        assert "Top candidates within" in out
        assert "Tree ensembles fitting the same budget" in out

    @pytest.mark.slow
    def test_resilient_service(self):
        out = run_example("resilient_service.py")
        assert "Degradation ladder" in out
        assert "queries answered : 18 / 18" in out
        assert "trip, cool down, probe, recover" in out
        assert "open -> half-open" in out

    @pytest.mark.slow
    def test_parallel_scoring(self):
        out = run_example("parallel_scoring.py")
        assert "Deterministic shard planning" in out
        assert "every score bit-identical" in out
        assert "cache hit ratio" in out
        assert "Parallel scoring" in out

    @pytest.mark.slow
    def test_matmul_anatomy(self):
        out = run_example("matmul_anatomy.py")
        assert "Goto algorithm" in out
        assert "Calibrating Eq. 5" in out
        assert "MKL baseline" in out


class TestExampleSources:
    """All examples exist, are importable-quality Python and documented."""

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "latency_budget_design.py",
            "matmul_anatomy.py",
            "scoring_service.py",
            "resilient_service.py",
            "parallel_scoring.py",
            "forest_tuning.py",
            "experiment_report.py",
        ],
    )
    def test_compiles_and_documented(self, name):
        import ast

        source = (EXAMPLES / name).read_text()
        tree = ast.parse(source)
        assert ast.get_docstring(tree), f"{name} lacks a module docstring"
        assert "def main()" in source
