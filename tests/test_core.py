"""Tests for repro.core (config, zoo, pipeline)."""

import numpy as np
import pytest

from repro.core import (
    EfficientRankingPipeline,
    ExperimentScale,
    ISTELLA_HYPERPARAMS,
    ISTELLA_ZOO,
    MSN30K_HYPERPARAMS,
    MSN30K_ZOO,
)
from repro.core.config import FULL_SCALE


@pytest.fixture(scope="module")
def pipeline(mini_pipeline):
    """The shared miniature MSN30K pipeline (see conftest)."""
    return mini_pipeline


class TestHyperParams:
    def test_table9_msn30k(self):
        h = MSN30K_HYPERPARAMS
        assert (h.training_epochs, h.pruning_epochs, h.finetune_epochs) == (
            100, 80, 20,
        )
        assert h.gamma == 0.1
        assert h.gamma_steps == (50, 80)
        assert h.dropout == 0.0

    def test_table9_istella(self):
        h = ISTELLA_HYPERPARAMS
        assert (h.training_epochs, h.pruning_epochs, h.finetune_epochs) == (
            250, 60, 190,
        )
        assert h.gamma == 0.5
        assert h.gamma_steps == (90, 130, 180)
        assert h.dropout == 0.1

    def test_as_row_format(self):
        row = MSN30K_HYPERPARAMS.as_row()
        assert row[0] == "MSN30K"
        assert row[-1] == "-"  # no dropout


class TestScale:
    def test_scaled_trees_floor(self):
        scale = ExperimentScale(tree_scale=0.001)
        assert scale.scaled_trees(878) == 10

    def test_full_scale_identity(self):
        assert FULL_SCALE.scaled_trees(878) == 878

    def test_configs_constructed(self):
        scale = ExperimentScale()
        assert scale.forest_config(64, 100).max_leaves == 64
        assert scale.distill_config(MSN30K_HYPERPARAMS).dropout == 0.0
        assert scale.distill_config(ISTELLA_HYPERPARAMS).dropout == 0.1
        assert scale.prune_config(MSN30K_HYPERPARAMS).lr_gamma == 0.1


class TestZoo:
    def test_msn30k_named_models(self):
        assert MSN30K_ZOO.large_forest.n_trees == 878
        assert MSN30K_ZOO.teacher.n_leaves == 256
        assert MSN30K_ZOO.large_net.hidden == (1000, 500, 500, 100)
        assert MSN30K_ZOO.flagship.hidden == (400, 200, 200, 100)

    def test_istella_teacher(self):
        assert ISTELLA_ZOO.teacher.n_trees == 2500
        assert ISTELLA_ZOO.n_features == 220

    def test_high_quality_architectures_match_table10(self):
        hidden = [s.hidden for s in MSN30K_ZOO.high_quality]
        assert (300, 200, 100) in hidden
        assert (200, 50, 50, 25) in hidden

    def test_low_latency_architectures_match_table11(self):
        hidden = [s.hidden for s in ISTELLA_ZOO.low_latency]
        assert (200, 75, 75, 25) in hidden

    def test_all_networks_deduplicated(self):
        nets = MSN30K_ZOO.all_networks()
        assert len({n.hidden for n in nets}) == len(nets)

    def test_deployment_forests_order(self):
        large, mid, small = MSN30K_ZOO.deployment_forests()
        assert large.n_trees > mid.n_trees > small.n_trees


class TestPipeline:
    def test_forest_truncation_shares_base(self, pipeline):
        large = pipeline.forest(pipeline.zoo.large_forest)
        small = pipeline.forest(pipeline.zoo.small_forest)
        assert small.n_trees <= large.n_trees
        assert small.trees[0] is large.trees[0]

    def test_forest_cached(self, pipeline):
        a = pipeline.forest(pipeline.zoo.small_forest)
        b = pipeline.forest(pipeline.zoo.small_forest)
        assert a is b

    def test_teacher_uses_256_leaves_config(self, pipeline):
        teacher = pipeline.teacher()
        assert teacher.max_leaves > 16  # grown beyond the 16-leaf toys

    def test_teacher_is_validation_best(self, pipeline):
        # Section 6.1: distill from the most effective ensemble; the
        # pipeline picks by validation NDCG@10 among the candidates.
        from repro.metrics import mean_ndcg

        teacher = pipeline.teacher()
        vali = pipeline.vali
        teacher_ndcg = mean_ndcg(vali, teacher.predict(vali.features), 10)
        for spec in (pipeline.zoo.teacher, pipeline.zoo.large_forest):
            candidate = pipeline.forest(spec)
            candidate_ndcg = mean_ndcg(
                vali, candidate.predict(vali.features), 10
            )
            assert teacher_ndcg >= candidate_ndcg - 1e-12

    def test_teacher_cached(self, pipeline):
        assert pipeline.teacher() is pipeline.teacher()

    def test_width_scaled_lr_for_wide_nets(self, pipeline):
        from repro.distill import DistillationConfig

        base = DistillationConfig(learning_rate=0.004)
        narrow = pipeline._width_scaled(base, 300)
        wide = pipeline._width_scaled(base, 1000)
        assert narrow.learning_rate == pytest.approx(0.004)
        assert wide.learning_rate == pytest.approx(0.004 * 500 / 1000)

    def test_evaluate_forest_fields(self, pipeline):
        result = pipeline.evaluate_forest(pipeline.zoo.small_forest)
        assert result.family == "forest"
        assert 0.0 <= result.ndcg10 <= 1.0
        assert result.time_us > 0
        assert len(result.per_query_ndcg10) == pipeline.test.n_queries

    def test_forest_time_uses_paper_shape(self, pipeline):
        result = pipeline.evaluate_forest(pipeline.zoo.large_forest)
        expected = pipeline.qs_cost.scoring_time_us(878, 64)
        assert result.time_us == pytest.approx(expected)

    def test_student_cached_and_evaluated(self, pipeline):
        spec = pipeline.zoo.low_latency[2]  # smallest architecture
        a = pipeline.student(spec)
        b = pipeline.student(spec)
        assert a is b
        result = pipeline.evaluate_network(spec)
        assert result.family == "neural"
        assert result.time_us > 0

    def test_pruned_student_sparsity(self, pipeline):
        spec = pipeline.zoo.low_latency[2]
        pruned = pipeline.pruned_student(spec)
        assert pruned.first_layer_sparsity() > 0.8

    def test_pruned_time_below_dense(self, pipeline):
        spec = pipeline.zoo.low_latency[2]
        dense = pipeline.evaluate_network(spec, pruned=False)
        sparse = pipeline.evaluate_network(spec, pruned=True)
        assert sparse.time_us < dense.time_us

    def test_frontier_points_families(self, pipeline):
        points = pipeline.frontier_points(
            [pipeline.zoo.small_forest],
            [pipeline.zoo.low_latency[2]],
        )
        families = {p.family for p in points}
        assert families == {"forest", "neural"}

    def test_quality_metrics_consistent(self, pipeline):
        scores = np.zeros(pipeline.test.n_docs)
        q = pipeline.quality(scores)
        assert 0 <= q["ndcg10"] <= 1
        assert 0 <= q["map"] <= 1

    def test_as_row_shape(self, pipeline):
        result = pipeline.evaluate_forest(pipeline.zoo.small_forest)
        row = result.as_row()
        assert len(row) == 5
        assert row[0] == "Small Forest"
