"""Property-based tests for the neural-network stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import FeedForwardNetwork, MseLoss


def finite_difference_grad(net, loss, x, y, param, i, j, eps=1e-6):
    param.data.flat[i * param.data.shape[1] + j] += eps
    up = loss.forward(net.forward(x), y)
    param.data.flat[i * param.data.shape[1] + j] -= 2 * eps
    down = loss.forward(net.forward(x), y)
    param.data.flat[i * param.data.shape[1] + j] += eps
    return (up - down) / (2 * eps)


class TestGradientProperty:
    @given(
        seed=st.integers(0, 10_000),
        input_dim=st.integers(2, 8),
        width=st.integers(2, 10),
        depth=st.integers(1, 3),
        batch=st.integers(1, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_backprop_matches_finite_differences(
        self, seed, input_dim, width, depth, batch
    ):
        rng = np.random.default_rng(seed)
        net = FeedForwardNetwork(input_dim, (width,) * depth, seed=seed)
        x = rng.normal(size=(batch, input_dim))
        y = rng.normal(size=batch)
        loss = MseLoss()
        net.zero_grad()
        loss.forward(net.forward(x, training=True), y)
        net.backward(loss.backward())
        # Check a random weight of a random layer.
        layer = net.linears[int(rng.integers(0, len(net.linears)))]
        i = int(rng.integers(0, layer.weight.shape[0]))
        j = int(rng.integers(0, layer.weight.shape[1]))
        numeric = finite_difference_grad(net, loss, x, y, layer.weight, i, j)
        analytic = layer.weight.grad[i, j]
        assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_forward_deterministic_at_inference(self, seed):
        rng = np.random.default_rng(seed)
        net = FeedForwardNetwork(5, (8, 4), dropout=0.5, seed=seed)
        x = rng.normal(size=(6, 5))
        np.testing.assert_array_equal(net.predict(x), net.predict(x))

    @given(
        seed=st.integers(0, 10_000),
        scale=st.floats(0.1, 100.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_relu6_bounds_hidden_outputs(self, seed, scale):
        # Whatever the input magnitude, post-activation values are in
        # [0, 6], so scores stay bounded by the head's weights.
        rng = np.random.default_rng(seed)
        net = FeedForwardNetwork(4, (6,), seed=seed)
        x = rng.normal(size=(10, 4)) * scale
        head = net.linears[-1]
        bound = 6.0 * np.abs(head.weight.data).sum() + abs(head.bias.data[0])
        scores = net.predict(x)
        assert np.abs(scores).max() <= bound + 1e-9


class TestMaskProperty:
    @given(seed=st.integers(0, 10_000), sparsity=st.floats(0.1, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_masked_weights_stay_zero_under_training_step(
        self, seed, sparsity
    ):
        from repro.nn import Adam
        from repro.pruning import LevelPruner

        rng = np.random.default_rng(seed)
        net = FeedForwardNetwork(6, (10,), seed=seed)
        LevelPruner(float(sparsity)).apply(net.first_layer)
        dead = net.first_layer.mask == 0.0
        opt = Adam(net.parameters(), lr=0.01)
        loss = MseLoss()
        for _ in range(3):
            x = rng.normal(size=(8, 6))
            y = rng.normal(size=8)
            net.zero_grad()
            loss.forward(net.forward(x, training=True), y)
            net.backward(loss.backward())
            opt.step()
            net.apply_masks()
        np.testing.assert_array_equal(net.first_layer.weight.data[dead], 0.0)
