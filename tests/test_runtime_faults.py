"""Tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.runtime import (
    FaultPolicy,
    FaultSpec,
    FaultyScorer,
    InjectedFaultError,
    ManualClock,
    StubScorer,
    with_faults,
)


class TestManualClock:
    def test_starts_at_zero(self):
        clock = ManualClock()
        assert clock() == 0.0
        assert clock.now == 0.0

    def test_sleep_advances(self):
        clock = ManualClock()
        clock.sleep(1.5)
        clock.advance(0.5)
        assert clock() == 2.0

    def test_negative_sleep_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.sleep(-0.1)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="explode")

    def test_stall_requires_positive_duration(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultSpec(kind="stall", stall_seconds=0.0)


class TestFaultPolicy:
    def test_never(self):
        policy = FaultPolicy.never()
        assert all(policy.fault_for(i) is None for i in range(10))

    def test_always(self):
        policy = FaultPolicy.always("error")
        assert all(policy.fault_for(i) is not None for i in range(10))

    def test_first(self):
        policy = FaultPolicy.first(3)
        fired = [policy.fault_for(i) is not None for i in range(6)]
        assert fired == [True, True, True, False, False, False]

    def test_every(self):
        # every(3) faults calls 2, 5, 8, ... (every 3rd call, 0-indexed)
        policy = FaultPolicy.every(3)
        fired = [policy.fault_for(i) is not None for i in range(9)]
        assert fired == [False, False, True, False, False, True, False, False, True]

    def test_at_calls(self):
        policy = FaultPolicy.at_calls([0, 4])
        fired = [policy.fault_for(i) is not None for i in range(6)]
        assert fired == [True, False, False, False, True, False]

    def test_schedule_is_a_pure_function_of_index(self):
        policy = FaultPolicy.every(2)
        assert [policy.fault_for(i) for i in range(8)] == [
            policy.fault_for(i) for i in range(8)
        ]


class TestFaultyScorer:
    def scorer(self, policy, clock=None):
        inner = StubScorer(weights=[1.0, 2.0])
        sleep = clock.sleep if clock is not None else None
        if sleep is None:
            return with_faults(inner, policy)
        return with_faults(inner, policy, sleep=sleep)

    def test_preserves_scorer_protocol(self):
        from repro.runtime.base import is_scorer

        faulty = self.scorer(FaultPolicy.never())
        assert is_scorer(faulty)
        assert isinstance(faulty, FaultyScorer)
        assert faulty.backend == "stub"
        assert faulty.input_dim == 2
        assert faulty.predicted_us_per_doc == pytest.approx(0.01)

    def test_no_fault_is_bit_identical(self):
        inner = StubScorer(weights=[1.0, 2.0])
        faulty = with_faults(StubScorer(weights=[1.0, 2.0]), FaultPolicy.never())
        x = np.array([[0.5, 0.25], [2.0, -1.0]])
        np.testing.assert_array_equal(faulty.score(x), inner.score(x))

    def test_error_fault_raises_on_schedule(self):
        faulty = self.scorer(FaultPolicy.every(2))
        x = np.ones((2, 2))
        faulty.score(x)  # call 0: clean
        with pytest.raises(InjectedFaultError):
            faulty.score(x)  # call 1: fault
        faulty.score(x)  # call 2: clean
        assert faulty.calls == 3
        assert faulty.faults_injected == 1

    def test_nan_fault_poisons_scores(self):
        faulty = self.scorer(FaultPolicy.always("nan"))
        scores = faulty.score(np.ones((3, 2)))
        assert scores.shape == (3,)
        assert np.all(np.isnan(scores))

    def test_stall_fault_consumes_clock_then_serves(self):
        clock = ManualClock()
        faulty = self.scorer(
            FaultPolicy.always("stall", stall_seconds=0.2), clock=clock
        )
        scores = faulty.score(np.ones((2, 2)))
        assert clock.now == pytest.approx(0.2)
        np.testing.assert_array_equal(
            scores, StubScorer(weights=[1.0, 2.0]).score(np.ones((2, 2)))
        )

    def test_with_faults_rejects_non_scorer(self):
        with pytest.raises(TypeError):
            with_faults(object(), FaultPolicy.never())
