"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_floats_formatted(self):
        out = format_table(["x"], [[0.123456]], floatfmt=".2f")
        assert "0.12" in out

    def test_ints_not_float_formatted(self):
        out = format_table(["x"], [[5]])
        assert "5" in out and "5.0000" not in out

    def test_none_renders_dash(self):
        out = format_table(["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_wrong_row_width_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_column_width_grows_with_content(self):
        out = format_table(["h"], [["wide-content"]])
        separator = out.splitlines()[1]
        assert len(separator) == len("wide-content")
