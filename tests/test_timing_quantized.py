"""Tests for repro.timing.quantized (int8 timing model)."""

import pytest

from repro.timing.quantized import QuantizedTimingModel


@pytest.fixture(scope="module")
def model(predictor_cache):
    return QuantizedTimingModel(predictor_cache)


class TestSpeedups:
    def test_dense_speedup_in_realistic_band(self, model):
        assert 2.0 <= model.dense_speedup <= 4.0

    def test_sparse_speedup_above_dense(self, model):
        assert model.sparse_speedup >= model.dense_speedup

    def test_ceiling_at_full_efficiency(self, predictor_cache):
        ideal = QuantizedTimingModel(
            predictor_cache, efficiency=1.0, sparse_efficiency=1.0
        )
        assert ideal.dense_speedup == pytest.approx(4.0)


class TestTimes:
    def test_int8_dense_faster_than_fp32(self, model, predictor_cache):
        fp32 = predictor_cache.predict(136, (400, 200, 200, 100))
        int8 = model.dense_time_us(136, (400, 200, 200, 100))
        assert int8 < fp32.dense_total_us_per_doc
        assert int8 == pytest.approx(
            fp32.dense_total_us_per_doc / model.dense_speedup
        )

    def test_hybrid_faster_than_fp32_hybrid(self, model, predictor_cache):
        fp32 = predictor_cache.predict(
            136, (400, 200, 200, 100), first_layer_sparsity=0.987
        )
        int8 = model.hybrid_time_us(
            136, (400, 200, 200, 100), first_layer_sparsity=0.987
        )
        assert int8 < fp32.hybrid_total_us_per_doc

    def test_hybrid_requires_sparsity(self, model):
        with pytest.raises(ValueError, match="sparsity"):
            model.hybrid_time_us(136, (100, 50))

    def test_quantized_flagship_beats_every_paper_forest(self, model):
        # int8 + pruning compounds: the flagship drops well under the
        # 300-tree forest's 3.0 us.
        from repro.quickscorer import QuickScorerCostModel

        int8 = model.hybrid_time_us(
            136, (400, 200, 200, 100), first_layer_sparsity=0.987
        )
        assert int8 < 0.5 * QuickScorerCostModel().scoring_time_us(300, 64)


class TestValidation:
    def test_invalid_efficiency(self, predictor_cache):
        with pytest.raises(ValueError):
            QuantizedTimingModel(predictor_cache, efficiency=0.0)
        with pytest.raises(ValueError):
            QuantizedTimingModel(predictor_cache, efficiency=1.5)

    def test_invalid_lane_ratio(self, predictor_cache):
        with pytest.raises(ValueError):
            QuantizedTimingModel(predictor_cache, lane_ratio=1.0)
