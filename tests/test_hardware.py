"""Tests for repro.hardware (CPU spec and cache models)."""

import pytest

from repro.hardware import CacheHierarchy, CacheLevel, CacheSimulator, CpuSpec, I9_9900K


class TestCacheLevel:
    def test_lines(self):
        level = CacheLevel("L1", 32 * 1024, 64, 1.0)
        assert level.lines == 512

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 0, 64, 1.0)

    def test_negative_latency(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 1024, 64, -1.0)


class TestCpuSpec:
    def test_default_matches_testbed(self):
        assert I9_9900K.simd_lanes_f32 == 8  # AVX2 fp32
        assert I9_9900K.l1.size_bytes == 32 * 1024
        assert I9_9900K.l3.size_bytes == 16 * 1024 * 1024

    def test_theoretical_peak_formula(self):
        cpu = CpuSpec(frequency_ghz=4.0, simd_bits=256, fma_ports=2)
        assert cpu.theoretical_peak_gflops == pytest.approx(8 * 2 * 2 * 4.0)

    def test_calibrated_peak_below_theoretical(self):
        assert I9_9900K.peak_gflops_calibrated < I9_9900K.theoretical_peak_gflops

    def test_cycle_ns(self):
        cpu = CpuSpec(frequency_ghz=2.0)
        assert cpu.cycle_ns == pytest.approx(0.5)

    def test_invalid_simd(self):
        with pytest.raises(ValueError):
            CpuSpec(simd_bits=100)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            CpuSpec(frequency_ghz=0)


class TestCacheHierarchy:
    def test_residency_levels(self):
        h = CacheHierarchy()
        assert h.residency(1024) == "L1d"
        assert h.residency(100 * 1024) == "L2"
        assert h.residency(1024 * 1024) == "L3"
        assert h.residency(100 * 1024 * 1024) == "RAM"

    def test_latency_grows_with_footprint(self):
        h = CacheHierarchy()
        lat = [
            h.access_latency_ns(1024),
            h.access_latency_ns(100 * 1024),
            h.access_latency_ns(1024 * 1024),
            h.access_latency_ns(100 * 1024 * 1024),
        ]
        assert lat == sorted(lat)

    def test_fits_named_level(self):
        h = CacheHierarchy()
        assert h.fits(16 * 1024, "L1d")
        assert not h.fits(64 * 1024, "L1d")

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            CacheHierarchy().fits(1, "L9")

    def test_negative_footprint_raises(self):
        with pytest.raises(ValueError):
            CacheHierarchy().residency(-1)


class TestCacheSimulator:
    def test_first_access_misses(self):
        sim = CacheSimulator(1024)
        assert sim.access(0) == sim.miss_latency_ns
        assert sim.misses == 1

    def test_second_access_hits(self):
        sim = CacheSimulator(1024)
        sim.access(0)
        assert sim.access(0) == sim.hit_latency_ns
        assert sim.hits == 1

    def test_same_line_shares(self):
        sim = CacheSimulator(1024, line_bytes=64)
        sim.access(0)
        assert sim.access(32) == sim.hit_latency_ns

    def test_lru_eviction(self):
        sim = CacheSimulator(128, line_bytes=64)  # 2 lines
        sim.access(0)
        sim.access(64)
        sim.access(128)  # evicts line 0
        assert not sim.contains(0)
        assert sim.contains(64)

    def test_access_refreshes_lru(self):
        sim = CacheSimulator(128, line_bytes=64)
        sim.access(0)
        sim.access(64)
        sim.access(0)  # refresh line 0
        sim.access(128)  # should evict 64, not 0
        assert sim.contains(0)
        assert not sim.contains(64)

    def test_multi_line_access(self):
        sim = CacheSimulator(1024, line_bytes=64)
        sim.access(0, size_bytes=256)  # four lines
        assert sim.misses == 4

    def test_hit_rate(self):
        sim = CacheSimulator(1024)
        sim.access(0)
        sim.access(0)
        assert sim.hit_rate == pytest.approx(0.5)

    def test_reset(self):
        sim = CacheSimulator(1024)
        sim.access(0)
        sim.reset()
        assert sim.hits == 0 and sim.misses == 0
        assert not sim.contains(0)

    def test_capacity_must_hold_a_line(self):
        with pytest.raises(ValueError):
            CacheSimulator(32, line_bytes=64)

    def test_invalid_access_size(self):
        sim = CacheSimulator(1024)
        with pytest.raises(ValueError):
            sim.access(0, size_bytes=0)
