"""Tests for repro.matmul.sparse (LIBXSMM-style executor) and mkl."""

import numpy as np
import pytest

from repro.matmul import CsrMatrix, MklSdmmCostModel, SparseGemmExecutor
from repro.matmul.sparse import SparseTimingModel


def random_pruned(m, k, sparsity, seed=0):
    rng = np.random.default_rng(seed)
    nnz = int(round((1 - sparsity) * m * k))
    dense = np.zeros(m * k)
    dense[rng.choice(m * k, nnz, replace=False)] = rng.normal(size=nnz)
    return CsrMatrix.from_dense(dense.reshape(m, k))


@pytest.fixture(scope="module")
def executor():
    return SparseGemmExecutor()


class TestCorrectness:
    def test_matches_dense_product(self, executor, rng):
        a = random_pruned(50, 30, 0.9, seed=1)
        b = rng.normal(size=(30, 16))
        c, _ = executor.multiply(a, b)
        np.testing.assert_allclose(c, a.to_dense() @ b, atol=1e-12)

    def test_dense_input_converted(self, executor, rng):
        dense = rng.normal(size=(8, 6)) * (rng.random((8, 6)) < 0.3)
        b = rng.normal(size=(6, 8))
        c, _ = executor.multiply(dense, b)
        np.testing.assert_allclose(c, dense @ b, atol=1e-12)

    def test_empty_rows_stay_zero(self, executor, rng):
        dense = np.zeros((5, 4))
        dense[2, 1] = 3.0
        b = rng.normal(size=(4, 8))
        c, _ = executor.multiply(CsrMatrix.from_dense(dense), b)
        np.testing.assert_allclose(c[0], 0.0)
        np.testing.assert_allclose(c[2], 3.0 * b[1])

    def test_shape_mismatch(self, executor, rng):
        a = random_pruned(4, 5, 0.5)
        with pytest.raises(ValueError, match="expected"):
            executor.multiply(a, rng.normal(size=(4, 2)))

    def test_jit_split_preserves_result(self, rng):
        timing = SparseTimingModel(jit_max_nnz=20)
        ex = SparseGemmExecutor(timing=timing)
        a = random_pruned(30, 20, 0.8, seed=2)  # nnz = 120 > 20
        b = rng.normal(size=(20, 8))
        c, report = ex.multiply(a, b)
        assert report.n_kernel_calls > 1
        np.testing.assert_allclose(c, a.to_dense() @ b, atol=1e-12)


class TestEventCounts:
    def test_structural_counts(self, executor, rng):
        a = random_pruned(40, 30, 0.9, seed=3)
        _, report = executor.multiply(a, rng.normal(size=(30, 16)))
        assert report.nnz == a.nnz
        assert report.active_rows == a.n_active_rows
        assert report.active_cols == a.n_active_cols

    def test_each_active_column_misses_once_when_cached(self, executor, rng):
        # B fits the cache: first touch per column misses, rest hit.
        a = random_pruned(40, 30, 0.9, seed=4)
        _, report = executor.multiply(a, rng.normal(size=(30, 16)))
        assert report.b_row_misses == a.n_active_cols
        assert report.b_row_hits == a.nnz - a.n_active_cols

    def test_cache_breaks_at_large_batch(self, rng):
        # N = 512 on k = 500: B far exceeds the simulated L2, so rows are
        # evicted and re-missed -- the paper's N >= 128 divergence.
        ex = SparseGemmExecutor()
        a = random_pruned(500, 500, 0.99, seed=5)
        _, small = ex.multiply(a, rng.normal(size=(500, 32)), compute=False)
        _, large = ex.multiply(a, rng.normal(size=(500, 512)), compute=False)
        assert small.b_row_misses == a.n_active_cols
        assert large.b_row_misses > a.n_active_cols

    def test_n_vectors_simd_padding(self, executor, rng):
        a = random_pruned(10, 10, 0.5, seed=6)
        _, report = executor.multiply(a, rng.normal(size=(10, 9)), compute=False)
        assert report.n_vectors == 2  # ceil(9 / 8)

    def test_useful_flops(self, executor, rng):
        a = random_pruned(10, 10, 0.5, seed=7)
        _, report = executor.multiply(a, rng.normal(size=(10, 8)), compute=False)
        assert report.useful_flops == 2 * a.nnz * 8


class TestSimulatedTime:
    def test_time_scales_with_batch(self, executor):
        a = random_pruned(400, 136, 0.99, seed=8)
        t16 = executor.measure_time_us(a, 16)
        t32 = executor.measure_time_us(a, 32)
        t64 = executor.measure_time_us(a, 64)
        # Per-vector costs dominate: near-linear N scaling (Table 4).
        assert t32 / t16 == pytest.approx(2.0, rel=0.35)
        assert t64 / t32 == pytest.approx(2.0, rel=0.25)

    def test_time_grows_with_density(self, executor):
        sparse = random_pruned(400, 136, 0.995, seed=9)
        denser = random_pruned(400, 136, 0.97, seed=9)
        assert executor.measure_time_us(sparse, 64) < executor.measure_time_us(
            denser, 64
        )

    def test_table4_anchor_magnitude(self, executor):
        # Table 4: 400x136 at 99.5% sparsity, N = 64 -> ~0.9 us.
        a = random_pruned(400, 136, 0.995, seed=10)
        t = executor.measure_time_us(a, 64)
        assert 0.6 <= t <= 1.4

    def test_report_time_is_sum_of_parts(self, executor, rng):
        a = random_pruned(20, 20, 0.8, seed=11)
        _, r = executor.multiply(a, rng.normal(size=(20, 8)), compute=False)
        assert r.time_ns == pytest.approx(
            r.time_c_ns + r.time_a_ns + r.time_b_ns + r.overhead_ns
        )


class TestMklBaseline:
    def test_slower_than_libxsmm_on_paper_shapes(self, executor):
        # Table 3: LIBXSMM wins on small, very sparse, asymmetric shapes.
        mkl = MklSdmmCostModel()
        for m, sparsity in [(400, 0.996), (300, 0.985), (100, 0.989), (50, 0.968)]:
            a = random_pruned(m, 136, sparsity, seed=m)
            t_xsmm = executor.measure_time_us(a, 64)
            t_mkl = mkl.time_for(a, 64)
            assert t_mkl > 1.5 * t_xsmm

    def test_fixed_overhead_dominates_tiny(self):
        mkl = MklSdmmCostModel()
        t = mkl.time_us(m=10, k=10, n=8, nnz=1)
        assert t >= mkl.call_overhead_ns / 1000.0

    def test_invalid_inputs(self):
        mkl = MklSdmmCostModel()
        with pytest.raises(ValueError):
            mkl.time_us(m=0, k=1, n=1, nnz=0)
