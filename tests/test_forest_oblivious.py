"""Tests for repro.forest.oblivious (oblivious trees)."""

import numpy as np
import pytest

from repro.datasets import make_msn30k_like, train_validation_test_split
from repro.forest import (
    FeatureBinner,
    GradientBoostingConfig,
    GradientBoostingRegressor,
    L2Objective,
    LambdaMartRanker,
)
from repro.forest.oblivious import ObliviousGrowthConfig, ObliviousTreeBuilder
from repro.metrics import mean_ndcg
from repro.quickscorer import QuickScorer


def build_oblivious(x, targets, **kwargs):
    binner = FeatureBinner(max_bins=32)
    binned = binner.fit_transform(x)
    builder = ObliviousTreeBuilder(
        binned, binner, ObliviousGrowthConfig(**kwargs)
    )
    g = -np.asarray(targets, dtype=np.float64)
    return builder.build(g, np.ones(len(targets)))


class TestObliviousStructure:
    def test_level_uniform_tests(self, rng):
        x = rng.uniform(size=(400, 4))
        y = np.where(x[:, 0] > 0.5, 2.0, 0.0) + np.where(x[:, 1] > 0.3, 1.0, 0.0)
        tree = build_oblivious(x, y, depth=3, lambda_l2=0.1)
        # Every internal node of a level shares (feature, threshold).
        levels: dict[int, set] = {}
        depth_of = {0: 0}
        for node in tree.internal_nodes():
            d = depth_of[int(node)]
            for child in (int(tree.left[node]), int(tree.right[node])):
                depth_of[child] = d + 1
            levels.setdefault(d, set()).add(
                (int(tree.feature[node]), float(tree.threshold[node]))
            )
        for tests in levels.values():
            assert len(tests) == 1

    def test_complete_binary_shape(self, rng):
        x = rng.uniform(size=(300, 3))
        y = x[:, 0] + np.where(x[:, 1] > 0.5, 1.0, 0.0)
        tree = build_oblivious(x, y, depth=3, lambda_l2=0.1)
        assert tree.n_leaves == 8
        assert tree.n_nodes == 15
        assert tree.depth() == 3

    def test_learns_two_level_signal(self, rng):
        x = rng.uniform(size=(600, 3))
        y = 2.0 * (x[:, 0] > 0.5) + 1.0 * (x[:, 1] > 0.4)
        tree = build_oblivious(x, y, depth=2, lambda_l2=0.01)
        features_used = {int(tree.feature[n]) for n in tree.internal_nodes()}
        assert features_used == {0, 1}
        assert np.corrcoef(tree.predict(x), y)[0, 1] > 0.98

    def test_no_signal_gives_stump(self, rng):
        x = rng.uniform(size=(100, 2))
        tree = build_oblivious(x, np.zeros(100), depth=4)
        assert tree.n_leaves == 1

    def test_empty_leaves_are_zero(self, rng):
        # Depth exceeding the data's resolution leaves some leaf cells
        # unpopulated; they must carry value 0 (no contribution).
        x = rng.uniform(size=(40, 2))
        y = np.where(x[:, 0] > 0.5, 1.0, -1.0)
        tree = build_oblivious(x, y, depth=5, lambda_l2=0.0, min_data_in_leaf=1)
        assert np.isfinite(tree.value).all()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ObliviousGrowthConfig(depth=0)
        with pytest.raises(ValueError):
            ObliviousGrowthConfig(lambda_l2=-1)


class TestObliviousBoosting:
    @pytest.fixture(scope="class")
    def splits(self):
        data = make_msn30k_like(n_queries=70, docs_per_query=15, seed=23)
        return train_validation_test_split(data, seed=23)

    def test_l2_boosting_learns(self, splits):
        train, _, _ = splits
        config = GradientBoostingConfig(
            n_trees=10,
            tree_type="oblivious",
            oblivious_depth=4,
            learning_rate=0.3,
        )
        model = GradientBoostingRegressor(config, L2Objective(), seed=0).fit(train)
        pred = model.predict(train.features)
        base = np.mean((train.labels - train.labels.mean()) ** 2)
        assert np.mean((pred - train.labels) ** 2) < 0.8 * base

    def test_lambdamart_oblivious_beats_random(self, splits):
        train, vali, test = splits
        config = GradientBoostingConfig(
            n_trees=12,
            tree_type="oblivious",
            oblivious_depth=4,
            learning_rate=0.2,
            min_data_in_leaf=2,
        )
        forest = LambdaMartRanker(config, seed=0).fit(train, vali)
        scores = forest.predict(test.features)
        rand = np.random.default_rng(0).normal(size=test.n_docs)
        assert mean_ndcg(test, scores, 10) > mean_ndcg(test, rand, 10) + 0.05

    def test_quickscorer_exact_on_oblivious_forest(self, splits):
        train, _, test = splits
        config = GradientBoostingConfig(
            n_trees=6, tree_type="oblivious", oblivious_depth=4,
            learning_rate=0.3, min_data_in_leaf=2,
        )
        forest = LambdaMartRanker(config, seed=0).fit(train)
        qs = QuickScorer(forest)
        x = test.features[:100]
        np.testing.assert_allclose(qs.score(x), forest.predict(x), atol=1e-10)

    def test_invalid_tree_type(self):
        with pytest.raises(ValueError, match="tree_type"):
            GradientBoostingConfig(tree_type="magic")
