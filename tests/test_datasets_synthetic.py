"""Tests for repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticConfig,
    generate_synthetic,
    make_istella_s_like,
    make_msn30k_like,
)


class TestSyntheticConfig:
    def test_defaults_valid(self):
        SyntheticConfig()

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SyntheticConfig(label_fractions=(0.5, 0.4))

    def test_informative_bounded_by_features(self):
        with pytest.raises(ValueError, match="n_informative"):
            SyntheticConfig(n_features=10, n_informative=20)

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_queries=0)


class TestGeneration:
    def test_deterministic_by_seed(self):
        cfg = SyntheticConfig(n_queries=30, docs_per_query=10)
        a = generate_synthetic(cfg, seed=5)
        b = generate_synthetic(cfg, seed=5)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        cfg = SyntheticConfig(n_queries=30, docs_per_query=10)
        a = generate_synthetic(cfg, seed=1)
        b = generate_synthetic(cfg, seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_query_count(self):
        ds = generate_synthetic(SyntheticConfig(n_queries=25, docs_per_query=12))
        assert ds.n_queries == 25

    def test_min_docs_per_query(self):
        ds = generate_synthetic(SyntheticConfig(n_queries=50, docs_per_query=8))
        assert ds.query_sizes().min() >= 8

    def test_label_marginals_match_target(self):
        cfg = SyntheticConfig(n_queries=300, docs_per_query=30)
        ds = generate_synthetic(cfg, seed=0)
        fractions = np.bincount(ds.labels, minlength=5) / ds.n_docs
        np.testing.assert_allclose(fractions, cfg.label_fractions, atol=0.02)

    def test_five_grades_present(self):
        ds = generate_synthetic(
            SyntheticConfig(n_queries=300, docs_per_query=30), seed=0
        )
        assert set(np.unique(ds.labels)) == {0, 1, 2, 3, 4}

    def test_labels_learnable_from_features(self):
        # Grade means of an informative feature's stump signal must vary:
        # the latent function is feature-driven, not noise.
        ds = generate_synthetic(
            SyntheticConfig(n_queries=200, docs_per_query=30), seed=0
        )
        top = ds.features[ds.labels >= 3]
        bottom = ds.features[ds.labels == 0]
        # At least one informative feature separates the extremes.
        gaps = np.abs(top[:, :40].mean(axis=0) - bottom[:, :40].mean(axis=0))
        assert gaps.max() > 0.05


class TestNamedSurrogates:
    def test_msn30k_schema(self):
        ds = make_msn30k_like(n_queries=40, docs_per_query=10)
        assert ds.n_features == 136
        assert ds.name == "msn30k-like"

    def test_istella_schema(self):
        ds = make_istella_s_like(n_queries=40, docs_per_query=10)
        assert ds.n_features == 220
        assert ds.name == "istella-s-like"

    def test_istella_more_skewed_than_msn(self):
        msn = make_msn30k_like(n_queries=150, docs_per_query=20, seed=0)
        ist = make_istella_s_like(n_queries=150, docs_per_query=20, seed=0)
        zero_msn = np.mean(msn.labels == 0)
        zero_ist = np.mean(ist.labels == 0)
        assert zero_ist > zero_msn
