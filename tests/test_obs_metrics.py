"""Tests for repro.obs.metrics and the exporters (JSON + Prometheus)."""

import json
import threading

import numpy as np
import pytest

from repro.obs.export import (
    prometheus_name,
    render_json,
    render_prometheus,
    snapshot_dict,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.tracer import Tracer


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(MetricError, match="only go up"):
            Counter().inc(-1)

    def test_thread_safe_increments(self):
        c = Counter()

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        assert np.isnan(g.value)
        g.set(3)
        g.set(-1.5)
        assert g.value == -1.5


class TestStreamingHistogram:
    def test_exact_below_capacity(self):
        h = StreamingHistogram(capacity=128)
        values = list(range(100))
        h.extend(values)
        assert h.count == 100
        assert h.sum == sum(values)
        assert h.min == 0 and h.max == 99
        assert h.percentile(50) == pytest.approx(np.percentile(values, 50))
        assert h.percentile(0) == 0 and h.percentile(100) == 99

    def test_memory_bounded_beyond_capacity(self):
        h = StreamingHistogram(capacity=64)
        for i in range(10_000):
            h.add(float(i % 100))
        # The reservoir never grows past its capacity...
        assert h._reservoir.shape == (64,)
        # ...while exact accumulators keep tracking the full stream.
        assert h.count == 10_000
        assert h.min == 0.0 and h.max == 99.0
        assert h.mean == pytest.approx(49.5, abs=0.5)
        # The sampled median of a uniform 0..99 stream lands mid-range.
        assert 20.0 <= h.percentile(50) <= 80.0

    def test_percentile_domain(self):
        h = StreamingHistogram()
        h.add(1.0)
        with pytest.raises(MetricError, match=r"\[0, 100\]"):
            h.percentile(-1)
        with pytest.raises(MetricError, match=r"\[0, 100\]"):
            h.percentile(100.5)

    def test_rejects_non_finite(self):
        h = StreamingHistogram()
        with pytest.raises(MetricError, match="finite"):
            h.add(float("nan"))
        with pytest.raises(MetricError, match="finite"):
            h.add(float("inf"))

    def test_empty_snapshot_is_nan(self):
        h = StreamingHistogram()
        snap = h.snapshot()
        assert snap["count"] == 0
        assert np.isnan(snap["p50"]) and np.isnan(snap["mean"])

    def test_invalid_capacity(self):
        with pytest.raises(MetricError, match="capacity"):
            StreamingHistogram(capacity=0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", backend="a") is not reg.counter(
            "x", backend="b"
        )

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError, match="registered as a counter"):
            reg.gauge("x")
        with pytest.raises(MetricError, match="registered as a counter"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs", backend="qs").inc(3)
        reg.gauge("drift").set(1.25)
        reg.histogram("lat").add(10.0)
        snap = reg.snapshot()
        by_name = {s["name"]: s for s in snap["series"]}
        assert by_name["reqs"]["value"] == 3
        assert by_name["reqs"]["labels"] == {"backend": "qs"}
        assert by_name["drift"]["kind"] == "gauge"
        assert by_name["lat"]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot()["series"] == []


class TestPrometheusExport:
    def test_name_sanitisation(self):
        assert prometheus_name("scoring.drift_pct") == "scoring_drift_pct"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a-b c") == "a_b_c"

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("scoring.requests", backend="qs").inc(5)
        reg.gauge("scoring.drift_pct", backend="qs").set(12.5)
        reg.histogram("scoring.request_us_per_doc", backend="qs").extend(
            [1.0, 2.0, 3.0]
        )
        text = render_prometheus(reg)
        assert text.endswith("\n")
        assert "# TYPE scoring_requests counter" in text
        assert 'scoring_requests{backend="qs"} 5.0' in text
        assert "# TYPE scoring_request_us_per_doc summary" in text
        assert (
            'scoring_request_us_per_doc{backend="qs",quantile="0.5"} 2.0'
            in text
        )
        assert 'scoring_request_us_per_doc_sum{backend="qs"} 6.0' in text
        assert 'scoring_request_us_per_doc_count{backend="qs"} 3' in text

    def test_every_sample_line_parses(self):
        import re

        reg = MetricsRegistry()
        reg.gauge("empty.gauge").set(float("nan"))
        reg.counter("plain").inc()
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?[0-9].*|[+-]Inf)$"
        )
        for line in render_prometheus(reg).splitlines():
            if line and not line.startswith("#"):
                assert sample.match(line), line

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestJsonExport:
    def test_document_shape(self):
        tracer = Tracer()
        reg = MetricsRegistry()
        with tracer.span("root", k=1):
            reg.counter("hits").inc()
        doc = json.loads(render_json(tracer=tracer, registry=reg))
        assert doc["trace"][0]["name"] == "root"
        assert doc["trace"][0]["attrs"] == {"k": 1}
        assert doc["metrics"]["series"][0]["name"] == "hits"

    def test_nans_become_null(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("nan"))
        doc = json.loads(render_json(tracer=Tracer(), registry=reg))
        assert doc["metrics"]["series"][0]["value"] is None

    def test_snapshot_dict_uses_defaults(self, obs_clean):
        obs_clean.enable_tracing()
        with obs_clean.span("s"):
            obs_clean.counter("c").inc()
        doc = snapshot_dict()
        assert doc["trace"][0]["name"] == "s"
        assert doc["metrics"]["series"][0]["name"] == "c"
