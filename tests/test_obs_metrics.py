"""Tests for repro.obs.metrics and the exporters (JSON + Prometheus)."""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import (
    prometheus_name,
    render_json,
    render_prometheus,
    snapshot_dict,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.tracer import Tracer


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(MetricError, match="only go up"):
            Counter().inc(-1)

    def test_thread_safe_increments(self):
        c = Counter()

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        assert np.isnan(g.value)
        g.set(3)
        g.set(-1.5)
        assert g.value == -1.5


class TestStreamingHistogram:
    def test_exact_below_capacity(self):
        h = StreamingHistogram(capacity=128)
        values = list(range(100))
        h.extend(values)
        assert h.count == 100
        assert h.sum == sum(values)
        assert h.min == 0 and h.max == 99
        assert h.percentile(50) == pytest.approx(np.percentile(values, 50))
        assert h.percentile(0) == 0 and h.percentile(100) == 99

    def test_memory_bounded_beyond_capacity(self):
        h = StreamingHistogram(capacity=64)
        for i in range(10_000):
            h.add(float(i % 100))
        # The reservoir never grows past its capacity...
        assert h._reservoir.shape == (64,)
        # ...while exact accumulators keep tracking the full stream.
        assert h.count == 10_000
        assert h.min == 0.0 and h.max == 99.0
        assert h.mean == pytest.approx(49.5, abs=0.5)
        # The sampled median of a uniform 0..99 stream lands mid-range.
        assert 20.0 <= h.percentile(50) <= 80.0

    def test_percentile_domain(self):
        h = StreamingHistogram()
        h.add(1.0)
        with pytest.raises(MetricError, match=r"\[0, 100\]"):
            h.percentile(-1)
        with pytest.raises(MetricError, match=r"\[0, 100\]"):
            h.percentile(100.5)

    def test_rejects_non_finite(self):
        h = StreamingHistogram()
        with pytest.raises(MetricError, match="finite"):
            h.add(float("nan"))
        with pytest.raises(MetricError, match="finite"):
            h.add(float("inf"))

    def test_empty_snapshot_is_nan(self):
        h = StreamingHistogram()
        snap = h.snapshot()
        assert snap["count"] == 0
        assert np.isnan(snap["p50"]) and np.isnan(snap["mean"])

    def test_invalid_capacity(self):
        with pytest.raises(MetricError, match="capacity"):
            StreamingHistogram(capacity=0)


class TestStreamingHistogramMerge:
    def test_exact_when_pooled_fits(self):
        a = StreamingHistogram(capacity=128)
        b = StreamingHistogram(capacity=128)
        a.extend([1.0, 2.0, 3.0])
        b.extend([10.0, 20.0])
        assert a.merge(b) is a
        assert a.count == 5
        assert a.sum == pytest.approx(36.0)
        assert a.min == 1.0 and a.max == 20.0
        assert a.percentile(50) == pytest.approx(
            np.percentile([1.0, 2.0, 3.0, 10.0, 20.0], 50)
        )
        # The donor is untouched.
        assert b.count == 2 and b.sum == pytest.approx(30.0)

    def test_merge_empty_is_noop(self):
        a = StreamingHistogram()
        a.extend([1.0, 2.0])
        a.merge(StreamingHistogram())
        assert a.count == 2 and a.sum == pytest.approx(3.0)

    def test_merge_into_empty(self):
        a = StreamingHistogram()
        b = StreamingHistogram()
        b.extend([4.0, 5.0])
        a.merge(b)
        assert a.count == 2 and a.min == 4.0 and a.max == 5.0

    def test_rejects_non_histogram_and_self(self):
        h = StreamingHistogram()
        with pytest.raises(MetricError, match="StreamingHistogram"):
            h.merge(Counter())
        with pytest.raises(MetricError, match="itself"):
            h.merge(h)

    @given(
        left=st.lists(
            st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
            max_size=200,
        ),
        right=st.lists(
            st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
            max_size=200,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_matches_pooled_stream(self, left, right):
        # Exact accumulators must always equal the pooled stream's, and
        # when the pooled values fit the reservoir the percentiles must
        # be exact too (the sampled path is covered separately below).
        a = StreamingHistogram(capacity=512)
        b = StreamingHistogram(capacity=512)
        a.extend(left)
        b.extend(right)
        a.merge(b)
        pooled = left + right
        assert a.count == len(pooled)
        assert a.sum == pytest.approx(sum(pooled), rel=1e-9, abs=1e-9)
        if pooled:
            assert a.min == min(pooled) and a.max == max(pooled)
            if len(pooled) <= 512:
                assert a.percentile(50) == pytest.approx(
                    np.percentile(pooled, 50)
                )
        else:
            assert np.isnan(a.percentile(50))

    def test_sampled_merge_tracks_pooled_percentiles(self):
        # Both reservoirs overflow: the merged reservoir is a weighted
        # subsample, so percentiles are approximate but must land near
        # the pooled distribution's.
        a = StreamingHistogram(capacity=64)
        b = StreamingHistogram(capacity=64)
        rng = np.random.default_rng(7)
        low = rng.uniform(0.0, 100.0, size=2_000)
        high = rng.uniform(900.0, 1000.0, size=2_000)
        a.extend(low)
        b.extend(high)
        a.merge(b)
        pooled = np.concatenate([low, high])
        assert a.count == 4_000
        assert a.sum == pytest.approx(pooled.sum(), rel=1e-9)
        # Median of the bimodal pool sits in the gap between the modes.
        assert 50.0 <= a.percentile(50) <= 950.0
        # Each mode contributes ~half the reservoir, so the quartiles
        # must land inside their respective modes.
        assert a.percentile(10) <= 100.0
        assert a.percentile(90) >= 900.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", backend="a") is not reg.counter(
            "x", backend="b"
        )

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError, match="registered as a counter"):
            reg.gauge("x")
        with pytest.raises(MetricError, match="registered as a counter"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs", backend="qs").inc(3)
        reg.gauge("drift").set(1.25)
        reg.histogram("lat").add(10.0)
        snap = reg.snapshot()
        by_name = {s["name"]: s for s in snap["series"]}
        assert by_name["reqs"]["value"] == 3
        assert by_name["reqs"]["labels"] == {"backend": "qs"}
        assert by_name["drift"]["kind"] == "gauge"
        assert by_name["lat"]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot()["series"] == []


class TestPrometheusExport:
    def test_name_sanitisation(self):
        assert prometheus_name("scoring.drift_pct") == "scoring_drift_pct"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a-b c") == "a_b_c"

    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("scoring.requests", backend="qs").inc(5)
        reg.gauge("scoring.drift_pct", backend="qs").set(12.5)
        reg.histogram("scoring.request_us_per_doc", backend="qs").extend(
            [1.0, 2.0, 3.0]
        )
        text = render_prometheus(reg)
        assert text.endswith("\n")
        assert "# TYPE scoring_requests counter" in text
        assert 'scoring_requests{backend="qs"} 5.0' in text
        assert "# TYPE scoring_request_us_per_doc summary" in text
        assert (
            'scoring_request_us_per_doc{backend="qs",quantile="0.5"} 2.0'
            in text
        )
        assert 'scoring_request_us_per_doc_sum{backend="qs"} 6.0' in text
        assert 'scoring_request_us_per_doc_count{backend="qs"} 3' in text

    def test_every_sample_line_parses(self):
        import re

        reg = MetricsRegistry()
        reg.gauge("empty.gauge").set(float("nan"))
        reg.counter("plain").inc()
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?[0-9].*|[+-]Inf)$"
        )
        for line in render_prometheus(reg).splitlines():
            if line and not line.startswith("#"):
                assert sample.match(line), line

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_hostile_label_values_are_escaped(self):
        # A tenant name is caller-controlled: quotes, backslashes and
        # newlines must not break (or forge) the exposition format.
        reg = MetricsRegistry()
        hostile = 'evil"} forged_metric 1\ntenant\\name'
        reg.counter("serving.requests", tenant=hostile).inc(2)
        text = render_prometheus(reg)
        assert (
            'serving_requests{tenant="evil\\"} forged_metric 1\\n'
            'tenant\\\\name"} 2.0' in text
        )
        # No sample line may be forged: every non-comment line still
        # parses as exactly one exposition sample.
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*\{[^\n]*\} [0-9.]+$"
        )
        lines = [
            line
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(lines) == 1
        assert sample.match(lines[0]), lines[0]

    def test_backslash_escaped_before_quote(self):
        # Escape ordering regression: a pre-escaped quote (backslash
        # then quote) must come out doubly escaped, not re-broken.
        reg = MetricsRegistry()
        reg.gauge("g", label='\\"').set(1.0)
        text = render_prometheus(reg)
        assert 'g{label="\\\\\\""} 1.0' in text


class TestJsonExport:
    def test_document_shape(self):
        tracer = Tracer()
        reg = MetricsRegistry()
        with tracer.span("root", k=1):
            reg.counter("hits").inc()
        doc = json.loads(render_json(tracer=tracer, registry=reg))
        assert doc["trace"][0]["name"] == "root"
        assert doc["trace"][0]["attrs"] == {"k": 1}
        assert doc["metrics"]["series"][0]["name"] == "hits"

    def test_nans_become_null(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("nan"))
        doc = json.loads(render_json(tracer=Tracer(), registry=reg))
        assert doc["metrics"]["series"][0]["value"] is None

    def test_snapshot_dict_uses_defaults(self, obs_clean):
        obs_clean.enable_tracing()
        with obs_clean.span("s"):
            obs_clean.counter("c").inc()
        doc = snapshot_dict()
        assert doc["trace"][0]["name"] == "s"
        assert doc["metrics"]["series"][0]["name"] == "c"
