"""Tests for repro.datasets.profile."""

import numpy as np
import pytest

from repro.datasets import LtrDataset, make_msn30k_like
from repro.datasets.profile import profile_dataset


@pytest.fixture(scope="module")
def profile():
    return profile_dataset(make_msn30k_like(n_queries=80, docs_per_query=15, seed=6))


class TestProfile:
    def test_counts(self, profile):
        assert profile.n_queries == 80
        assert profile.n_docs >= 80 * 8
        assert len(profile.features) == 136

    def test_grade_fractions_sum_to_one(self, profile):
        assert sum(profile.grade_fractions) == pytest.approx(1.0)

    def test_grade_skew_matches_generator(self, profile):
        assert profile.grade_fractions[0] == pytest.approx(0.52, abs=0.05)

    def test_query_size_ordering(self, profile):
        assert (
            profile.query_sizes_min
            <= profile.query_sizes_mean
            <= profile.query_sizes_max
        )

    def test_heavy_tails_detected(self, profile):
        # The generator plants lognormal features after the informative
        # block; some must register as heavy-tailed.
        assert len(profile.heavy_tailed_features) > 0
        assert all(f >= 40 for f in profile.heavy_tailed_features[:1])

    def test_constant_feature_detected(self):
        ds = LtrDataset(
            features=np.column_stack([np.arange(6.0), np.full(6, 3.0)]),
            labels=np.asarray([0, 1, 0, 1, 0, 1]),
            qids=np.asarray([1, 1, 1, 2, 2, 2]),
        )
        profile = profile_dataset(ds)
        assert profile.constant_features == [1]
        assert profile.features[1].std == 0.0

    def test_render_contains_sections(self, profile):
        text = profile.render(max_features=5)
        assert "Dataset profile" in text
        assert "grades:" in text
        assert "First 5 features" in text

    def test_feature_stats_consistent(self, profile):
        f0 = profile.features[0]
        assert f0.minimum <= f0.mean <= f0.maximum
        assert f0.n_unique > 1
