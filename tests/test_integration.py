"""End-to-end integration tests: the paper's qualitative relationships.

These tests run the full miniature pipeline (train forests, distill,
prune, predict times) and assert the *shape* results the paper reports —
orderings and dominance relations, not absolute values.
"""

import numpy as np
import pytest

from repro.design import HighQualityScenario, LowLatencyScenario, build_frontier
from repro.matmul import CsrMatrix
from repro.metrics import fisher_randomization_test, mean_ndcg
from repro.quickscorer import QuickScorer


class TestForestRelationships:
    def test_larger_forest_at_least_as_good(self, mini_pipeline):
        # Table 1 shape: Large >= Mid >= Small in quality (tolerate tiny
        # noise at this miniature scale).
        large = mini_pipeline.evaluate_forest(mini_pipeline.zoo.large_forest)
        small = mini_pipeline.evaluate_forest(mini_pipeline.zoo.small_forest)
        assert large.ndcg10 >= small.ndcg10 - 0.01
        assert large.time_us > small.time_us

    def test_quickscorer_exact_on_trained_forest(self, mini_pipeline):
        forest = mini_pipeline.forest(mini_pipeline.zoo.small_forest)
        x = mini_pipeline.test.features[:150]
        qs = QuickScorer(forest)
        np.testing.assert_allclose(qs.score(x), forest.predict(x), atol=1e-9)

    def test_teacher_competitive_with_deployment_forest(self, mini_pipeline):
        # Table 5 shape: the 256-leaf teacher outranks the 64-leaf model.
        # At this miniature training scale (1.4k documents) deep trees
        # overfit, so the mini pipeline only asserts competitiveness; the
        # benchmark harness checks the strict ordering at larger scale.
        teacher = mini_pipeline.teacher()
        large = mini_pipeline.forest(mini_pipeline.zoo.large_forest)
        test = mini_pipeline.test
        ndcg_teacher = mean_ndcg(test, teacher.predict(test.features), 10)
        ndcg_large = mean_ndcg(test, large.predict(test.features), 10)
        assert ndcg_teacher >= ndcg_large - 0.05


class TestStudentRelationships:
    def test_student_below_teacher(self, mini_pipeline):
        # Students cannot exceed the function they approximate (Section 1).
        spec = mini_pipeline.zoo.low_latency[2]
        student = mini_pipeline.student(spec)
        test = mini_pipeline.test
        ndcg_student = mean_ndcg(test, student.predict(test.features), 10)
        teacher = mini_pipeline.teacher()
        ndcg_teacher = mean_ndcg(test, teacher.predict(test.features), 10)
        assert ndcg_student <= ndcg_teacher + 0.03

    def test_pruned_student_quality_holds(self, mini_pipeline):
        # Section 5.2: first-layer pruning does not hurt (regularizer).
        spec = mini_pipeline.zoo.low_latency[2]
        dense = mini_pipeline.evaluate_network(spec, pruned=False)
        sparse = mini_pipeline.evaluate_network(spec, pruned=True)
        assert sparse.ndcg10 >= dense.ndcg10 - 0.05

    def test_pruned_student_faster(self, mini_pipeline):
        spec = mini_pipeline.zoo.low_latency[2]
        dense = mini_pipeline.evaluate_network(spec, pruned=False)
        sparse = mini_pipeline.evaluate_network(spec, pruned=True)
        assert sparse.time_us < 0.8 * dense.time_us

    def test_hybrid_time_uses_real_structure(self, mini_pipeline):
        spec = mini_pipeline.zoo.low_latency[2]
        pruned = mini_pipeline.pruned_student(spec)
        first = CsrMatrix.from_dense(pruned.network.first_layer.weight.data)
        predictor = mini_pipeline.network_predictor()
        report = predictor.predict(136, spec.hidden, first_layer_matrix=first)
        evaluated = mini_pipeline.evaluate_network(spec, pruned=True)
        assert evaluated.time_us == pytest.approx(
            report.hybrid_total_us_per_doc
        )


class TestScenariosEndToEnd:
    def test_frontier_and_scenarios(self, mini_pipeline):
        zoo = mini_pipeline.zoo
        points = mini_pipeline.frontier_points(
            [zoo.small_forest, zoo.mid_forest],
            [zoo.low_latency[2]],
        )
        plot = build_frontier(points)
        assert plot.forest_frontier and plot.neural_frontier

        reference = max(p.ndcg10 for p in points if p.family == "forest")
        hq = HighQualityScenario(reference_ndcg10=reference)
        ll = LowLatencyScenario(max_time_us=5.0)
        assert hq.select(points) or ll.select(points)

    def test_fisher_test_on_pipeline_outputs(self, mini_pipeline):
        large = mini_pipeline.evaluate_forest(mini_pipeline.zoo.large_forest)
        small = mini_pipeline.evaluate_forest(mini_pipeline.zoo.small_forest)
        result = fisher_randomization_test(
            large.per_query_ndcg10, small.per_query_ndcg10, seed=0
        )
        assert 0.0 < result.p_value <= 1.0


class TestDeploymentEndToEnd:
    """The full deployment story: pipeline -> service -> cascade."""

    def test_budgeted_services_and_cascade(self, mini_pipeline):
        from repro.design import CascadeStage, EarlyExitCascade
        from repro.serving import ScoringService

        forest = mini_pipeline.forest(mini_pipeline.zoo.mid_forest)
        student = mini_pipeline.pruned_student(mini_pipeline.zoo.low_latency[2])
        predictor = mini_pipeline.network_predictor()

        net_service = ScoringService(
            student, budget_us_per_doc=1.0, predictor=predictor
        )
        forest_service = ScoringService(forest, budget_us_per_doc=10.0)

        cascade = EarlyExitCascade(
            [
                CascadeStage(
                    "net",
                    net_service.score,
                    net_service.stats.predicted_us_per_doc,
                    keep_fraction=0.4,
                ),
                CascadeStage(
                    "forest",
                    forest_service.score,
                    forest_service.stats.predicted_us_per_doc,
                ),
            ]
        )
        scores = cascade.score_dataset(mini_pipeline.test)
        from repro.metrics import mean_ndcg

        assert mean_ndcg(mini_pipeline.test, scores, 10) > 0.3
        assert (
            cascade.expected_cost_us_per_doc()
            < forest_service.stats.predicted_us_per_doc
        )
        # Both services actually served traffic.
        assert net_service.stats.documents == mini_pipeline.test.n_docs
        assert 0 < forest_service.stats.documents < mini_pipeline.test.n_docs

    def test_quantized_student_serves(self, mini_pipeline):
        from repro.nn import quantize_student
        from repro.metrics import mean_ndcg

        student = mini_pipeline.pruned_student(mini_pipeline.zoo.low_latency[2])
        q = quantize_student(student, bits=8)
        base = mean_ndcg(
            mini_pipeline.test, student.predict(mini_pipeline.test.features), 10
        )
        quant = mean_ndcg(
            mini_pipeline.test, q.predict(mini_pipeline.test.features), 10
        )
        assert quant == pytest.approx(base, abs=0.01)


class TestPersistenceEndToEnd:
    def test_pruned_student_roundtrip(self, mini_pipeline, tmp_path):
        spec = mini_pipeline.zoo.low_latency[2]
        pruned = mini_pipeline.pruned_student(spec)
        path = tmp_path / "student.json"
        pruned.network.save(path)

        from repro.nn import FeedForwardNetwork

        loaded = FeedForwardNetwork.load(path)
        x = mini_pipeline.normalized_test_features()[:20] if hasattr(
            mini_pipeline, "normalized_test_features"
        ) else pruned.normalizer.transform(mini_pipeline.test.features[:20])
        np.testing.assert_allclose(
            loaded.predict(x), pruned.network.predict(x), atol=1e-12
        )
        assert loaded.first_layer.sparsity() == pytest.approx(
            pruned.first_layer_sparsity()
        )

    def test_forest_roundtrip_scores(self, mini_pipeline, tmp_path):
        forest = mini_pipeline.forest(mini_pipeline.zoo.small_forest)
        path = tmp_path / "forest.json"
        forest.save(path)
        from repro.forest import TreeEnsemble

        loaded = TreeEnsemble.load(path)
        x = mini_pipeline.test.features[:30]
        np.testing.assert_allclose(loaded.predict(x), forest.predict(x))
