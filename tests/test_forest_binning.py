"""Tests for repro.forest.binning."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.forest import FeatureBinner


class TestFeatureBinner:
    def test_bin_count_bounded(self, rng):
        x = rng.normal(size=(500, 4))
        binner = FeatureBinner(max_bins=32).fit(x)
        for f in range(4):
            assert binner.n_bins(f) <= 32

    def test_low_cardinality_feature_gets_few_bins(self, rng):
        x = np.column_stack([rng.normal(size=200), rng.integers(0, 3, 200)])
        binner = FeatureBinner(max_bins=64).fit(x)
        assert binner.n_bins(1) <= 3

    def test_transform_dtype_and_range(self, rng):
        x = rng.normal(size=(300, 3))
        binner = FeatureBinner(max_bins=16)
        binned = binner.fit_transform(x)
        assert binned.dtype == np.uint8
        for f in range(3):
            assert binned[:, f].max() < binner.n_bins(f)

    def test_binning_is_monotone(self, rng):
        x = rng.normal(size=(300, 1))
        binner = FeatureBinner(max_bins=16).fit(x)
        binned = binner.transform(x)[:, 0]
        order = np.argsort(x[:, 0])
        assert (np.diff(binned[order].astype(int)) >= 0).all()

    def test_threshold_consistent_with_transform(self, rng):
        # Values <= threshold_for(f, b) must land in bins <= b.
        x = rng.normal(size=(400, 1))
        binner = FeatureBinner(max_bins=16).fit(x)
        binned = binner.transform(x)[:, 0]
        for b in range(binner.n_bins(0) - 1):
            t = binner.threshold_for(0, b)
            left = x[:, 0] <= t
            assert (binned[left] <= b).all()
            assert (binned[~left] > b).all()

    def test_max_never_in_empty_last_bin(self, rng):
        x = rng.normal(size=(100, 1))
        binner = FeatureBinner(max_bins=8).fit(x)
        binned = binner.transform(x)[:, 0]
        # Every bin index up to the max observed is meaningful.
        assert binned.max() == binner.n_bins(0) - 1

    def test_constant_feature_single_bin(self):
        x = np.full((50, 1), 3.0)
        binner = FeatureBinner().fit(x)
        assert binner.n_bins(0) == 1
        assert (binner.transform(x) == 0).all()

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            FeatureBinner().transform(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            FeatureBinner().threshold_for(0, 0)

    def test_feature_count_mismatch(self, rng):
        binner = FeatureBinner().fit(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="expected 2"):
            binner.transform(rng.normal(size=(10, 3)))

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=1)
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=256)

    def test_bin_index_out_of_range(self, rng):
        binner = FeatureBinner(max_bins=8).fit(rng.normal(size=(50, 1)))
        with pytest.raises(IndexError):
            binner.threshold_for(0, 100)

    def test_max_actual_bins(self, rng):
        x = np.column_stack([rng.normal(size=200), np.zeros(200)])
        binner = FeatureBinner(max_bins=16).fit(x)
        assert binner.max_actual_bins == binner.n_bins(0)
