"""Tests for repro.timing.network_predictor (hybrid model, Tables 10-11)."""

import numpy as np
import pytest

from repro.matmul import CsrMatrix
from repro.timing import (
    DenseTimePredictor,
    GflopsSurface,
    NetworkTimePredictor,
    calibrate_sparse_predictor,
)


@pytest.fixture(scope="module")
def predictor():
    dense = DenseTimePredictor(GflopsSurface.measure(batch_size=1000))
    return NetworkTimePredictor(dense, calibrate_sparse_predictor())


class TestPredict:
    def test_report_fields(self, predictor):
        r = predictor.predict(136, (400, 200, 200, 100))
        assert r.describe() == "400x200x200x100"
        assert r.dense_total_us_per_doc > 0
        assert 0 < r.first_layer_impact_pct < 100
        assert r.pruned_forecast_us_per_doc < r.dense_total_us_per_doc
        assert r.sparse_first_layer_us_per_doc is None

    def test_forecast_subtracts_first_layer(self, predictor):
        r = predictor.predict(136, (400, 200, 200, 100))
        expected = r.dense_total_us_per_doc * (
            1 - r.first_layer_impact_pct / 100.0
        )
        assert r.pruned_forecast_us_per_doc == pytest.approx(expected)

    def test_sparsity_hypothesis_adds_hybrid(self, predictor):
        r = predictor.predict(
            136, (400, 200, 200, 100), first_layer_sparsity=0.987
        )
        assert r.sparse_first_layer_us_per_doc is not None
        assert r.hybrid_total_us_per_doc == pytest.approx(
            r.pruned_forecast_us_per_doc + r.sparse_first_layer_us_per_doc
        )

    def test_actual_matrix_takes_precedence(self, predictor, rng):
        dense = np.zeros((400, 136))
        idx = rng.choice(400 * 136, 700, replace=False)
        dense.ravel()[idx] = 1.0
        csr = CsrMatrix.from_dense(dense)
        r = predictor.predict(
            136,
            (400, 200, 200, 100),
            first_layer_sparsity=0.5,  # would be much slower
            first_layer_matrix=csr,
        )
        worst = predictor.sparse.worst_case_time_us(400, 136, 0.5, 64) / 64
        assert r.sparse_first_layer_us_per_doc < worst


class TestPaperAnchors:
    """Tables 8, 10, 11: forecast values near the published ones."""

    def test_table8_flagship(self, predictor):
        # 400x200x200x100 on MSN30K: dense 3.8, pruned 2.6 us/doc.
        r = predictor.predict(136, (400, 200, 200, 100))
        assert r.dense_total_us_per_doc == pytest.approx(3.8, rel=0.15)
        assert r.pruned_forecast_us_per_doc == pytest.approx(2.6, rel=0.15)

    @pytest.mark.parametrize(
        "arch,paper_dense,paper_pruned",
        [
            ((300, 200, 100), 2.4, 1.7),
            ((200, 100, 100, 50), 1.3, 0.8),
            ((200, 50, 50, 25), 0.9, 0.4),
            ((100, 50, 50, 25), 0.6, 0.3),
            ((100, 25, 25, 10), 0.5, 0.2),
            ((50, 25, 25, 10), 0.3, 0.1),
        ],
    )
    def test_msn30k_tables_10_11(self, predictor, arch, paper_dense, paper_pruned):
        r = predictor.predict(136, arch)
        assert r.dense_total_us_per_doc == pytest.approx(
            paper_dense, rel=0.35, abs=0.15
        )
        assert r.pruned_forecast_us_per_doc == pytest.approx(
            paper_pruned, rel=0.45, abs=0.15
        )

    @pytest.mark.parametrize(
        "arch,paper_dense",
        [
            ((800, 400, 400, 200), 11.9),
            ((800, 200, 200, 100), 6.5),
            ((300, 200, 100), 2.8),
            ((200, 75, 75, 25), 1.6),
        ],
    )
    def test_istella_tables_10_11(self, predictor, arch, paper_dense):
        r = predictor.predict(220, arch)
        assert r.dense_total_us_per_doc == pytest.approx(
            paper_dense, rel=0.35, abs=0.15
        )


class TestSparsitySpeedup:
    def test_speedup_grows_with_sparsity(self, predictor):
        # Fig. 11: the speed-up grows quadratically in the studied range.
        speeds = [
            predictor.sparsity_speedup(400, 136, s) for s in (0.90, 0.95, 0.99)
        ]
        assert speeds == sorted(speeds)

    def test_fig11_magnitude(self, predictor):
        # Paper: ~10x at 95% sparsity on the first-layer shapes.
        s = predictor.sparsity_speedup(400, 136, 0.95)
        assert 6.0 <= s <= 20.0

    def test_98_7_sparsity_over_20x(self, predictor):
        # Section 5.2: ~25x at 98.7% on 400x136.
        assert predictor.sparsity_speedup(400, 136, 0.987) > 20.0

    def test_full_sparsity_infinite(self, predictor):
        assert predictor.sparsity_speedup(100, 100, 1.0) == float("inf")
