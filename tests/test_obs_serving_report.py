"""Tests for obs.serving_report(): the per-tenant traffic table."""

import math

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.serving import (
    record_admitted,
    record_batch,
    record_response,
    record_shed,
    serving_report,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestServingReport:
    def test_empty_registry(self, reg):
        report = serving_report(reg)
        assert report.rows == ()
        assert report.batches == 0
        assert math.isnan(report.mean_batch_requests)
        assert report.render() == "(no serving traffic recorded)"

    def test_mixed_shed_reasons_per_tenant(self, reg):
        for _ in range(3):
            record_shed("web", "rate-limit", registry=reg)
        record_shed("web", "queue-depth", registry=reg)
        record_shed("web", "tenant-queue-depth", registry=reg)
        record_admitted("web", registry=reg)
        row = serving_report(reg).tenant("web")
        assert row.shed == 5
        assert row.shed_reasons == (
            ("queue-depth", 1),
            ("rate-limit", 3),
            ("tenant-queue-depth", 1),
        )
        assert row.offered == 6
        assert row.shed_ratio == pytest.approx(5 / 6)

    def test_multi_tenant_rows_sorted_and_separate(self, reg):
        record_admitted("web", registry=reg)
        record_admitted("web", registry=reg)
        record_response("web", 100.0, registry=reg)
        record_admitted("batch", registry=reg)
        record_shed("batch", "rate-limit", registry=reg)
        report = serving_report(reg)
        assert [r.tenant for r in report.rows] == ["batch", "web"]
        assert report.tenant("web").admitted == 2
        assert report.tenant("web").served == 1
        assert report.tenant("batch").shed == 1
        assert report.tenant("missing") is None

    def test_slo_miss_column_and_ratio(self, reg):
        # Three served under a 500us SLO: two hit, one miss.
        record_admitted("web", registry=reg)
        record_response("web", 100.0, slo_us=500.0, registry=reg)
        record_response("web", 200.0, slo_us=500.0, registry=reg)
        record_response("web", 900.0, slo_us=500.0, registry=reg)
        row = serving_report(reg).tenant("web")
        assert row.served == 3
        assert row.slo_miss == 1
        assert row.slo_miss_ratio == pytest.approx(1 / 3)
        assert row.p50_us == pytest.approx(200.0)
        # The rendered table carries the column.
        text = serving_report(reg).render()
        assert "slo miss" in text and "web" in text

    def test_shed_only_tenant_has_nan_latency(self, reg):
        record_shed("limited", "rate-limit", registry=reg)
        row = serving_report(reg).tenant("limited")
        assert row.served == 0 and row.admitted == 0
        assert math.isnan(row.p99_us)
        assert math.isnan(row.slo_miss_ratio)
        # Render must not choke on the NaN percentiles.
        assert "limited" in serving_report(reg).render()

    def test_coalescing_summary(self, reg):
        record_batch(n_requests=4, n_docs=40, queue_depth=2, registry=reg)
        record_batch(n_requests=8, n_docs=80, queue_depth=5, registry=reg)
        report = serving_report(reg)
        assert report.batches == 2
        assert report.mean_batch_requests == pytest.approx(6.0)
        assert report.coalesce_ratio == pytest.approx(6.0)
        assert report.mean_batch_docs == pytest.approx(60.0)
        assert report.last_queue_depth == 5.0
        assert "2 batches" in report.render()

    def test_describe(self, reg):
        record_admitted("web", registry=reg)
        record_response("web", 900.0, slo_us=500.0, registry=reg)
        assert "web" in serving_report(reg).tenant("web").describe()

    def test_default_registry_via_module_api(self, obs_clean):
        obs.record_admitted("web")
        obs.record_response("web", 123.0)
        row = obs.serving_report().tenant("web")
        assert row.admitted == 1 and row.served == 1
