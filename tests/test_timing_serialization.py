"""Tests for repro.timing.serialization (predictor persistence)."""

import json

import pytest

from repro.timing import (
    NetworkTimePredictor,
    load_predictor,
    save_predictor,
)
from repro.timing.serialization import predictor_from_dict, predictor_to_dict


@pytest.fixture(scope="module")
def predictor():
    return NetworkTimePredictor()


class TestRoundTrip:
    def test_dict_roundtrip_predictions(self, predictor):
        clone = predictor_from_dict(predictor_to_dict(predictor))
        for arch in [(400, 200, 200, 100), (100, 50, 50, 10)]:
            a = predictor.predict(136, arch, first_layer_sparsity=0.987)
            b = clone.predict(136, arch, first_layer_sparsity=0.987)
            assert b.dense_total_us_per_doc == pytest.approx(
                a.dense_total_us_per_doc
            )
            assert b.hybrid_total_us_per_doc == pytest.approx(
                a.hybrid_total_us_per_doc
            )

    def test_file_roundtrip(self, predictor, tmp_path):
        path = tmp_path / "predictor.json"
        save_predictor(predictor, path)
        clone = load_predictor(path)
        assert clone.dense.batch_size == predictor.dense.batch_size
        assert clone.sparse.l_b_vec_ns == pytest.approx(
            predictor.sparse.l_b_vec_ns
        )
        assert clone.sparse_batch == predictor.sparse_batch

    def test_file_is_plain_json(self, predictor, tmp_path):
        path = tmp_path / "predictor.json"
        save_predictor(predictor, path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert "dense" in data and "sparse" in data

    def test_sparse_coefficients_preserved(self, predictor):
        clone = predictor_from_dict(predictor_to_dict(predictor))
        assert clone.sparse.l_c_over_l_b == pytest.approx(
            predictor.sparse.l_c_over_l_b
        )

    def test_unknown_version_rejected(self, predictor):
        data = predictor_to_dict(predictor)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            predictor_from_dict(data)
