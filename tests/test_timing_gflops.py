"""Tests for repro.timing.gflops (GFLOPS surface and zones)."""

import numpy as np
import pytest

from repro.matmul import DenseGemmExecutor
from repro.timing import GflopsSurface


@pytest.fixture(scope="module")
def surface():
    return GflopsSurface.measure(batch_size=1000)


class TestMeasure:
    def test_grid_shape(self, surface):
        assert surface.gflops.shape == (
            len(surface.m_grid),
            len(surface.k_grid),
        )

    def test_values_positive_and_bounded(self, surface):
        assert (surface.gflops > 0).all()
        assert surface.gflops.max() < 200.0

    def test_custom_grid(self):
        s = GflopsSurface.measure(
            batch_size=64, m_grid=(100, 200), k_grid=(64, 128)
        )
        assert s.gflops.shape == (2, 2)
        assert s.batch_size == 64


class TestLookup:
    def test_exact_grid_point(self, surface):
        m, k = int(surface.m_grid[3]), int(surface.k_grid[4])
        expected = DenseGemmExecutor().measure_gflops(m, 1000, k)
        assert surface.lookup(m, k) == pytest.approx(expected, rel=1e-9)

    def test_interpolation_between_points(self, surface):
        k_lo, k_hi = int(surface.k_grid[4]), int(surface.k_grid[5])
        mid = (k_lo + k_hi) // 2
        v = surface.lookup(500, mid)
        lo = surface.lookup(500, k_lo)
        hi = surface.lookup(500, k_hi)
        assert min(lo, hi) <= v <= max(lo, hi)

    def test_clamped_outside_grid(self, surface):
        assert surface.lookup(10**6, 10**6) == pytest.approx(
            surface.lookup(int(surface.m_grid[-1]), int(surface.k_grid[-1]))
        )
        assert surface.lookup(1, 1) == pytest.approx(
            surface.lookup(int(surface.m_grid[0]), int(surface.k_grid[0]))
        )

    def test_invalid_shape(self, surface):
        with pytest.raises(ValueError):
            surface.lookup(0, 10)


class TestZones:
    def test_zone_values_match_paper(self, surface):
        zones = surface.zone_summary()
        assert zones.low_k_gflops == pytest.approx(90.0, rel=0.12)
        assert zones.mid_k_gflops == pytest.approx(110.0, rel=0.12)
        assert zones.high_k_gflops == pytest.approx(130.0, rel=0.12)

    def test_zone_ordering(self, surface):
        zones = surface.zone_summary()
        assert zones.low_k_gflops < zones.mid_k_gflops < zones.high_k_gflops

    def test_zone_lookup_routing(self, surface):
        zones = surface.zone_summary()
        assert zones.zone_gflops(64) == zones.low_k_gflops
        assert zones.zone_gflops(128) == zones.mid_k_gflops
        assert zones.zone_gflops(511) == zones.mid_k_gflops
        assert zones.zone_gflops(512) == zones.high_k_gflops


class TestHeatmap:
    def test_rows_cover_grid(self, surface):
        rows = surface.heatmap_rows()
        assert len(rows) == surface.gflops.size
        ms = {r[0] for r in rows}
        assert ms == {int(m) for m in surface.m_grid}


class TestValidation:
    def test_grid_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            GflopsSurface(
                np.asarray([1.0, 2.0]),
                np.asarray([1.0]),
                np.ones((1, 1)),
                batch_size=10,
            )

    def test_non_increasing_grid(self):
        with pytest.raises(ValueError, match="increasing"):
            GflopsSurface(
                np.asarray([2.0, 1.0]),
                np.asarray([1.0]),
                np.ones((2, 1)),
                batch_size=10,
            )
