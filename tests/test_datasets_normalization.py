"""Tests for repro.datasets.normalization (Z-normalization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra.numpy import arrays
from hypothesis import strategies as st

from repro.datasets import ZNormalizer, make_msn30k_like
from repro.exceptions import NotFittedError


class TestZNormalizer:
    def test_transform_zero_mean_unit_std(self, rng):
        x = rng.normal(5.0, 3.0, size=(500, 4))
        z = ZNormalizer().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_passes_through_centred(self, rng):
        x = rng.normal(size=(50, 2))
        x[:, 1] = 7.0
        z = ZNormalizer().fit_transform(x)
        np.testing.assert_allclose(z[:, 1], 0.0)

    def test_statistics_from_fit_not_transform(self, rng):
        norm = ZNormalizer().fit(rng.normal(0, 1, size=(100, 3)))
        shifted = rng.normal(10, 1, size=(100, 3))
        z = norm.transform(shifted)
        assert z.mean() > 5.0  # not re-centred on the new data

    def test_clip_sigma_bounds_output(self, rng):
        x = rng.lognormal(0, 2.0, size=(300, 2))
        norm = ZNormalizer(clip_sigma=3.0).fit(x)
        z = norm.transform(x * 100.0)  # extreme inputs
        assert np.abs(z).max() <= 3.0

    def test_clip_sigma_leaves_bulk_untouched(self, rng):
        x = rng.normal(size=(300, 2))
        plain = ZNormalizer().fit(x)
        clipped = ZNormalizer(clip_sigma=10.0).fit(x)
        np.testing.assert_allclose(clipped.transform(x), plain.transform(x))

    def test_invalid_clip_sigma(self):
        with pytest.raises(ValueError):
            ZNormalizer(clip_sigma=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            ZNormalizer().transform(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            ZNormalizer().inverse_transform(np.ones((2, 2)))

    def test_feature_count_mismatch_raises(self, rng):
        norm = ZNormalizer().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="expected 3"):
            norm.transform(rng.normal(size=(10, 4)))

    def test_transform_dataset(self):
        ds = make_msn30k_like(n_queries=20, docs_per_query=10)
        out = ZNormalizer().fit(ds.features).transform_dataset(ds)
        assert out.n_docs == ds.n_docs
        np.testing.assert_allclose(out.features.mean(axis=0), 0.0, atol=1e-9)

    @given(
        arrays(
            np.float64,
            (20, 3),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_inverse_transform_roundtrip(self, x):
        norm = ZNormalizer().fit(x)
        back = norm.inverse_transform(norm.transform(x))
        np.testing.assert_allclose(back, x, atol=1e-6 * (1 + np.abs(x).max()))
