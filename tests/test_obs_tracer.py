"""Tests for repro.obs.tracer (spans, nesting, threads, no-op default)."""

import threading

import pytest

from repro import obs
from repro.obs.tracer import Span, Tracer, _NULL_SPAN


class TestSpanTree:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2") as inner2:
                with tracer.span("leaf"):
                    pass
        roots = tracer.root_spans()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in inner2.children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.root_spans()] == ["a", "b"]

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.finished and inner.finished
        assert outer.duration_s >= inner.duration_s >= 0.0
        assert outer.duration_us == pytest.approx(outer.duration_s * 1e6)

    def test_open_span_has_no_duration(self):
        from repro.exceptions import ReproError

        tracer = Tracer()
        with tracer.span("open") as sp:
            assert not sp.finished
            with pytest.raises(ReproError, match="still open"):
                sp.duration_s
            with pytest.raises(ReproError, match="still open"):
                sp.duration_us
            # A live reading is available without closing the span...
            assert sp.elapsed_s() >= 0.0
            assert sp.elapsed_s(now=sp.start_s + 1.0) == pytest.approx(1.0)
            # ...and serialisation reports the missing duration as null.
            assert sp.to_dict()["duration_us"] is None
        assert sp.duration_s >= 0.0  # closed: real duration again

    def test_attrs_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("stage", model="m1") as sp:
            sp.set(docs=40)
        assert sp.attrs == {"model": "m1", "docs": 40}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (root,) = tracer.root_spans()
        assert root.finished
        assert root.attrs["error"] == "ValueError"

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.root_spans() == []

    def test_render_and_to_dict(self):
        tracer = Tracer()
        with tracer.span("outer", k=3):
            with tracer.span("inner"):
                pass
        text = tracer.render()
        assert "outer" in text and "inner" in text and "k=3" in text
        doc = tracer.root_spans()[0].to_dict()
        assert doc["name"] == "outer"
        assert doc["children"][0]["name"] == "inner"
        assert doc["finished"] is True


class TestDecorator:
    def test_traces_calls_with_qualname(self):
        tracer = Tracer()

        @tracer.trace()
        def work(x):
            return x + 1

        assert work(1) == 2
        (root,) = tracer.root_spans()
        assert root.name.endswith("work")

    def test_explicit_name(self):
        tracer = Tracer()

        @tracer.trace("custom")
        def work():
            return 7

        work()
        assert tracer.root_spans()[0].name == "custom"


class TestThreadSafety:
    def test_threads_get_separate_trees(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            with tracer.span(f"thread-{i}"):
                with tracer.span("child"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.root_spans()
        # Every thread contributed exactly one root with one child; no
        # cross-thread nesting.
        assert sorted(r.name for r in roots) == [
            f"thread-{i}" for i in range(4)
        ]
        assert all(len(r.children) == 1 for r in roots)


class TestDefaultTracer:
    def test_disabled_by_default_and_noop(self, obs_clean):
        assert not obs.tracing_enabled()
        handle = obs.span("anything")
        assert handle is _NULL_SPAN
        with handle as sp:
            assert sp.set(x=1) is sp  # attribute setter is a no-op
        assert obs.get_tracer().root_spans() == []

    def test_enable_records_through_module_api(self, obs_clean):
        obs.enable_tracing()
        with obs.span("stage"):
            pass
        assert [r.name for r in obs.get_tracer().root_spans()] == ["stage"]

    def test_module_decorator_follows_current_state(self, obs_clean):
        @obs.trace("toggled")
        def work():
            return 1

        work()  # disabled: nothing recorded
        assert obs.get_tracer().root_spans() == []
        obs.enable_tracing()
        work()
        assert [r.name for r in obs.get_tracer().root_spans()] == ["toggled"]

    def test_set_tracer_swaps_and_returns_previous(self, obs_clean):
        mine = Tracer(enabled=True)
        previous = obs.set_tracer(mine)
        try:
            with obs.span("via-mine"):
                pass
            assert [r.name for r in mine.root_spans()] == ["via-mine"]
        finally:
            obs.set_tracer(previous)

    def test_render_empty(self):
        assert Tracer().render() == "(no spans recorded)"
