"""Tests for repro.metrics.ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import LtrDataset
from repro.metrics import (
    average_precision,
    dcg,
    mean_average_precision,
    mean_ndcg,
    ndcg,
    per_query_metric,
)


class TestDcg:
    def test_single_relevant_at_top(self):
        assert dcg([1]) == pytest.approx(1.0)  # (2^1-1)/log2(2)

    def test_exponential_gain(self):
        assert dcg([2]) == pytest.approx(3.0)  # 2^2-1

    def test_discount_at_rank_two(self):
        assert dcg([0, 1]) == pytest.approx(1.0 / np.log2(3))

    def test_cutoff(self):
        assert dcg([0, 0, 5], k=2) == 0.0

    def test_empty_after_cutoff(self):
        assert dcg([], ) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            dcg([1], k=0)

    def test_additivity(self):
        full = dcg([3, 2, 1])
        assert full == pytest.approx(
            (2**3 - 1) / np.log2(2) + (2**2 - 1) / np.log2(3) + 1 / np.log2(4)
        )


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        scores = [3.0, 2.0, 1.0]
        labels = [2, 1, 0]
        assert ndcg(scores, labels) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        assert ndcg([1.0, 2.0, 3.0], [2, 1, 0]) < 1.0

    def test_no_relevant_is_nan(self):
        assert np.isnan(ndcg([1.0, 2.0], [0, 0]))

    def test_cutoff_changes_value(self):
        scores = [5, 4, 3, 2, 1]
        labels = [0, 0, 0, 0, 3]
        assert np.isclose(ndcg(scores, labels, k=10), ndcg(scores, labels))
        assert ndcg(scores, labels, k=2) == 0.0

    def test_score_shift_invariant(self):
        scores = np.asarray([0.3, -0.2, 1.5, 0.0])
        labels = [1, 0, 2, 1]
        assert ndcg(scores, labels, 10) == pytest.approx(
            ndcg(scores + 100.0, labels, 10)
        )

    def test_tie_broken_by_original_order(self):
        # Equal scores: stable sort keeps doc 0 first.
        assert ndcg([1.0, 1.0], [2, 0]) == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ndcg([1.0], [1, 2])

    @given(
        st.lists(st.integers(0, 4), min_size=2, max_size=20).filter(
            lambda l: max(l) > 0
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_bounded_zero_one(self, labels):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=len(labels))
        value = ndcg(scores, labels, 10)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(
        st.lists(st.integers(0, 4), min_size=2, max_size=20).filter(
            lambda l: max(l) > 0
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_ideal_ordering_maximal(self, labels):
        labels_arr = np.asarray(labels, dtype=float)
        ideal_scores = labels_arr.astype(float)
        rng = np.random.default_rng(1)
        random_scores = rng.normal(size=len(labels))
        assert ndcg(ideal_scores, labels_arr) >= ndcg(
            random_scores, labels_arr
        ) - 1e-12


class TestAveragePrecision:
    def test_all_relevant(self):
        assert average_precision([3, 2, 1], [1, 1, 1]) == pytest.approx(1.0)

    def test_single_relevant_at_bottom(self):
        assert average_precision([3, 2, 1], [0, 0, 1]) == pytest.approx(1 / 3)

    def test_classic_example(self):
        # Relevant at ranks 1 and 3: (1/1 + 2/3) / 2.
        ap = average_precision([3, 2, 1], [1, 0, 1])
        assert ap == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_no_relevant_is_nan(self):
        assert np.isnan(average_precision([1, 2], [0, 0]))

    def test_graded_binarization_threshold(self):
        ap_strict = average_precision([2, 1], [1, 2], relevance_threshold=2)
        assert ap_strict == pytest.approx(0.5)


class TestAggregates:
    def make_dataset(self):
        x = np.zeros((6, 2))
        labels = np.asarray([2, 0, 0, 1, 0, 0])
        qids = np.asarray([1, 1, 1, 2, 2, 2])
        return LtrDataset(features=x, labels=labels, qids=qids)

    def test_mean_ndcg_perfect(self):
        ds = self.make_dataset()
        scores = np.asarray([3.0, 2, 1, 3, 2, 1])
        assert mean_ndcg(ds, scores, 10) == pytest.approx(1.0)

    def test_mean_map(self):
        ds = self.make_dataset()
        scores = np.asarray([1.0, 2, 3, 3, 2, 1])  # q1 reversed, q2 perfect
        expected_q1 = 1.0 / 3.0
        assert mean_average_precision(ds, scores) == pytest.approx(
            (expected_q1 + 1.0) / 2
        )

    def test_queries_without_relevant_skipped(self):
        x = np.zeros((4, 1))
        ds = LtrDataset(
            features=x,
            labels=np.asarray([1, 0, 0, 0]),
            qids=np.asarray([1, 1, 2, 2]),
        )
        scores = np.asarray([2.0, 1.0, 1.0, 2.0])
        assert mean_ndcg(ds, scores, 10) == pytest.approx(1.0)

    def test_per_query_metric_shape(self):
        ds = self.make_dataset()
        values = per_query_metric(ds, np.zeros(6), lambda s, l: float(len(l)))
        assert values.tolist() == [3.0, 3.0]

    def test_per_query_metric_length_mismatch(self):
        with pytest.raises(ValueError):
            per_query_metric(self.make_dataset(), np.zeros(5), ndcg)
