"""Tests for repro.quickscorer.rapidscorer."""

import pytest

from repro.quickscorer import QuickScorerCostModel, RapidScorerCostModel


class TestRapidScorerCostModel:
    def test_beats_quickscorer_above_64_leaves(self):
        # The related-work claim: RapidScorer wins when |leaves| > 64.
        rapid = RapidScorerCostModel()
        qs = rapid.base
        for leaves in (128, 256, 512):
            assert rapid.scoring_time_us(500, leaves) < qs.scoring_time_us(
                500, leaves
            )

    def test_comparable_below_64_leaves(self):
        rapid = RapidScorerCostModel()
        qs = rapid.base
        for leaves in (16, 32, 64):
            ratio = rapid.scoring_time_us(500, leaves) / qs.scoring_time_us(
                500, leaves
            )
            assert 0.5 < ratio < 1.5

    def test_crossover_at_or_below_64(self):
        # With merging, RapidScorer crosses over at modest leaf counts.
        assert RapidScorerCostModel().crossover_leaves() <= 128

    def test_leaf_insensitive_update_cost(self):
        # Per-tree cost grows linearly in leaves but WITHOUT the extra
        # per-word factor: the 256-vs-64 per-tree ratio stays below
        # QuickScorer's.
        rapid = RapidScorerCostModel()
        qs = rapid.base
        rapid_ratio = rapid.per_tree_ns(256) / rapid.per_tree_ns(64)
        qs_ratio = qs.per_tree_ns(256) / qs.per_tree_ns(64)
        assert rapid_ratio < qs_ratio

    def test_merging_reduces_cost(self):
        merged = RapidScorerCostModel(merge_fraction=0.4)
        unmerged = RapidScorerCostModel(merge_fraction=0.0)
        assert merged.scoring_time_us(300, 64) < unmerged.scoring_time_us(
            300, 64
        )

    def test_false_fraction_override(self):
        rapid = RapidScorerCostModel()
        assert rapid.scoring_time_us(
            100, 64, false_fraction=0.1
        ) < rapid.scoring_time_us(100, 64, false_fraction=0.5)

    def test_stump_cost(self):
        assert RapidScorerCostModel().per_tree_ns(1) == pytest.approx(
            QuickScorerCostModel().tree_ns
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RapidScorerCostModel(epitome_update_ns=0.0)
        with pytest.raises(ValueError):
            RapidScorerCostModel(merge_fraction=1.0)
        with pytest.raises(ValueError):
            RapidScorerCostModel().scoring_time_us(0, 64)
