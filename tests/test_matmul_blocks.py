"""Tests for repro.matmul.blocks — block-CSR storage and the fill gate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matmul import BlockCsrMatrix, CsrMatrix, regroup_to_blocks
from repro.pruning import column_block_mask


def column_block_sparse(m, k, sparsity, block_cols=8, seed=0):
    """A dense matrix pruned in whole aligned column groups."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(m, k))
    return dense * column_block_mask(dense, sparsity, block_cols)


def scattered_sparse(m, k, density, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(m, k)) * (rng.random((m, k)) < density)


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = column_block_sparse(32, 24, 0.5)
        blocked = BlockCsrMatrix.from_dense(dense, (8, 8))
        np.testing.assert_array_equal(blocked.to_dense(), dense)

    def test_roundtrip_with_ragged_edges(self):
        # Neither dimension divides the block shape; edge tiles are
        # zero-padded internally but to_dense clips back to the
        # logical shape.
        dense = scattered_sparse(13, 11, 0.4)
        blocked = BlockCsrMatrix.from_dense(dense, (4, 4))
        assert blocked.shape == (13, 11)
        np.testing.assert_array_equal(blocked.to_dense(), dense)

    def test_all_zero_matrix_stores_no_blocks(self):
        blocked = BlockCsrMatrix.from_dense(np.zeros((8, 8)), (4, 4))
        assert blocked.n_blocks == 0
        assert blocked.nnz == 0
        np.testing.assert_array_equal(blocked.to_dense(), np.zeros((8, 8)))

    def test_counts_on_a_known_pattern(self):
        dense = np.zeros((8, 8))
        dense[:4, :4] = 1.0  # one fully dense tile
        dense[4, 4] = 2.0  # one singleton in another tile
        blocked = BlockCsrMatrix.from_dense(dense, (4, 4))
        assert blocked.n_blocks == 2
        assert blocked.stored_cells == 32
        assert blocked.nnz == 17
        assert blocked.fill == pytest.approx(17 / 32)

    def test_invalid_block_shape(self):
        with pytest.raises(ValueError, match="block_shape"):
            BlockCsrMatrix.from_dense(np.ones((4, 4)), (0, 4))
        with pytest.raises(ValueError, match="block_shape"):
            BlockCsrMatrix.from_dense(np.ones((4, 4)), "4x4")


class TestFillAndSparsity:
    def test_column_block_pruning_yields_full_tiles(self):
        # Whole-column-group pruning aligned to the tile width leaves
        # every stored tile fully dense.
        dense = column_block_sparse(64, 64, 0.75, block_cols=8)
        blocked = BlockCsrMatrix.from_dense(dense, (64, 8))
        assert blocked.fill == pytest.approx(1.0)
        assert blocked.sparsity == pytest.approx(
            1 - blocked.nnz / dense.size
        )

    def test_scattered_pruning_yields_low_fill(self):
        dense = scattered_sparse(64, 64, 0.05)
        blocked = BlockCsrMatrix.from_dense(dense, (64, 8))
        assert blocked.fill < 0.5

    def test_block_sparsity_counts_tiles(self):
        dense = np.zeros((8, 16))
        dense[:4, :4] = 1.0
        blocked = BlockCsrMatrix.from_dense(dense, (4, 4))
        # 2 x 4 = 8 tile positions, one stored.
        assert blocked.block_sparsity == pytest.approx(1 - 1 / 8)


class TestExpandedCsr:
    def test_expanded_matches_dense_with_explicit_zeros(self):
        dense = column_block_sparse(16, 16, 0.5, block_cols=4)
        blocked = BlockCsrMatrix.from_dense(dense, (4, 4))
        expanded = blocked.expanded_csr()
        assert isinstance(expanded, CsrMatrix)
        np.testing.assert_array_equal(expanded.to_dense(), dense)
        # Explicit zeros: the expanded twin stores every in-range cell
        # of every stored tile, not just the true non-zeros.
        assert expanded.values.size == blocked.stored_cells

    def test_edge_clipped_cells_are_dropped(self):
        dense = scattered_sparse(10, 10, 0.5)
        blocked = BlockCsrMatrix.from_dense(dense, (4, 4))
        expanded = blocked.expanded_csr()
        assert expanded.shape == (10, 10)
        assert np.all(expanded.col_index < 10)
        np.testing.assert_array_equal(expanded.to_dense(), dense)


class TestMatmulBitIdentity:
    # Hypothesis property (c): block-CSR matmul is bit-identical to the
    # scalar CSR reference on the same logical matrix, for any finite
    # operand — the explicit zeros the tiles store never change a sum's
    # bits under round-to-nearest.
    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(4, 40),
        k=st.integers(4, 40),
        n=st.integers(1, 24),
        r=st.integers(1, 8),
        c=st.integers(1, 8),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
    )
    def test_bit_identical_to_scalar_reference(
        self, m, k, n, r, c, density, seed
    ):
        dense = scattered_sparse(m, k, density, seed=seed)
        rng = np.random.default_rng(seed + 1)
        b = rng.normal(size=(k, n))
        blocked = BlockCsrMatrix.from_dense(dense, (r, c))
        reference = CsrMatrix.from_dense(dense).matmul_reference(b)
        np.testing.assert_array_equal(blocked.matmul(b), reference)
        np.testing.assert_array_equal(
            blocked.matmul_reference(b), reference
        )

    def test_matmul_on_column_block_structure(self):
        dense = column_block_sparse(64, 48, 0.6, block_cols=8)
        b = np.random.default_rng(7).normal(size=(48, 16))
        blocked = BlockCsrMatrix.from_dense(dense, (64, 8))
        np.testing.assert_array_equal(
            blocked.matmul(b),
            CsrMatrix.from_dense(dense).matmul_reference(b),
        )


class TestRegroup:
    def test_structured_matrix_regroups(self):
        dense = column_block_sparse(64, 64, 0.75, block_cols=8)
        csr = CsrMatrix.from_dense(dense)
        regrouped = regroup_to_blocks(csr, (64, 8), min_fill=0.5)
        assert isinstance(regrouped, BlockCsrMatrix)
        assert regrouped.fill >= 0.5
        np.testing.assert_array_equal(regrouped.to_dense(), dense)

    def test_scattered_matrix_falls_back_to_scalar(self):
        csr = CsrMatrix.from_dense(scattered_sparse(64, 64, 0.05))
        regrouped = regroup_to_blocks(csr, (64, 8), min_fill=0.5)
        assert regrouped is csr

    def test_zero_matrix_falls_back(self):
        csr = CsrMatrix.from_dense(np.zeros((8, 8)))
        assert regroup_to_blocks(csr, (4, 4), min_fill=0.0) is csr

    def test_min_fill_zero_always_blocks(self):
        csr = CsrMatrix.from_dense(scattered_sparse(16, 16, 0.05, seed=3))
        regrouped = regroup_to_blocks(csr, (4, 4), min_fill=0.0)
        assert isinstance(regrouped, BlockCsrMatrix)

    def test_rejects_non_csr(self):
        with pytest.raises(TypeError, match="CsrMatrix"):
            regroup_to_blocks(np.ones((4, 4)), (2, 2))

    def test_rejects_bad_min_fill(self):
        csr = CsrMatrix.from_dense(np.ones((4, 4)))
        with pytest.raises(ValueError, match="min_fill"):
            regroup_to_blocks(csr, (2, 2), min_fill=1.5)
