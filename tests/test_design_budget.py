"""Tests for repro.design.budget (forest-side latency budgeting)."""

import pytest

from repro.design import forest_budget_sweep, max_trees_within_budget
from repro.quickscorer import QuickScorerCostModel


class TestMaxTreesWithinBudget:
    def test_result_fits_budget(self):
        result = max_trees_within_budget(3.0, 64)
        assert result.time_us <= 3.0

    def test_one_more_tree_exceeds(self):
        model = QuickScorerCostModel()
        result = max_trees_within_budget(3.0, 64, cost_model=model)
        assert model.scoring_time_us(result.n_trees + 1, 64) > 3.0

    def test_paper_anchor(self):
        # 3.0 us at 64 leaves admits ~300 trees (the paper's QS 300, 64).
        result = max_trees_within_budget(3.0, 64)
        assert result.n_trees == pytest.approx(300, rel=0.05)

    def test_fewer_leaves_admit_more_trees(self):
        wide = max_trees_within_budget(2.0, 16)
        deep = max_trees_within_budget(2.0, 64)
        assert wide.n_trees > deep.n_trees

    def test_impossible_budget(self):
        # Tighter than the fixed per-document overhead.
        assert max_trees_within_budget(0.0001, 64) is None

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            max_trees_within_budget(0.0, 64)

    def test_huge_budget_hits_cap(self):
        result = max_trees_within_budget(1e9, 64, max_trees=5000)
        assert result.n_trees == 5000

    def test_describe(self):
        result = max_trees_within_budget(1.0, 32)
        assert "trees" in result.describe()


class TestSweep:
    def test_sweep_covers_leaf_options(self):
        results = forest_budget_sweep(2.0, leaves_options=(16, 32, 64))
        assert [r.n_leaves for r in results] == [16, 32, 64]

    def test_sweep_skips_impossible(self):
        results = forest_budget_sweep(0.0001, leaves_options=(16, 64))
        assert results == []

    def test_all_fit_budget(self):
        for result in forest_budget_sweep(1.5):
            assert result.time_us <= 1.5
