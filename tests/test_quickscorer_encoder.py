"""Tests for repro.quickscorer.encoder."""

import numpy as np
import pytest

from repro.exceptions import QuickScorerError
from repro.forest import TreeEnsemble
from repro.forest.tree import RegressionTree
from repro.quickscorer import encode_forest
from repro.quickscorer.encoder import _ones_mask, _range_mask


class TestBitvectorHelpers:
    def test_ones_mask_partial_word(self):
        words = _ones_mask(5, 1)
        assert words[0] == np.uint64(0b11111)

    def test_ones_mask_exact_word(self):
        words = _ones_mask(64, 1)
        assert words[0] == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_ones_mask_multi_word(self):
        words = _ones_mask(70, 2)
        assert words[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert words[1] == np.uint64(0b111111)

    def test_range_mask_clears_bits(self):
        words = _range_mask(1, 3, 1)
        assert words[0] & np.uint64(0b0110) == 0
        assert words[0] & np.uint64(0b0001) != 0
        assert words[0] & np.uint64(0b1000) != 0

    def test_range_mask_across_words(self):
        words = _range_mask(62, 66, 2)
        assert words[0] >> np.uint64(62) == 0
        assert words[1] & np.uint64(0b11) == 0
        assert words[1] & np.uint64(0b100) != 0


class TestEncodeForest:
    def test_word_count_for_small_trees(self, small_forest):
        enc = encode_forest(small_forest)
        assert enc.n_words == 1  # <= 64 leaves

    def test_word_count_above_64_leaves(self):
        # A degenerate deep tree with 65 leaves needs two words.
        n_internal = 64
        n_nodes = 2 * n_internal + 1
        feature = np.full(n_nodes, -1)
        threshold = np.full(n_nodes, np.nan)
        left = np.full(n_nodes, -1)
        right = np.full(n_nodes, -1)
        value = np.zeros(n_nodes)
        # Right-spine: node i tests feature 0 and its left child is a leaf.
        for i in range(n_internal):
            feature[i] = 0
            threshold[i] = float(i)
            left[i] = n_internal + 1 + i  # leaf
            right[i] = i + 1 if i + 1 < n_internal else n_nodes - 1
        tree = RegressionTree(
            feature=feature, threshold=threshold, left=left, right=right,
            value=value,
        )
        assert tree.n_leaves == 65
        ensemble = TreeEnsemble(
            trees=[tree], weights=np.ones(1), base_score=0.0, n_features=1
        )
        assert encode_forest(ensemble).n_words == 2

    def test_leaf_values_weighted(self, small_forest):
        enc = encode_forest(small_forest)
        tree0 = small_forest.trees[0]
        expected = small_forest.weights[0] * tree0.value[tree0.leaf_indices()]
        np.testing.assert_allclose(
            enc.leaf_values[0, : tree0.n_leaves], expected
        )

    def test_thresholds_sorted_per_feature(self, small_forest):
        enc = encode_forest(small_forest)
        for flist in enc.feature_lists:
            assert (np.diff(flist.thresholds) >= 0).all()

    def test_total_internal_nodes(self, small_forest):
        enc = encode_forest(small_forest)
        expected = sum(len(t.internal_nodes()) for t in small_forest.trees)
        assert enc.total_internal_nodes == expected

    def test_all_false_nodes_isolate_rightmost_leaf(self, small_forest):
        # ANDing every mask of a tree leaves exactly the right-spine leaf.
        enc = encode_forest(small_forest)
        acc = enc.init_leafidx.copy()
        for flist in enc.feature_lists:
            for node, tree_id in enumerate(flist.tree_ids):
                acc[tree_id] &= flist.masks[node]
        for t in range(enc.n_trees):
            survivors = int(sum(bin(int(w)).count("1") for w in acc[t]))
            assert survivors >= 1

    def test_structure_bytes_positive(self, small_forest):
        enc = encode_forest(small_forest)
        assert enc.structure_bytes() > 0

    def test_empty_ensemble_rejected(self):
        empty = TreeEnsemble(
            trees=[], weights=np.empty(0), base_score=0.0, n_features=3
        )
        with pytest.raises(QuickScorerError):
            encode_forest(empty)
