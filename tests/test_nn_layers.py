"""Tests for repro.nn.layers — forward/backward and masking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dropout, Linear, ReLU, ReLU6


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, seed=0)
        out = layer.forward(rng.normal(size=(7, 4)))
        assert out.shape == (7, 3)

    def test_forward_formula(self, rng):
        layer = Linear(4, 3, seed=0)
        x = rng.normal(size=(5, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.data.T + layer.bias.data
        )

    def test_backward_requires_training_forward(self, rng):
        layer = Linear(4, 3, seed=0)
        layer.forward(rng.normal(size=(2, 4)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 3)))

    def test_gradient_numerically_correct(self, rng):
        layer = Linear(3, 2, seed=1)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))
        layer.forward(x, training=True)
        grad_in = layer.backward(grad_out)
        # Loss = sum(out * grad_out): check dLoss/dW numerically.
        eps = 1e-6
        for i, j in [(0, 0), (1, 2)]:
            layer.weight.data[i, j] += eps
            up = float((layer.forward(x) * grad_out).sum())
            layer.weight.data[i, j] -= 2 * eps
            down = float((layer.forward(x) * grad_out).sum())
            layer.weight.data[i, j] += eps
            assert layer.weight.grad[i, j] == pytest.approx(
                (up - down) / (2 * eps), rel=1e-5
            )
        np.testing.assert_allclose(grad_in, grad_out @ layer.weight.data)

    def test_bias_gradient(self, rng):
        layer = Linear(3, 2, seed=1)
        layer.forward(rng.normal(size=(4, 3)), training=True)
        grad_out = rng.normal(size=(4, 2))
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.bias.grad, grad_out.sum(axis=0))

    def test_init_bounds(self):
        layer = Linear(100, 50, seed=0)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(layer.weight.data).max() <= bound
        np.testing.assert_array_equal(layer.bias.data, 0.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestLinearMask:
    def test_set_mask_zeroes_weights(self, rng):
        layer = Linear(4, 4, seed=0)
        mask = np.zeros((4, 4))
        mask[0, 0] = 1.0
        layer.set_mask(mask)
        assert layer.sparsity() == pytest.approx(15 / 16)

    def test_masked_gradients_blocked(self, rng):
        layer = Linear(3, 3, seed=0)
        mask = np.eye(3)
        layer.set_mask(mask)
        layer.forward(rng.normal(size=(5, 3)), training=True)
        layer.backward(rng.normal(size=(5, 3)))
        off_diag = layer.weight.grad[~np.eye(3, dtype=bool)]
        np.testing.assert_array_equal(off_diag, 0.0)

    def test_apply_mask_after_update(self, rng):
        layer = Linear(3, 3, seed=0)
        layer.set_mask(np.eye(3))
        layer.weight.data += 1.0  # simulated optimizer step
        layer.apply_mask()
        assert layer.weight.data[0, 1] == 0.0
        assert layer.weight.data[0, 0] != 0.0

    def test_clear_mask(self):
        layer = Linear(2, 2, seed=0)
        layer.set_mask(np.zeros((2, 2)))
        layer.set_mask(None)
        layer.weight.data[:] = 1.0
        layer.apply_mask()
        np.testing.assert_array_equal(layer.weight.data, 1.0)

    def test_mask_shape_validated(self):
        layer = Linear(3, 2, seed=0)
        with pytest.raises(ValueError, match="mask shape"):
            layer.set_mask(np.ones((2, 2)))


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.asarray([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_gates(self):
        layer = ReLU()
        layer.forward(np.asarray([[-1.0, 2.0]]), training=True)
        grad = layer.backward(np.asarray([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_relu6_clips_at_six(self):
        out = ReLU6().forward(np.asarray([[-1.0, 3.0, 10.0]]))
        np.testing.assert_array_equal(out, [[0.0, 3.0, 6.0]])

    def test_relu6_backward_gates_both_sides(self):
        layer = ReLU6()
        layer.forward(np.asarray([[-1.0, 3.0, 10.0]]), training=True)
        grad = layer.backward(np.ones((1, 3)))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 0.0]])

    def test_backward_without_training_raises(self):
        layer = ReLU6()
        layer.forward(np.ones((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    @given(st.floats(-100, 100, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_relu6_bounded(self, v):
        out = ReLU6().forward(np.asarray([[v]]))
        assert 0.0 <= out[0, 0] <= 6.0


class TestDropout:
    def test_identity_at_inference(self, rng):
        x = rng.normal(size=(10, 5))
        out = Dropout(0.5, seed=0).forward(x, training=False)
        np.testing.assert_array_equal(out, x)

    def test_zero_rate_identity(self, rng):
        x = rng.normal(size=(10, 5))
        out = Dropout(0.0, seed=0).forward(x, training=True)
        np.testing.assert_array_equal(out, x)

    def test_training_drops_and_scales(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((200, 50))
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.3 < np.mean(out == 0) < 0.7

    def test_expectation_preserved(self):
        layer = Dropout(0.3, seed=0)
        x = np.ones((500, 100))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((20, 20))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones((20, 20)))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
