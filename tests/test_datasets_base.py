"""Tests for repro.datasets.base (LtrDataset)."""

import numpy as np
import pytest

from repro.datasets import LtrDataset
from repro.exceptions import DatasetError


def make_dataset():
    x = np.arange(24, dtype=float).reshape(8, 3)
    y = np.asarray([0, 1, 2, 0, 3, 1, 0, 4])
    qids = np.asarray([1, 1, 1, 2, 2, 3, 3, 3])
    return LtrDataset(features=x, labels=y, qids=qids)


class TestConstruction:
    def test_basic_properties(self):
        ds = make_dataset()
        assert ds.n_docs == 8
        assert ds.n_features == 3
        assert ds.n_queries == 3
        assert ds.max_label == 4

    def test_query_ptr(self):
        ds = make_dataset()
        assert ds.query_ptr.tolist() == [0, 3, 5, 8]

    def test_query_sizes(self):
        assert make_dataset().query_sizes().tolist() == [3, 2, 3]

    def test_mismatched_rows_raise(self):
        with pytest.raises(DatasetError, match="same number of rows"):
            LtrDataset(
                features=np.zeros((3, 2)),
                labels=np.zeros(2, dtype=int),
                qids=np.zeros(3),
            )

    def test_noncontiguous_qids_raise(self):
        with pytest.raises(DatasetError, match="contiguous"):
            LtrDataset(
                features=np.zeros((4, 2)),
                labels=np.zeros(4, dtype=int),
                qids=np.asarray([1, 2, 1, 2]),
            )

    def test_negative_labels_raise(self):
        with pytest.raises(DatasetError, match="non-negative"):
            LtrDataset(
                features=np.zeros((2, 2)),
                labels=np.asarray([-1, 0]),
                qids=np.asarray([1, 1]),
            )


class TestQueryAccess:
    def test_query_slice(self):
        ds = make_dataset()
        assert ds.query_slice(1) == slice(3, 5)

    def test_query_slice_out_of_range(self):
        with pytest.raises(IndexError):
            make_dataset().query_slice(3)

    def test_iter_queries(self):
        ds = make_dataset()
        sizes = [len(labels) for _, labels in ds.iter_queries()]
        assert sizes == [3, 2, 3]

    def test_iter_queries_features_match(self):
        ds = make_dataset()
        x0, _ = next(iter(ds.iter_queries()))
        np.testing.assert_array_equal(x0, ds.features[:3])


class TestManipulation:
    def test_select_queries(self):
        ds = make_dataset()
        sub = ds.select_queries([2, 0])
        assert sub.n_queries == 2
        assert sub.query_sizes().tolist() == [3, 3]
        np.testing.assert_array_equal(sub.labels[:3], ds.labels[5:8])

    def test_select_empty_raises(self):
        with pytest.raises(DatasetError):
            make_dataset().select_queries([])

    def test_with_features(self):
        ds = make_dataset()
        new = ds.with_features(ds.features * 2)
        np.testing.assert_array_equal(new.features, ds.features * 2)
        np.testing.assert_array_equal(new.labels, ds.labels)

    def test_feature_ranges(self):
        ds = make_dataset()
        lo, hi = ds.feature_ranges()
        np.testing.assert_array_equal(lo, ds.features.min(axis=0))
        np.testing.assert_array_equal(hi, ds.features.max(axis=0))

    def test_len(self):
        assert len(make_dataset()) == 8

    def test_summary_mentions_counts(self):
        s = make_dataset().summary()
        assert "3 queries" in s and "8 docs" in s
