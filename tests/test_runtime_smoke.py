"""Fast smoke test for the scoring runtime (`make smoke`).

Constructs and prices one scorer of every built-in backend from
hand-built models — no training, no dataset generation — so a broken
backend or pricing path is caught in seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ZNormalizer
from repro.design.cascade import CascadeStage, EarlyExitCascade
from repro.distill.student import DistilledStudent
from repro.forest.ensemble import TreeEnsemble
from repro.forest.tree import NO_CHILD, RegressionTree
from repro.nn import FeedForwardNetwork
from repro.runtime import backend_names, is_scorer, make_scorer, price

N_FEATURES = 6


def _hand_forest(n_trees: int = 3) -> TreeEnsemble:
    """A tiny ensemble of depth-1 stumps on feature 0."""
    trees = []
    for t in range(n_trees):
        trees.append(
            RegressionTree(
                feature=np.array([0, -1, -1]),
                threshold=np.array([0.1 * (t + 1), np.nan, np.nan]),
                left=np.array([1, NO_CHILD, NO_CHILD]),
                right=np.array([2, NO_CHILD, NO_CHILD]),
                value=np.array([np.nan, -1.0 - t, 1.0 + t]),
            )
        )
    return TreeEnsemble(
        trees=trees,
        weights=np.ones(n_trees),
        base_score=0.0,
        n_features=N_FEATURES,
        name="hand-forest",
    )


def _hand_student(*, sparse: bool = False) -> DistilledStudent:
    """An untrained student; optionally with a mostly-zero first layer."""
    rng = np.random.default_rng(7)
    network = FeedForwardNetwork(N_FEATURES, (8, 4), seed=7)
    normalizer = ZNormalizer().fit(rng.normal(size=(32, N_FEATURES)))
    if sparse:
        w = network.first_layer.weight.data
        w[:, 1:] = 0.0  # ~83% first-layer sparsity
    return DistilledStudent(network, normalizer, teacher_description="hand")


def _features(n: int = 16) -> np.ndarray:
    return np.random.default_rng(3).normal(size=(n, N_FEATURES))


def test_every_backend_constructs_and_prices():
    forest = _hand_forest()
    cascade = EarlyExitCascade(
        [CascadeStage("stub", lambda x: np.asarray(x)[:, 0], 0.25)]
    )
    builds = {
        "quickscorer": (forest, {}),
        "quickscorer-gpu": (forest, {}),
        "dense-network": (_hand_student(), {}),
        "sparse-network": (_hand_student(sparse=True), {}),
        "quantized-network": (_hand_student(), {"quantized_bits": 8}),
        "cascade": (cascade, {}),
        "compiled-network": (_hand_student(sparse=True), {"compiled": True}),
    }
    assert set(builds) == set(backend_names())

    x = _features()
    for name, (model, opts) in builds.items():
        scorer = make_scorer(model, backend=name, **opts)
        assert is_scorer(scorer)
        assert scorer.backend == name
        scores = scorer.score(x)
        assert scores.shape == (len(x),)
        assert np.all(np.isfinite(scores))
        us = scorer.predicted_us_per_doc
        assert np.isfinite(us) and us > 0.0
        assert us == pytest.approx(
            price(model, backend=name, **opts), rel=1e-12
        )
        assert isinstance(scorer.describe(), str) and scorer.describe()


def test_auto_dispatch_picks_the_expected_backend():
    assert make_scorer(_hand_forest()).backend == "quickscorer"
    assert make_scorer(_hand_student()).backend == "dense-network"
    assert make_scorer(_hand_student(sparse=True)).backend == "sparse-network"
    assert (
        make_scorer(_hand_student(), compiled=True).backend
        == "compiled-network"
    )
    with pytest.raises(TypeError, match="unsupported model"):
        make_scorer(object())
