"""Replay reservoir: dedup, Algorithm-R retention, redistillation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distill import ReplayBuffer, ReplayError, redistill_student


def _rows(rng, n, d=6):
    return rng.standard_normal((n, d))


class TestReplayBuffer:
    def test_validation(self):
        with pytest.raises(ReplayError, match="capacity"):
            ReplayBuffer(0)
        buffer = ReplayBuffer(4)
        with pytest.raises(ReplayError, match="disagree"):
            buffer.add(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ReplayError, match="empty"):
            buffer.as_arrays()

    def test_repeats_gain_popularity_not_slots(self, rng):
        buffer = ReplayBuffer(16, seed=0)
        x = _rows(rng, 4)
        buffer.add(x, np.arange(4.0))
        assert len(buffer) == 4 and buffer.total_rows == 4
        buffer.add(x, np.arange(4.0) + 10.0)  # same rows, fresher scores
        assert len(buffer) == 4  # no new slots
        assert buffer.distinct == 4
        assert buffer.total_rows == 8
        _, y, seen = buffer.as_arrays()
        np.testing.assert_array_equal(seen, [2, 2, 2, 2])
        np.testing.assert_array_equal(y, np.arange(4.0) + 10.0)  # refreshed

    def test_reservoir_bounds_memory_and_stays_consistent(self, rng):
        buffer = ReplayBuffer(8, seed=1)
        for lo in range(0, 200, 10):
            buffer.add(_rows(rng, 10), np.full(10, float(lo)))
        assert len(buffer) == 8
        assert buffer.distinct == 200
        snap = buffer.snapshot()
        assert snap["rows"] == 8 and snap["total_rows"] == 200
        # the digest index must track the retained rows exactly
        x, _, _ = buffer.as_arrays()
        assert len(buffer._index) == 8
        from repro.distill.replay import _row_digest

        assert sorted(buffer._index.values()) == list(range(8))
        for row in x:
            assert _row_digest(row) in buffer._index

    def test_reservoir_is_roughly_uniform_over_distinct_rows(self):
        # Offer rows 0..99, capacity 10; over many seeds every row must
        # be retained sometimes — Algorithm-R has no recency bias.
        hits = np.zeros(100)
        for seed in range(60):
            buffer = ReplayBuffer(10, seed=seed)
            rows = np.arange(100, dtype=np.float64).reshape(-1, 1) @ np.ones(
                (1, 3)
            )
            buffer.add(rows, np.zeros(100))
            x, _, _ = buffer.as_arrays()
            hits[x[:, 0].astype(int)] += 1
        assert (hits > 0).sum() > 80  # wide coverage, not just the tail
        assert hits[:20].sum() > 0 and hits[-20:].sum() > 0

    def test_sample_is_popularity_weighted(self, rng):
        buffer = ReplayBuffer(4, seed=2)
        x = _rows(rng, 2)
        buffer.add(x, np.zeros(2))
        for _ in range(20):  # row 0 becomes 21x more popular
            buffer.add(x[:1], np.zeros(1))
        xs, _ = buffer.sample(500, seed=3)
        head = np.isclose(xs, x[0]).all(axis=1).mean()
        assert head > 0.8  # ~21/22 expected

    def test_thread_safe_add(self, rng):
        from concurrent.futures import ThreadPoolExecutor

        # capacity >= distinct rows: no eviction, so the dedup index
        # must absorb every repeat regardless of interleaving
        buffer = ReplayBuffer(128, seed=4)
        blocks = [_rows(rng, 8) for _ in range(8)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(
                pool.map(
                    lambda b: buffer.add(b, np.zeros(len(b))), blocks * 4
                )
            )
        assert buffer.total_rows == 8 * 8 * 4
        assert buffer.distinct == 64
        assert len(buffer) == 64
        _, _, seen = buffer.as_arrays()
        np.testing.assert_array_equal(seen, np.full(64, 4))


class TestRedistill:
    @pytest.fixture(scope="class")
    def student(self):
        from repro.obs.probe import build_probe_models

        return build_probe_models(
            n_queries=4, docs_per_query=8, seed=5
        )["dense-network"]

    def test_self_distillation_returns_trained_clone(self, student, rng):
        buffer = ReplayBuffer(64, seed=0)
        x = _rows(rng, 40, d=136)
        buffer.add(x, student.predict(x))
        clone = redistill_student(
            student, buffer, epochs=1, batch_size=16, seed=0
        )
        assert clone is not student
        assert clone.normalizer is student.normalizer  # shared, by design
        before = student.network.linears[-1].weight.data
        after = clone.network.linears[-1].weight.data
        assert not np.array_equal(before, after)  # training moved weights
        assert np.isfinite(clone.predict(x)).all()

    def test_teacher_scores_override_buffered_targets(self, student, rng):
        class CountingTeacher:
            calls = 0

            def score(self, features):
                type(self).calls += 1
                return np.zeros(len(features))

        buffer = ReplayBuffer(16, seed=1)
        x = _rows(rng, 8, d=136)
        buffer.add(x, np.full(8, 1e6))  # absurd stored targets
        redistill_student(
            student,
            buffer,
            teacher=CountingTeacher(),
            epochs=1,
            batch_size=8,
            seed=0,
        )
        assert CountingTeacher.calls == 1

    def test_bad_teacher_rejected(self, student, rng):
        class ShortTeacher:
            def score(self, features):
                return np.zeros(1)

        buffer = ReplayBuffer(16, seed=2)
        x = _rows(rng, 8, d=136)
        buffer.add(x, np.zeros(8))
        with pytest.raises(ReplayError, match="mismatch"):
            redistill_student(student, buffer, teacher=ShortTeacher())
