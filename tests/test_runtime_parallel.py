"""Tests for repro.runtime.parallel — shard plans, cache, sharded scorer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design.cascade import CascadeStage, EarlyExitCascade
from repro.exceptions import ConfigError
from repro.runtime import (
    BatchEngine,
    ParallelConfig,
    ParallelError,
    PoolClosedError,
    ScoreCache,
    ShardPlan,
    ShardedScorer,
    StubScorer,
    make_scorer,
    plan_shards,
    scorer_fingerprint,
)


@pytest.fixture(scope="module")
def features(tiny_splits):
    return tiny_splits[2].features[:300]


@pytest.fixture(scope="module")
def forest_scorer(small_forest):
    return make_scorer(small_forest, backend="quickscorer")


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
class TestShardPlan:
    @settings(max_examples=50, deadline=None)
    @given(
        n_rows=st.integers(min_value=0, max_value=2000),
        n_shards=st.integers(min_value=1, max_value=16),
    )
    def test_even_covers_and_balances(self, n_rows, n_shards):
        plan = ShardPlan.even(n_rows, n_shards)
        assert plan.n_rows == n_rows
        assert sum(plan.sizes) == n_rows
        if n_rows:
            assert plan.n_shards == min(n_shards, n_rows)
            assert max(plan.sizes) - min(plan.sizes) <= 1
        else:
            assert plan.spans == ()

    @settings(max_examples=50, deadline=None)
    @given(
        n_rows=st.integers(min_value=0, max_value=2000),
        max_rows=st.integers(min_value=1, max_value=300),
    )
    def test_size_capped_respects_cap(self, n_rows, max_rows):
        plan = ShardPlan.size_capped(n_rows, max_rows)
        assert sum(plan.sizes) == n_rows
        assert all(size <= max_rows for size in plan.sizes)

    @settings(max_examples=50, deadline=None)
    @given(
        n_rows=st.integers(min_value=0, max_value=2000),
        n_shards=st.integers(min_value=1, max_value=16),
    )
    def test_planning_is_deterministic(self, n_rows, n_shards):
        """Same inputs, same plan — the reassembly contract depends on it."""
        assert ShardPlan.even(n_rows, n_shards) == ShardPlan.even(
            n_rows, n_shards
        )

    def test_cost_weighted_targets_budget(self):
        # 4 us/doc against a 100 us shard budget -> 25-row shards.
        plan = ShardPlan.cost_weighted(100, 4.0, 100.0)
        assert plan.strategy == "cost-weighted"
        assert max(plan.sizes) <= 25
        assert sum(plan.sizes) == 100

    def test_cost_weighted_rejects_unpriced(self):
        with pytest.raises(ParallelError, match="finite positive"):
            ShardPlan.cost_weighted(100, float("nan"), 100.0)

    def test_invalid_spans_rejected(self):
        with pytest.raises(ParallelError, match="contiguous"):
            ShardPlan(10, ((0, 5), (6, 10)))  # gap at row 5
        with pytest.raises(ParallelError, match="cover"):
            ShardPlan(10, ((0, 5),))  # short coverage

    def test_balance_of_even_plan_is_near_one(self):
        plan = ShardPlan.even(100, 3)
        assert 1.0 <= plan.balance <= 1.02

    def test_plan_shards_dispatches_by_strategy(self):
        even = plan_shards(90, ParallelConfig(workers=3))
        assert even.strategy == "even" and even.n_shards == 3
        capped = plan_shards(
            90,
            ParallelConfig(
                workers=3, strategy="size-capped", max_shard_rows=20
            ),
        )
        assert capped.strategy == "size-capped"
        assert all(size <= 20 for size in capped.sizes)
        weighted = plan_shards(
            90,
            ParallelConfig(
                workers=3, strategy="cost-weighted", target_shard_us=50.0
            ),
            us_per_doc=5.0,
        )
        assert weighted.strategy == "cost-weighted"
        assert all(size <= 10 for size in weighted.sizes)


class TestParallelConfig:
    def test_round_trip(self):
        config = ParallelConfig(
            workers=4,
            strategy="size-capped",
            max_shard_rows=64,
            cache_entries=1024,
        )
        assert ParallelConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown ParallelConfig"):
            ParallelConfig.from_dict({"workers": 2, "warp_factor": 9})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"strategy": "round-robin"},
            {"strategy": "size-capped"},  # missing max_shard_rows
            {"strategy": "cost-weighted"},  # missing target_shard_us
            {"cache_entries": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ParallelConfig(**kwargs)


# ----------------------------------------------------------------------
# Score cache
# ----------------------------------------------------------------------
class TestScoreCache:
    def test_lru_eviction_order(self):
        cache = ScoreCache(capacity=2)
        cache.put_many("m", [b"a", b"b"], np.array([1.0, 2.0]))
        cache.get_many("m", [b"a"])  # touch "a" -> "b" becomes LRU
        cache.put_many("m", [b"c"], np.array([3.0]))
        _, mask = cache.get_many("m", [b"a", b"b", b"c"])
        assert mask.tolist() == [True, False, True]
        assert cache.evictions == 1

    def test_models_do_not_share_entries(self):
        cache = ScoreCache(capacity=8)
        cache.put_many("model-a", [b"row"], np.array([1.0]))
        _, mask = cache.get_many("model-b", [b"row"])
        assert not mask.any()

    def test_hit_ratio_and_snapshot(self):
        cache = ScoreCache(capacity=8)
        assert np.isnan(cache.hit_ratio)
        cache.put_many("m", [b"x"], np.array([0.5]))
        cache.get_many("m", [b"x", b"y"])
        assert cache.hit_ratio == 0.5
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 1.0 and snapshot["hits"] == 1.0

    def test_clear_keeps_counters(self):
        cache = ScoreCache(capacity=8)
        cache.put_many("m", [b"x"], np.array([0.5]))
        cache.get_many("m", [b"x"])
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParallelError, match="digests"):
            ScoreCache(8).put_many("m", [b"x"], np.array([1.0, 2.0]))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ParallelError):
            ScoreCache(0)


# ----------------------------------------------------------------------
# Sharded scorer: bit-identity
# ----------------------------------------------------------------------
class TestShardedScorerIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=4),
        rows=st.integers(min_value=1, max_value=120),
        cached=st.booleans(),
    )
    def test_bit_identical_to_plain(
        self, forest_scorer, features, workers, rows, cached
    ):
        """Any worker count, any request size, cache on or off: same bits."""
        x = features[:rows]
        reference = forest_scorer.score(x)
        config = ParallelConfig(
            workers=workers, cache_entries=4096 if cached else 0
        )
        with ShardedScorer(forest_scorer, config) as sharded:
            np.testing.assert_array_equal(sharded.score(x), reference)
            np.testing.assert_array_equal(sharded.score(x), reference)

    @pytest.mark.parametrize(
        "config",
        [
            ParallelConfig(workers=3, strategy="size-capped", max_shard_rows=7),
            ParallelConfig(
                workers=2, strategy="cost-weighted", target_shard_us=100.0
            ),
            ParallelConfig(workers=2, cache_entries=64),  # forces evictions
        ],
        ids=["size-capped", "cost-weighted", "tiny-cache"],
    )
    def test_strategies_bit_identical(self, forest_scorer, features, config):
        reference = forest_scorer.score(features)
        with ShardedScorer(forest_scorer, config) as sharded:
            for _ in range(2):
                np.testing.assert_array_equal(
                    sharded.score(features), reference
                )

    def test_network_backends_bit_identical(
        self, small_student, features
    ):
        for backend in ("dense-network", "quantized-network"):
            plain = make_scorer(small_student, backend=backend)
            reference = plain.score(features)
            config = ParallelConfig(workers=3, cache_entries=2048)
            with ShardedScorer(plain, config) as sharded:
                np.testing.assert_array_equal(
                    sharded.score(features), reference
                )
                np.testing.assert_array_equal(
                    sharded.score(features), reference
                )

    def test_cascade_served_whole_without_cache(self, features):
        """Non-batchable scorers bypass sharding and caching entirely."""
        cascade = EarlyExitCascade(
            [CascadeStage("stub", lambda x: np.asarray(x)[:, 0], 0.5)]
        )
        plain = make_scorer(cascade, backend="cascade")
        reference = plain.score(features)
        with ShardedScorer(
            plain, ParallelConfig(workers=4, cache_entries=1024)
        ) as sharded:
            assert sharded.cache is None
            assert not sharded.batchable
            np.testing.assert_array_equal(sharded.score(features), reference)


# ----------------------------------------------------------------------
# Sharded scorer: lifecycle, protocol, cache behaviour
# ----------------------------------------------------------------------
class TestShardedScorerBehaviour:
    def test_satisfies_scorer_protocol(self, forest_scorer):
        from repro.runtime import is_scorer

        with ShardedScorer(forest_scorer, ParallelConfig(workers=2)) as s:
            assert is_scorer(s)
            assert s.backend == forest_scorer.backend
            assert s.input_dim == forest_scorer.input_dim
            assert s.predicted_us_per_doc == forest_scorer.predicted_us_per_doc
            assert "sharded" in s.describe()

    def test_rejects_non_scorer(self):
        with pytest.raises(TypeError, match="expected a Scorer"):
            ShardedScorer(object())

    def test_closed_pool_raises(self, forest_scorer, features):
        sharded = ShardedScorer(forest_scorer, ParallelConfig(workers=2))
        sharded.close()
        with pytest.raises(PoolClosedError):
            sharded.score(features[:8])

    def test_zero_document_request(self, forest_scorer):
        with ShardedScorer(forest_scorer, ParallelConfig(workers=2)) as s:
            out = s.score(np.empty((0, forest_scorer.input_dim)))
            assert out.shape == (0,)
            assert s.requests == 0

    def test_warm_request_hits_cache(self, forest_scorer, features):
        x = features[:64]
        config = ParallelConfig(workers=1, cache_entries=4096)
        with ShardedScorer(forest_scorer, config) as sharded:
            sharded.score(x)
            misses_after_cold = sharded.cache.misses
            sharded.score(x)
            assert sharded.cache.misses == misses_after_cold
            assert sharded.cache.hits >= len(np.unique(x, axis=0))

    def test_instances_do_not_share_cache_entries(
        self, small_forest, features
    ):
        """Fingerprints are per-instance: a new scorer starts cold."""
        x = features[:32]
        config = ParallelConfig(workers=1, cache_entries=4096)
        cache = ScoreCache(4096)
        first_scorer = make_scorer(small_forest, backend="quickscorer")
        with ShardedScorer(first_scorer, config, cache=cache) as first:
            first.score(x)
        hits_after_first = cache.hits
        clone = make_scorer(small_forest, backend="quickscorer")
        with ShardedScorer(clone, config, cache=cache) as second:
            second.score(x)
        assert cache.hits == hits_after_first  # all misses: new fingerprint

    def test_fingerprint_prefers_scorer_hook(self):
        class Fingerprinted(StubScorer):
            def fingerprint(self):
                return "weights-v7"

        assert scorer_fingerprint(Fingerprinted()) == "weights-v7"
        stub = StubScorer()
        assert hex(id(stub)) in scorer_fingerprint(stub)

    def test_summary_shape(self, forest_scorer, features):
        config = ParallelConfig(workers=2, cache_entries=256)
        with ShardedScorer(forest_scorer, config) as sharded:
            sharded.score(features[:50])
            summary = sharded.summary()
        assert summary["workers"] == 2
        assert summary["requests"] == 1
        assert summary["cache"]["capacity"] == 256.0


# ----------------------------------------------------------------------
# Observability + engine integration
# ----------------------------------------------------------------------
class TestParallelIntegration:
    def test_obs_series_recorded(self, forest_scorer, features, obs_clean):
        config = ParallelConfig(workers=2, cache_entries=4096)
        with ShardedScorer(forest_scorer, config) as sharded:
            sharded.score(features[:40])
            sharded.score(features[:40])
        report = obs_clean.parallel_report()
        row = report.backend("quickscorer")
        assert row is not None
        assert row.requests == 2
        assert row.cache_hits > 0
        assert "quickscorer" in report.render()

    def test_batch_engine_parallel_wrapping(self, forest_scorer, features):
        reference = forest_scorer.score(features)
        engine = BatchEngine(
            forest_scorer,
            max_batch_size=None,
            parallel=ParallelConfig(workers=2, cache_entries=1024),
        )
        assert isinstance(engine.scorer, ShardedScorer)
        np.testing.assert_array_equal(engine.score(features), reference)
        engine.scorer.close()

    def test_batch_engine_leaves_presharded_scorer(self, forest_scorer):
        with ShardedScorer(forest_scorer, ParallelConfig(workers=2)) as s:
            engine = BatchEngine(s, parallel=ParallelConfig(workers=4))
            assert engine.scorer is s
