"""Tests for repro.metrics.significance (Fisher randomization test)."""

import numpy as np
import pytest

from repro.metrics import fisher_randomization_test


class TestFisherRandomization:
    def test_identical_systems_not_significant(self, rng):
        a = rng.uniform(size=60)
        result = fisher_randomization_test(a, a.copy(), seed=0)
        assert result.p_value > 0.9
        assert not result.significant()

    def test_clear_improvement_significant(self, rng):
        b = rng.uniform(0.4, 0.6, size=80)
        a = b + 0.1
        result = fisher_randomization_test(a, b, seed=0)
        assert result.p_value < 0.01
        assert result.significant()

    def test_symmetry_of_p_value(self, rng):
        a = rng.uniform(size=50)
        b = a + rng.normal(0, 0.05, size=50)
        p_ab = fisher_randomization_test(a, b, seed=1).p_value
        p_ba = fisher_randomization_test(b, a, seed=1).p_value
        assert p_ab == pytest.approx(p_ba, abs=0.02)

    def test_observed_difference_sign(self, rng):
        b = rng.uniform(size=30)
        a = b + 0.2
        result = fisher_randomization_test(a, b, seed=0)
        assert result.observed_difference == pytest.approx(0.2)
        assert result.mean_a > result.mean_b

    def test_nan_pairs_dropped(self):
        a = np.asarray([0.5, np.nan, 0.7, 0.9])
        b = np.asarray([0.4, 0.5, np.nan, 0.8])
        result = fisher_randomization_test(a, b, seed=0)
        assert result.n_queries == 2

    def test_all_nan_raises(self):
        with pytest.raises(ValueError, match="no queries"):
            fisher_randomization_test([np.nan], [np.nan])

    def test_p_value_never_zero(self, rng):
        b = rng.uniform(size=100)
        a = b + 10.0
        result = fisher_randomization_test(a, b, n_permutations=1000, seed=0)
        assert result.p_value >= 1.0 / 1001

    def test_deterministic_by_seed(self, rng):
        a = rng.uniform(size=40)
        b = rng.uniform(size=40)
        p1 = fisher_randomization_test(a, b, seed=9).p_value
        p2 = fisher_randomization_test(a, b, seed=9).p_value
        assert p1 == p2

    def test_invalid_permutations(self):
        with pytest.raises(ValueError):
            fisher_randomization_test([1.0], [0.5], n_permutations=0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fisher_randomization_test([1.0, 2.0], [0.5])

    def test_alpha_threshold(self, rng):
        a = rng.uniform(size=60)
        res = fisher_randomization_test(a, a + 0.001, seed=0)
        assert res.significant(alpha=1.0)
