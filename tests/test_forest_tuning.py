"""Tests for repro.forest.tuning (random-search HyperOpt substitute)."""

import numpy as np
import pytest

from repro.forest import GradientBoostingConfig, RandomSearchTuner
from repro.forest.tuning import SearchSpace
from repro.utils.rng import ensure_rng


class TestSearchSpace:
    def test_samples_within_ranges(self):
        space = SearchSpace()
        rng = ensure_rng(0)
        for _ in range(50):
            params = space.sample(rng)
            assert 0.02 <= params["learning_rate"] <= 0.3
            assert params["max_depth"] in space.max_depth
            assert params["min_data_in_leaf"] in space.min_data_in_leaf
            assert 1e-4 <= params["min_sum_hessian_in_leaf"] <= 10.0

    def test_log_uniform_spread(self):
        # Log-uniform sampling visits the low decades, not only the top.
        space = SearchSpace()
        rng = ensure_rng(1)
        rates = [space.sample(rng)["learning_rate"] for _ in range(200)]
        assert min(rates) < 0.05
        assert max(rates) > 0.2


class TestRandomSearchTuner:
    @pytest.fixture(scope="class")
    def splits(self):
        from repro.datasets import make_msn30k_like, train_validation_test_split

        data = make_msn30k_like(n_queries=60, docs_per_query=15, seed=17)
        return train_validation_test_split(data, seed=17)

    def test_tune_returns_best_of_trials(self, splits):
        train, vali, _ = splits
        base = GradientBoostingConfig(n_trees=5, max_leaves=8, eval_every=5)
        tuner = RandomSearchTuner(base, n_trials=3, seed=0)
        result = tuner.tune(train, vali)
        assert len(result.trials) == 3
        assert result.best_metric == pytest.approx(
            max(metric for _, metric in result.trials)
        )

    def test_best_config_carries_base_fields(self, splits):
        train, vali, _ = splits
        base = GradientBoostingConfig(n_trees=4, max_leaves=8, eval_every=4)
        result = RandomSearchTuner(base, n_trials=2, seed=0).tune(train, vali)
        assert result.best_config.n_trees == 4
        assert result.best_config.max_leaves == 8

    def test_deterministic_by_seed(self, splits):
        train, vali, _ = splits
        base = GradientBoostingConfig(n_trees=3, max_leaves=8, eval_every=3)
        a = RandomSearchTuner(base, n_trials=2, seed=5).tune(train, vali)
        b = RandomSearchTuner(base, n_trials=2, seed=5).tune(train, vali)
        assert [p for p, _ in a.trials] == [p for p, _ in b.trials]
        assert a.best_metric == pytest.approx(b.best_metric)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            RandomSearchTuner(GradientBoostingConfig(), n_trials=0)

    def test_trials_record_sampled_params(self, splits):
        train, vali, _ = splits
        base = GradientBoostingConfig(n_trees=3, max_leaves=8, eval_every=3)
        result = RandomSearchTuner(base, n_trials=2, seed=0).tune(train, vali)
        for params, metric in result.trials:
            assert set(params) == {
                "learning_rate",
                "max_depth",
                "min_data_in_leaf",
                "min_sum_hessian_in_leaf",
            }
            assert 0.0 <= metric <= 1.0
