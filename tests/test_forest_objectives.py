"""Tests for repro.forest.objectives."""

import numpy as np
import pytest

from repro.datasets import LtrDataset
from repro.forest import L2Objective, LambdaRankObjective
from repro.metrics import ndcg


def two_query_dataset():
    x = np.zeros((6, 2))
    labels = np.asarray([2, 1, 0, 3, 0, 0])
    qids = np.asarray([1, 1, 1, 2, 2, 2])
    return LtrDataset(features=x, labels=labels, qids=qids)


class TestL2Objective:
    def test_gradients_are_residuals(self):
        ds = two_query_dataset()
        obj = L2Objective()
        scores = np.full(6, 1.0)
        g, h = obj.gradients(scores, ds)
        np.testing.assert_allclose(g, scores - ds.labels)
        np.testing.assert_allclose(h, 1.0)

    def test_init_score_is_mean(self):
        ds = two_query_dataset()
        assert L2Objective().init_score(ds) == pytest.approx(ds.labels.mean())

    def test_custom_targets(self):
        ds = two_query_dataset()
        targets = np.linspace(0, 1, 6)
        obj = L2Objective(targets)
        g, _ = obj.gradients(np.zeros(6), ds)
        np.testing.assert_allclose(g, -targets)

    def test_target_length_mismatch(self):
        ds = two_query_dataset()
        with pytest.raises(ValueError):
            L2Objective(np.zeros(4)).gradients(np.zeros(6), ds)


class TestLambdaRankObjective:
    def test_init_score_zero(self):
        assert LambdaRankObjective().init_score(two_query_dataset()) == 0.0

    def test_gradients_sum_to_zero_per_query(self):
        # Lambdas are antisymmetric over pairs, so they cancel per query.
        ds = two_query_dataset()
        rng = np.random.default_rng(0)
        g, _ = LambdaRankObjective().gradients(rng.normal(size=6), ds)
        assert g[:3].sum() == pytest.approx(0.0, abs=1e-12)
        assert g[3:].sum() == pytest.approx(0.0, abs=1e-12)

    def test_better_docs_pushed_up(self):
        ds = two_query_dataset()
        scores = np.zeros(6)  # all tied: gradients reflect labels only
        g, _ = LambdaRankObjective().gradients(scores, ds)
        # dLoss/ds is negative for documents that should rise.
        assert g[0] < g[2]  # grade 2 vs grade 0 in query 1
        assert g[3] < g[4]  # grade 3 vs grade 0 in query 2

    def test_hessians_positive(self):
        ds = two_query_dataset()
        _, h = LambdaRankObjective().gradients(np.zeros(6), ds)
        assert (h > 0).all()

    def test_uniform_labels_give_zero_gradients(self):
        x = np.zeros((3, 1))
        ds = LtrDataset(
            features=x,
            labels=np.asarray([1, 1, 1]),
            qids=np.asarray([1, 1, 1]),
        )
        g, _ = LambdaRankObjective().gradients(np.zeros(3), ds)
        np.testing.assert_allclose(g, 0.0)

    def test_gradient_step_improves_ndcg(self):
        # Moving against the gradients must improve the ranking.
        ds = two_query_dataset()
        rng = np.random.default_rng(3)
        scores = rng.normal(size=6)
        obj = LambdaRankObjective()
        before = ndcg(scores[:3], ds.labels[:3])
        for _ in range(50):
            g, h = obj.gradients(scores, ds)
            scores -= 0.5 * g / h
        after = ndcg(scores[:3], ds.labels[:3])
        assert after >= before

    def test_sigma_scales_gradients(self):
        ds = two_query_dataset()
        scores = np.zeros(6)
        g1, _ = LambdaRankObjective(sigma=1.0).gradients(scores, ds)
        g2, _ = LambdaRankObjective(sigma=2.0).gradients(scores, ds)
        # At tied scores rho = 0.5 for both, so lambdas scale with sigma.
        np.testing.assert_allclose(g2, 2.0 * g1)

    def test_ndcg_truncation_zeroes_deep_pairs(self):
        x = np.zeros((4, 1))
        ds = LtrDataset(
            features=x,
            labels=np.asarray([0, 0, 1, 2]),
            qids=np.asarray([1, 1, 1, 1]),
        )
        # Ranking puts the relevant docs deep; with ndcg_at=1, only pairs
        # involving rank 1 carry a non-zero |delta NDCG|, so document 1
        # (rank 2, all its informative pairs below the cutoff) gets zero
        # gradient while documents crossing rank 1 do not.
        scores = np.asarray([4.0, 3.0, 2.0, 1.0])
        g_full, _ = LambdaRankObjective().gradients(scores, ds)
        g_cut, _ = LambdaRankObjective(ndcg_at=1).gradients(scores, ds)
        assert g_cut[1] == pytest.approx(0.0, abs=1e-12)
        assert g_full[1] != pytest.approx(0.0, abs=1e-6)
        assert g_cut[0] > 0 and g_cut[3] < 0

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LambdaRankObjective(sigma=0.0)
