"""Tests for the resilience layer: retries, breaker, deadlines, chains.

The two ISSUE-mandated hypothesis properties live here:

* a fallback chain returns the primary's scores *bit-identically* when
  no fault fires, whatever the traffic looks like;
* the circuit breaker state machine is deterministic under the injected
  clock — the same outcome sequence always yields the same transition
  history.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    AllTiersFailedError,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
    CircuitOpenError,
    DeadlineExceededError,
    FallbackChain,
    FaultPolicy,
    InjectedFaultError,
    ManualClock,
    ResilientScorer,
    RetryPolicy,
    ScorerFaultError,
    StubScorer,
    ResilienceConfig,
    make_fallback_chain,
    make_scorer,
    with_faults,
)
from repro.runtime.base import is_scorer
from repro.serving import ScoringService, ServiceConfig


def manual_pair():
    clock = ManualClock()
    return clock, dict(clock=clock, sleep=clock.sleep)


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(backoff_seconds=-1.0),
            dict(backoff_multiplier=0.5),
            dict(backoff_seconds=0.5, max_backoff_seconds=0.1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            backoff_seconds=0.1,
            backoff_multiplier=2.0,
            max_backoff_seconds=0.35,
        )
        assert policy.backoff_before(1) == pytest.approx(0.1)
        assert policy.backoff_before(2) == pytest.approx(0.2)
        assert policy.backoff_before(3) == pytest.approx(0.35)  # capped
        assert policy.backoff_before(9) == pytest.approx(0.35)


class TestCircuitBreakerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window=0),
            dict(window=4, min_samples=5),
            dict(min_samples=0),
            dict(failure_rate_threshold=0.0),
            dict(failure_rate_threshold=1.5),
            dict(cooldown_seconds=-1.0),
            dict(half_open_probes=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreakerConfig(**kwargs)


class TestCircuitBreaker:
    def breaker(self, clock, **kwargs):
        config = CircuitBreakerConfig(
            window=4,
            min_samples=2,
            failure_rate_threshold=0.5,
            cooldown_seconds=1.0,
            half_open_probes=2,
            **kwargs,
        )
        return CircuitBreaker(config, clock=clock, backend="test")

    def test_starts_closed(self):
        breaker = self.breaker(ManualClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_on_failure_rate(self):
        breaker = self.breaker(ManualClock())
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # below min_samples
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert "failure rate" in breaker.last_trip_reason

    def test_successes_dilute_the_window(self):
        breaker = self.breaker(ManualClock())
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()  # 1 failure in a window of 4: rate 0.25
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_promotes_to_half_open(self):
        clock = ManualClock()
        breaker = self.breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.5)
        assert breaker.state is BreakerState.OPEN  # cooldown not elapsed
        clock.advance(0.6)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # probe traffic admitted

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = ManualClock()
        breaker = self.breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.9)
        assert breaker.state is BreakerState.OPEN  # cooldown restarted
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_enough_probes_close(self):
        clock = ManualClock()
        breaker = self.breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.1)
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN  # 1 of 2 probes
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        states = [state.value for state, _ in breaker.history]
        assert states == ["open", "half-open", "closed"]

    def test_drift_trip(self):
        drift = {"value": float("nan")}
        config = CircuitBreakerConfig(drift_pct_limit=25.0)
        breaker = CircuitBreaker(
            config,
            clock=ManualClock(),
            drift_fn=lambda: drift["value"],
            backend="test",
        )
        breaker.record_success()  # NaN drift: no trip
        assert breaker.state is BreakerState.CLOSED
        drift["value"] = 80.0
        breaker.record_success()
        assert breaker.state is BreakerState.OPEN
        assert "drift" in breaker.last_trip_reason

    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=40),
        gaps=st.lists(
            st.sampled_from([0.0, 0.4, 1.2]), min_size=1, max_size=40
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_state_machine_deterministic_under_injected_clock(
        self, outcomes, gaps
    ):
        """ISSUE property: same outcome/clock sequence, same history."""

        def run():
            clock = ManualClock()
            breaker = self.breaker(clock)
            for outcome, gap in zip(outcomes, gaps * 40):
                clock.advance(gap)
                if breaker.allow():
                    if outcome:
                        breaker.record_success()
                    else:
                        breaker.record_failure()
            return [
                (state.value, reason) for state, reason in breaker.history
            ], breaker.state

        first_history, first_state = run()
        second_history, second_state = run()
        assert first_history == second_history
        assert first_state is second_state
        # Transition sequence is always legal: closed<->open via trip,
        # open -> half-open via cooldown, half-open -> closed/open.
        legal_after = {
            "open": {"half-open"},
            "half-open": {"open", "closed"},
            "closed": {"open"},
        }
        for (prev, _), (cur, _) in zip(first_history, first_history[1:]):
            assert cur in legal_after[prev], first_history


class TestResilientScorer:
    def test_is_a_scorer_and_transparent(self):
        scorer = ResilientScorer(StubScorer(weights=[2.0, 1.0]))
        assert is_scorer(scorer)
        assert scorer.backend == "stub"
        assert scorer.input_dim == 2
        assert "resilient(" in scorer.describe()

    def test_rejects_non_scorer(self):
        with pytest.raises(TypeError):
            ResilientScorer(object())

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            ResilientScorer(StubScorer(), deadline_us=0)

    def test_success_is_bit_identical(self):
        inner = StubScorer(weights=[1.0, -1.0])
        scorer = ResilientScorer(StubScorer(weights=[1.0, -1.0]))
        x = np.array([[0.1, 0.9], [3.0, 0.5], [0.0, 0.0]])
        np.testing.assert_array_equal(scorer.score(x), inner.score(x))

    def test_retry_recovers_transient_fault(self):
        clock, pair = manual_pair()
        faulty = with_faults(
            StubScorer(weights=[1.0]), FaultPolicy.first(1), sleep=clock.sleep
        )
        scorer = ResilientScorer(
            scorer=faulty,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
            **pair,
        )
        scores = scorer.score(np.ones((2, 1)))
        np.testing.assert_array_equal(scores, [1.0, 1.0])
        assert scorer.retries == 1
        assert scorer.failures == 1
        assert clock.now == pytest.approx(0.01)  # one backoff pause

    def test_retries_exhausted_reraises_last_error(self):
        clock, pair = manual_pair()
        faulty = with_faults(
            StubScorer(weights=[1.0]), FaultPolicy.always(), sleep=clock.sleep
        )
        scorer = ResilientScorer(
            faulty, retry=RetryPolicy(max_attempts=3), **pair
        )
        with pytest.raises(InjectedFaultError):
            scorer.score(np.ones((1, 1)))
        assert scorer.retries == 2  # attempts 2 and 3

    def test_nan_scores_are_a_failure(self):
        clock, pair = manual_pair()
        faulty = with_faults(
            StubScorer(weights=[1.0]),
            FaultPolicy.always("nan"),
            sleep=clock.sleep,
        )
        scorer = ResilientScorer(
            faulty, retry=RetryPolicy(max_attempts=1), **pair
        )
        with pytest.raises(ScorerFaultError, match="non-finite"):
            scorer.score(np.ones((2, 1)))
        assert scorer.breaker.failure_rate() > 0

    def test_post_hoc_deadline_breach_degrades(self):
        clock, pair = manual_pair()
        stalled = with_faults(
            StubScorer(weights=[1.0]),
            FaultPolicy.always("stall", stall_seconds=0.5),
            sleep=clock.sleep,
        )
        scorer = ResilientScorer(
            stalled,
            retry=RetryPolicy(max_attempts=1),
            deadline_us=100_000.0,  # 100 ms < the 500 ms stall
            **pair,
        )
        with pytest.raises(DeadlineExceededError, match="deadline"):
            scorer.score(np.ones((1, 1)))
        assert scorer.failures == 1

    def test_no_deadline_budget_left_to_retry(self):
        clock, pair = manual_pair()
        faulty = with_faults(
            StubScorer(weights=[1.0]), FaultPolicy.always(), sleep=clock.sleep
        )
        scorer = ResilientScorer(
            faulty,
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.2),
            deadline_us=100_000.0,  # the 0.2 s backoff overruns 100 ms
            **pair,
        )
        with pytest.raises(DeadlineExceededError, match="budget"):
            scorer.score(np.ones((1, 1)))

    def test_open_breaker_short_circuits(self):
        clock, pair = manual_pair()
        faulty = with_faults(
            StubScorer(weights=[1.0]), FaultPolicy.always(), sleep=clock.sleep
        )
        scorer = ResilientScorer(
            faulty,
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreakerConfig(window=4, min_samples=2),
            **pair,
        )
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                scorer.score(np.ones((1, 1)))
        calls_before = faulty.calls
        with pytest.raises(CircuitOpenError):
            scorer.score(np.ones((1, 1)))
        assert faulty.calls == calls_before  # inner never invoked

    def test_stats_record_successes_only(self):
        clock, pair = manual_pair()
        faulty = with_faults(
            StubScorer(weights=[1.0]), FaultPolicy.every(2), sleep=clock.sleep
        )
        scorer = ResilientScorer(
            faulty,
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreakerConfig(
                window=8, min_samples=8, failure_rate_threshold=1.0
            ),
            **pair,
        )
        x = np.ones((3, 1))
        scorer.score(x)
        with pytest.raises(InjectedFaultError):
            scorer.score(x)
        scorer.score(x)
        assert scorer.stats.requests == 2
        assert scorer.stats.documents == 6


class TestFallbackChain:
    def tiers(self, clock, policy=None):
        primary = StubScorer(weights=[3.0, 1.0])
        if policy is not None:
            primary = with_faults(primary, policy, sleep=clock.sleep)
        return [primary, StubScorer(weights=[1.0, 1.0]), StubScorer()]

    def test_requires_tiers(self):
        with pytest.raises(ValueError):
            FallbackChain([])

    def test_rejects_non_scorer_tier(self):
        with pytest.raises(TypeError):
            FallbackChain([StubScorer(), 42])

    def test_chain_is_a_scorer_priced_by_its_primary(self):
        clock, pair = manual_pair()
        chain = FallbackChain(self.tiers(clock), **pair)
        assert is_scorer(chain)
        assert chain.backend == "stub"
        assert chain.input_dim == 2
        assert chain.predicted_us_per_doc == pytest.approx(0.01)
        assert "fallback chain" in chain.describe()

    def test_primary_serves_when_healthy(self):
        clock, pair = manual_pair()
        chain = FallbackChain(self.tiers(clock), **pair)
        x = np.array([[1.0, 2.0], [0.5, 0.5]])
        np.testing.assert_array_equal(
            chain.score(x), StubScorer(weights=[3.0, 1.0]).score(x)
        )
        assert chain.served == [1, 0, 0]
        assert chain.fallbacks == 0
        assert chain.fallback_ratio == 0.0

    def test_fault_degrades_to_next_tier(self):
        clock, pair = manual_pair()
        chain = FallbackChain(
            self.tiers(clock, FaultPolicy.always()),
            retry=RetryPolicy(max_attempts=1),
            **pair,
        )
        x = np.array([[1.0, 2.0]])
        np.testing.assert_array_equal(
            chain.score(x), StubScorer(weights=[1.0, 1.0]).score(x)
        )
        assert chain.served == [0, 1, 0]
        assert chain.fallbacks == 1
        assert chain.fallback_ratio == 1.0

    def test_all_tiers_failing_raises_with_summary(self):
        clock, pair = manual_pair()
        tiers = [
            with_faults(StubScorer(weights=[1.0]), FaultPolicy.always(),
                        sleep=clock.sleep),
            with_faults(StubScorer(weights=[2.0]),
                        FaultPolicy.always("nan"), sleep=clock.sleep),
        ]
        chain = FallbackChain(
            tiers, retry=RetryPolicy(max_attempts=1), **pair
        )
        with pytest.raises(AllTiersFailedError) as err:
            chain.score(np.ones((1, 1)))
        assert "InjectedFaultError" in str(err.value)
        assert "ScorerFaultError" in str(err.value)

    def test_each_tier_gets_its_own_breaker(self):
        clock, pair = manual_pair()
        chain = FallbackChain(
            self.tiers(clock, FaultPolicy.always()),
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreakerConfig(window=4, min_samples=2),
            **pair,
        )
        x = np.ones((1, 2))
        for _ in range(4):
            chain.score(x)  # primary fails each time, tier 2 serves
        assert chain.tiers[0].breaker.state is BreakerState.OPEN
        assert chain.tiers[1].breaker.state is BreakerState.CLOSED

    def test_tier_summary_shape(self):
        clock, pair = manual_pair()
        chain = FallbackChain(self.tiers(clock), **pair)
        chain.score(np.ones((2, 2)))
        summary = chain.tier_summary()
        assert [row["backend"] for row in summary] == ["stub"] * 3
        assert summary[0]["served"] == 1
        assert {"retries", "failures", "breaker"} <= set(summary[0])

    @given(
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.floats(
                        min_value=-1e6,
                        max_value=1e6,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    st.floats(
                        min_value=-1e6,
                        max_value=1e6,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                ),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_no_fault_means_bit_identical_primary_scores(self, batches):
        """ISSUE property: a healthy chain never changes a single bit."""
        clock = ManualClock()
        primary = StubScorer(weights=[0.3, -1.7])
        chain = FallbackChain(
            [StubScorer(weights=[0.3, -1.7]), StubScorer()],
            clock=clock,
            sleep=clock.sleep,
        )
        for batch in batches:
            x = np.asarray(batch, dtype=np.float64)
            np.testing.assert_array_equal(chain.score(x), primary.score(x))
        assert chain.fallbacks == 0
        assert chain.served[0] == len(batches)


class TestMakeFallbackChain:
    def test_builds_from_models_and_scorers(self, small_forest):
        clock, pair = manual_pair()
        chain = make_fallback_chain([small_forest, StubScorer()], **pair)
        assert chain.backend == "quickscorer"
        assert [t.backend for t in chain.tiers] == ["quickscorer", "stub"]

    def test_backends_must_match_models(self, small_forest):
        with pytest.raises(ValueError, match="one-to-one"):
            make_fallback_chain([small_forest], backends=["quickscorer", "x"])

    def test_explicit_backend_pins(self, small_student):
        chain = make_fallback_chain(
            [small_student], backends=["dense-network"]
        )
        assert chain.backend == "dense-network"


class TestScoringServiceIntegration:
    def test_service_without_fallbacks_unchanged(self, small_forest):
        service = ScoringService(small_forest)
        assert service.chain is None
        assert service.resilience_summary() is None
        assert service.fallback_ratio == 0.0

    def test_service_degrades_and_reports(self, small_forest):
        clock = ManualClock()
        primary = with_faults(
            make_scorer(small_forest, backend="quickscorer"),
            FaultPolicy.every(2),
            sleep=clock.sleep,
        )
        service = ScoringService(
            primary,
            ServiceConfig(
                resilience=ResilienceConfig(
                    fallback_models=(StubScorer(),),
                    retry=RetryPolicy(max_attempts=1),
                    breaker=CircuitBreakerConfig(
                        window=8, min_samples=8, failure_rate_threshold=1.0
                    ),
                )
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        x = np.random.default_rng(0).normal(
            size=(3, small_forest.n_features)
        )
        for _ in range(4):
            scores = service.score(x)
            assert scores.shape == (3,)
        assert service.chain.served == [2, 2]
        assert service.fallback_ratio == pytest.approx(0.5)
        summary = service.resilience_summary()
        assert summary[0]["backend"] == "quickscorer"
        assert summary[1]["backend"] == "stub"

    def test_healthy_service_matches_plain_service(self, small_forest):
        plain = ScoringService(small_forest)
        resilient = ScoringService(
            small_forest,
            ServiceConfig(
                resilience=ResilienceConfig(fallback_models=(StubScorer(),))
            ),
        )
        x = np.random.default_rng(1).normal(
            size=(5, small_forest.n_features)
        )
        np.testing.assert_array_equal(resilient.score(x), plain.score(x))
        assert resilient.fallback_ratio == 0.0


class TestObsIntegration:
    def test_resilience_report_reflects_traffic(self, obs_clean):
        from repro import obs

        clock, pair = manual_pair()
        chain = FallbackChain(
            [
                with_faults(
                    StubScorer(weights=[1.0]),
                    FaultPolicy.every(2),
                    sleep=clock.sleep,
                ),
                StubScorer(),
            ],
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreakerConfig(
                window=8, min_samples=8, failure_rate_threshold=1.0
            ),
            **pair,
        )
        x = np.ones((2, 1))
        for _ in range(4):
            chain.score(x)
        report = obs.resilience_report()
        row = report.chain("stub")
        assert row is not None
        assert row.requests == 4
        assert row.fallbacks == 2
        assert row.fallback_ratio == pytest.approx(0.5)
        rendered = report.render()
        assert "stub" in rendered
