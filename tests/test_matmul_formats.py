"""Tests for repro.matmul.formats (COO and CSC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matmul import CooMatrix, CscMatrix, CsrMatrix, csr_to_coo, csr_to_csc


def sparse_dense(m=8, k=6, seed=0, density=0.3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(m, k)) * (rng.random((m, k)) < density)


class TestCoo:
    def test_from_dense_roundtrip(self):
        dense = sparse_dense()
        coo = CooMatrix.from_dense(dense)
        np.testing.assert_array_equal(coo.to_dense(), dense)

    def test_to_csr_matches(self):
        dense = sparse_dense(seed=1)
        csr = CooMatrix.from_dense(dense).to_csr()
        np.testing.assert_array_equal(csr.to_dense(), dense)

    def test_unsorted_coordinates_accepted(self):
        coo = CooMatrix(
            rows=np.asarray([2, 0, 1]),
            cols=np.asarray([1, 2, 0]),
            values=np.asarray([3.0, 1.0, 2.0]),
            shape=(3, 3),
        )
        dense = coo.to_dense()
        assert dense[2, 1] == 3.0 and dense[0, 2] == 1.0
        np.testing.assert_array_equal(coo.to_csr().to_dense(), dense)

    def test_nnz(self):
        assert CooMatrix.from_dense(np.eye(4)).nnz == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CooMatrix(
                rows=np.asarray([5]),
                cols=np.asarray([0]),
                values=np.asarray([1.0]),
                shape=(3, 3),
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share length"):
            CooMatrix(
                rows=np.asarray([0, 1]),
                cols=np.asarray([0]),
                values=np.asarray([1.0]),
                shape=(3, 3),
            )

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=st.floats(-5, 5, allow_nan=False).map(
                lambda v: 0.0 if abs(v) < 2.5 else v
            ),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_coo_csr_roundtrip_property(self, dense):
        coo = CooMatrix.from_dense(dense)
        np.testing.assert_array_equal(coo.to_csr().to_dense(), dense)


class TestCsc:
    def test_from_dense_roundtrip(self):
        dense = sparse_dense(seed=2)
        csc = CscMatrix.from_dense(dense)
        np.testing.assert_array_equal(csc.to_dense(), dense)

    def test_column_access(self):
        dense = np.zeros((4, 3))
        dense[1, 2] = 5.0
        dense[3, 2] = 7.0
        csc = CscMatrix.from_dense(dense)
        rows, values = csc.column(2)
        assert rows.tolist() == [1, 3]
        assert values.tolist() == [5.0, 7.0]

    def test_to_csr(self):
        dense = sparse_dense(seed=3)
        np.testing.assert_array_equal(
            CscMatrix.from_dense(dense).to_csr().to_dense(), dense
        )

    def test_invalid_col_ptr(self):
        with pytest.raises(ValueError, match="col_ptr"):
            CscMatrix(
                values=np.asarray([1.0]),
                row_index=np.asarray([0]),
                col_ptr=np.asarray([0, 1]),
                shape=(2, 2),
            )


class TestConversions:
    def test_csr_to_coo(self):
        dense = sparse_dense(seed=4)
        csr = CsrMatrix.from_dense(dense)
        coo = csr_to_coo(csr)
        np.testing.assert_array_equal(coo.to_dense(), dense)

    def test_csr_to_csc(self):
        dense = sparse_dense(seed=5)
        csc = csr_to_csc(CsrMatrix.from_dense(dense))
        np.testing.assert_array_equal(csc.to_dense(), dense)

    def test_full_cycle(self):
        dense = sparse_dense(seed=6)
        back = csr_to_coo(
            csr_to_csc(CsrMatrix.from_dense(dense)).to_csr()
        ).to_dense()
        np.testing.assert_array_equal(back, dense)
