"""Tests for repro.design (search, scenarios, frontiers)."""

import pytest

from repro.design import (
    ArchitectureSearch,
    HighQualityScenario,
    LowLatencyScenario,
    ModelPoint,
    build_frontier,
)
from repro.design.frontier import family_frontier
from repro.timing import NetworkTimePredictor


@pytest.fixture(scope="module")
def search():
    predictor = NetworkTimePredictor()
    return ArchitectureSearch(
        136,
        predictor,
        widths=(25, 50, 100, 200, 400),
        min_layers=2,
        max_layers=3,
    )


class TestArchitectureSearch:
    def test_enumerate_pyramidal_only(self, search):
        for cand in search.enumerate():
            widths = cand.hidden
            assert all(widths[i] >= widths[i + 1] for i in range(len(widths) - 1))

    def test_enumerate_counts(self, search):
        # Non-increasing tuples over 5 widths: C(6,2)=15 for depth 2,
        # C(7,3)=35 for depth 3.
        assert len(search.enumerate()) == 15 + 35

    def test_price_fields(self, search):
        cand = search.price((200, 100))
        assert cand.describe() == "200x100"
        assert cand.pruned_time_us < cand.dense_time_us
        assert cand.n_parameters == 136 * 200 + 200 + 200 * 100 + 100 + 100 + 1

    def test_budget_filter(self, search):
        budget = 1.0
        picked = search.within_budget(budget, pruned=True)
        assert picked
        assert all(c.pruned_time_us <= budget for c in picked)

    def test_budget_sorted_by_capacity(self, search):
        picked = search.within_budget(2.0)
        params = [c.n_parameters for c in picked]
        assert params == sorted(params, reverse=True)

    def test_dense_budget_stricter(self, search):
        dense_set = {c.hidden for c in search.within_budget(1.0, pruned=False)}
        pruned_set = {c.hidden for c in search.within_budget(1.0, pruned=True)}
        assert dense_set <= pruned_set

    def test_max_candidates(self, search):
        assert len(search.within_budget(10.0, max_candidates=3)) == 3

    def test_invalid_budget(self, search):
        with pytest.raises(ValueError):
            search.within_budget(0.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ArchitectureSearch(0)
        with pytest.raises(ValueError):
            ArchitectureSearch(10, min_layers=3, max_layers=2)


def points():
    return [
        ModelPoint("f-large", "forest", 0.52, 8.2),
        ModelPoint("f-mid", "forest", 0.51, 3.0),
        ModelPoint("f-small", "forest", 0.50, 0.8),
        ModelPoint("n-good", "neural", 0.525, 2.6),
        ModelPoint("n-fast", "neural", 0.505, 0.4),
        ModelPoint("n-bad", "neural", 0.49, 5.0),
    ]


class TestFrontier:
    def test_family_frontier_drops_dominated(self):
        frontier = family_frontier([p for p in points() if p.family == "neural"])
        names = {p.name for p in frontier}
        assert names == {"n-good", "n-fast"}

    def test_build_frontier_split(self):
        plot = build_frontier(points())
        assert len(plot.forest_frontier) == 3
        assert len(plot.neural_frontier) == 2

    def test_neural_dominates_fraction(self):
        plot = build_frontier(points())
        # n-good (0.525, 2.6) dominates f-large and f-mid; n-fast
        # (0.505, 0.4) dominates f-small.
        assert plot.neural_dominates_fraction() == pytest.approx(1.0)

    def test_speedup_at_quality(self):
        plot = build_frontier(points())
        # n-good beats f-large's quality at 8.2/2.6 ~ 3.15x.
        assert plot.best_neural_speedup_at_quality() == pytest.approx(
            8.2 / 2.6, rel=1e-6
        )

    def test_empty_forest_family(self):
        plot = build_frontier([ModelPoint("n", "neural", 0.5, 1.0)])
        assert plot.neural_dominates_fraction() == 0.0


class TestScenarios:
    def test_high_quality_floor(self):
        scenario = HighQualityScenario(reference_ndcg10=0.52)
        assert scenario.quality_floor == pytest.approx(0.5148)
        picked = scenario.select(points())
        assert all(p.ndcg10 >= scenario.quality_floor for p in picked)

    def test_high_quality_winner_is_fastest(self):
        scenario = HighQualityScenario(reference_ndcg10=0.52)
        winner = scenario.winner(points())
        assert winner.name == "n-good"

    def test_high_quality_no_qualifier(self):
        scenario = HighQualityScenario(reference_ndcg10=0.9)
        assert scenario.winner(points()) is None

    def test_low_latency_ceiling(self):
        scenario = LowLatencyScenario(max_time_us=0.5)
        picked = scenario.select(points())
        assert [p.name for p in picked] == ["n-fast"]

    def test_low_latency_winner_most_accurate(self):
        scenario = LowLatencyScenario(max_time_us=3.0)
        assert scenario.winner(points()).name == "n-good"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HighQualityScenario(reference_ndcg10=0.5, fraction=0.0)
        with pytest.raises(ValueError):
            LowLatencyScenario(max_time_us=0.0)
