"""Tests for repro.utils.pareto, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.pareto import dominates, pareto_frontier


class TestParetoFrontier:
    def test_single_point(self):
        assert pareto_frontier([1.0], [1.0]).tolist() == [0]

    def test_dominated_point_excluded(self):
        # Point 1 has lower quality and higher cost: dominated.
        idx = pareto_frontier([0.9, 0.5], [1.0, 2.0])
        assert idx.tolist() == [0]

    def test_tradeoff_keeps_both(self):
        idx = pareto_frontier([0.9, 0.5], [2.0, 1.0])
        assert sorted(idx.tolist()) == [0, 1]

    def test_equal_quality_keeps_cheapest(self):
        idx = pareto_frontier([0.9, 0.9], [2.0, 1.0])
        assert idx.tolist() == [1]

    def test_sorted_by_quality(self):
        idx = pareto_frontier([0.5, 0.9, 0.7], [1.0, 3.0, 2.0])
        q = np.asarray([0.5, 0.9, 0.7])[idx]
        assert list(q) == sorted(q)

    def test_empty_input(self):
        assert len(pareto_frontier([], [])) == 0

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            pareto_frontier([1.0], [1.0, 2.0])

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1, allow_nan=False),
                st.floats(0.01, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_frontier_points_are_non_dominated(self, points):
        q = np.asarray([p[0] for p in points])
        c = np.asarray([p[1] for p in points])
        idx = set(pareto_frontier(q, c).tolist())
        for i in idx:
            for j in range(len(points)):
                if j != i:
                    assert not dominates(q[j], c[j], q[i], c[i])

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1, allow_nan=False),
                st.floats(0.01, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_every_point_dominated_by_or_on_frontier(self, points):
        q = np.asarray([p[0] for p in points])
        c = np.asarray([p[1] for p in points])
        idx = pareto_frontier(q, c)
        for j in range(len(points)):
            covered = any(
                i == j
                or dominates(q[i], c[i], q[j], c[j])
                or (q[i] == q[j] and c[i] == c[j])
                for i in idx
            )
            assert covered


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates(0.9, 1.0, 0.8, 2.0)

    def test_equal_points_do_not_dominate(self):
        assert not dominates(0.5, 1.0, 0.5, 1.0)

    def test_better_quality_equal_cost(self):
        assert dominates(0.9, 1.0, 0.8, 1.0)

    def test_tradeoff_does_not_dominate(self):
        assert not dominates(0.9, 3.0, 0.8, 1.0)
