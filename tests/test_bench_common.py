"""Tests for benchmarks._common (the harness's emit helper)."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from benchmarks import _common  # noqa: E402


class TestEmit:
    @pytest.fixture(autouse=True)
    def redirect_results(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_common, "RESULTS_DIR", tmp_path)
        self.results_dir = tmp_path

    def test_writes_file_and_returns_text(self, capsys):
        text = _common.emit(
            "demo",
            ["a", "b"],
            [(1, 2.5)],
            title="Demo table",
            notes="a note",
        )
        assert "Demo table" in text
        assert "a note" in text
        saved = (self.results_dir / "demo.txt").read_text()
        assert saved.strip() == text.strip()
        assert "Demo table" in capsys.readouterr().out

    def test_no_notes(self):
        text = _common.emit("plain", ["x"], [(1,)], title="T")
        assert text.endswith("1")

    def test_creates_results_dir(self, monkeypatch, tmp_path):
        nested = tmp_path / "does" / "not"
        nested.parent.mkdir()
        monkeypatch.setattr(_common, "RESULTS_DIR", nested)
        _common.emit("x", ["h"], [(1,)], title="T")
        assert (nested / "x.txt").exists()
