"""Predicted-vs-measured drift, bounded stats, and overhead guards.

ISSUE satellites: ``ServiceStats`` must stay bounded and validated, the
drift series must cover the deployment backends, scores must be
bit-identical with tracing on or off, and the disabled tracer must cost
(next to) nothing on the ``BatchEngine.score`` hot path.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.exceptions import ReproError
from repro.runtime import BatchEngine, ServiceStats, make_scorer
from repro.runtime.batching import LATENCY_RESERVOIR_CAPACITY
from repro.serving import ScoringService


class TestServiceStatsBounded:
    def test_memory_bounded_under_heavy_traffic(self):
        stats = ServiceStats()
        for _ in range(3 * LATENCY_RESERVOIR_CAPACITY):
            stats.record(10, 0.001)
        assert stats.requests == 3 * LATENCY_RESERVOIR_CAPACITY
        # The latency store is a fixed reservoir, not a per-request list.
        assert stats._latency_us._reservoir.shape == (
            LATENCY_RESERVOIR_CAPACITY,
        )
        assert stats.p50_us == pytest.approx(1000.0)

    def test_percentile_api_unchanged(self):
        stats = ServiceStats()
        for ms in (1, 2, 3, 4, 5):
            stats.record(1, ms / 1000.0)
        summary = stats.latency_summary()
        assert set(summary) == {"p50_us", "p95_us", "p99_us"}
        assert summary["p50_us"] == pytest.approx(3000.0)
        assert stats.latency_percentile_us(0) == pytest.approx(1000.0)
        assert stats.latency_percentile_us(100) == pytest.approx(5000.0)

    def test_empty_stats(self):
        stats = ServiceStats()
        assert np.isnan(stats.p50_us)
        assert np.isnan(stats.measured_us_per_doc)
        assert np.isnan(stats.drift_pct)


class TestServiceStatsValidation:
    def test_rejects_non_positive_docs(self):
        stats = ServiceStats()
        with pytest.raises(ReproError, match="at least one document"):
            stats.record(0, 0.1)
        with pytest.raises(ReproError, match="at least one document"):
            stats.record(-5, 0.1)

    def test_rejects_bad_seconds(self):
        stats = ServiceStats()
        with pytest.raises(ReproError, match="finite and >= 0"):
            stats.record(1, -0.1)
        with pytest.raises(ReproError, match="finite and >= 0"):
            stats.record(1, float("nan"))

    def test_rejects_out_of_range_percentile(self):
        stats = ServiceStats()
        stats.record(1, 0.001)
        with pytest.raises(ReproError, match=r"\[0, 100\]"):
            stats.latency_percentile_us(-0.1)
        with pytest.raises(ReproError, match=r"\[0, 100\]"):
            stats.latency_percentile_us(101)

    def test_failed_record_leaves_counters_untouched(self):
        stats = ServiceStats()
        with pytest.raises(ReproError):
            stats.record(0, 0.1)
        assert stats.requests == 0 and stats.documents == 0


class TestDriftSeries:
    def test_engine_populates_backend_series(
        self, obs_clean, small_forest, tiny_dataset
    ):
        engine = BatchEngine(make_scorer(small_forest), max_batch_size=64)
        for lo in range(0, 120, 40):
            engine.score(tiny_dataset.features[lo : lo + 40])
        report = obs.drift_report()
        row = report.row("quickscorer")
        assert row is not None
        assert row.requests == 3 and row.documents == 120
        assert row.predicted_us_per_doc == pytest.approx(
            engine.stats.predicted_us_per_doc
        )
        assert row.measured_us_per_doc > 0
        assert np.isfinite(row.drift_pct)
        assert "quickscorer" in report.render()

    def test_stats_drift_summary_consistent(
        self, obs_clean, small_forest, tiny_dataset
    ):
        service = ScoringService(small_forest)
        service.score(tiny_dataset.features[:50])
        drift = service.drift_summary()
        expected = (
            (drift["measured_us_per_doc"] - drift["predicted_us_per_doc"])
            / drift["predicted_us_per_doc"]
            * 100.0
        )
        assert drift["drift_pct"] == pytest.approx(expected)

    def test_dense_and_sparse_backends_covered(
        self, obs_clean, small_student, predictor_cache, tiny_dataset
    ):
        from repro.pruning import LevelPruner

        pruned = small_student.clone()
        LevelPruner(0.95).apply(pruned.network.first_layer)
        x = tiny_dataset.features[:40]
        ScoringService(small_student, predictor=predictor_cache).score(x)
        ScoringService(
            pruned, predictor=predictor_cache, backend="sparse-network"
        ).score(x)
        report = obs.drift_report()
        for backend in ("dense-network", "sparse-network"):
            row = report.row(backend)
            assert row is not None and row.requests == 1, backend
            assert row.measured_us_per_doc > 0

    def test_empty_report_renders(self, obs_clean):
        report = obs.drift_report()
        assert report.rows == ()
        assert "no scoring traffic" in report.render()


class TestBitIdenticalScores:
    @settings(max_examples=15, deadline=None)
    @given(
        n_docs=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_tracing_never_changes_scores(
        self, small_student, n_docs, seed
    ):
        """Hypothesis property: spans are observational only."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n_docs, small_student.input_dim))
        scorer = make_scorer(small_student, backend="dense-network")
        engine = BatchEngine(scorer, max_batch_size=16)
        previous = obs.set_tracer(obs.Tracer(enabled=False))
        try:
            silent = engine.score(x)
            obs.set_tracer(obs.Tracer(enabled=True))
            traced = engine.score(x)
        finally:
            obs.set_tracer(previous)
        np.testing.assert_array_equal(silent, traced)

    def test_quickscorer_bit_identical(
        self, obs_clean, small_forest, tiny_dataset
    ):
        x = tiny_dataset.features[:64]
        engine = BatchEngine(make_scorer(small_forest), max_batch_size=16)
        silent = engine.score(x)
        obs_clean.enable_tracing()
        traced = engine.score(x)
        np.testing.assert_array_equal(silent, traced)


class TestOverheadGuard:
    def test_noop_span_is_cheap(self, obs_clean):
        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with obs.span("guard"):
                pass
        per_call = (time.perf_counter() - start) / n
        # A disabled span is two lookups and a no-op context manager;
        # 20 µs/call is two orders of magnitude above its real cost and
        # still far below any request's scoring time.
        assert per_call < 20e-6

    def test_engine_overhead_negligible_when_disabled(
        self, obs_clean, small_forest, tiny_dataset
    ):
        """ISSUE guard: disabled-tracer BatchEngine.score ~ raw scoring."""
        x = tiny_dataset.features[:128]
        scorer = make_scorer(small_forest)
        engine = BatchEngine(scorer, max_batch_size=None)

        def best_of(fn, repeats=5):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        scorer.score(x)  # warm both paths
        engine.score(x)
        direct = best_of(lambda: scorer.score(x))
        engined = best_of(lambda: engine.score(x))
        # The engine adds validation, stats and the (no-op) span around
        # one real forest traversal; allow generous CI noise.
        assert engined < direct * 3 + 2e-3


class TestStatsCli:
    def test_repro_stats_reports_drift(self, obs_clean, capsys):
        from repro.cli import main

        assert main(["stats", "--queries", "6", "--docs", "6"]) == 0
        out = capsys.readouterr().out
        assert "Predicted vs measured scoring cost" in out
        for backend in ("quickscorer", "dense-network", "sparse-network"):
            assert backend in out
        assert "engine.score" in out  # span tree printed
