"""Property-based tests for the forest substrate (tiny data, fast)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest import FeatureBinner
from repro.forest.builder import HistogramTreeBuilder, TreeGrowthConfig


def build(x, targets, **kwargs):
    binner = FeatureBinner(max_bins=32)
    binned = binner.fit_transform(x)
    builder = HistogramTreeBuilder(
        binned, binner, TreeGrowthConfig(**kwargs) if kwargs else None
    )
    return builder.build(-np.asarray(targets, float), np.ones(len(targets)))


class TestBuilderProperties:
    @given(seed=st.integers(0, 5000), n=st.integers(30, 120))
    @settings(max_examples=30, deadline=None)
    def test_tree_structure_invariants(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(n, 3))
        y = rng.normal(size=n)
        tree = build(x, y, max_leaves=8, min_data_in_leaf=3)
        # Structural sanity: binary tree with L leaves has L-1 internal
        # nodes; every non-root node has exactly one parent.
        assert tree.n_nodes == 2 * tree.n_leaves - 1
        children = np.concatenate([tree.left, tree.right])
        children = children[children >= 0]
        assert len(children) == len(set(children.tolist()))
        assert 0 not in children  # root has no parent

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_leaf_partition_covers_all_rows(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(80, 2))
        y = rng.normal(size=80)
        tree = build(x, y, max_leaves=6, min_data_in_leaf=3)
        leaves = tree.predict_leaf(x)
        assert (leaves >= 0).all()
        assert leaves.max() < tree.n_leaves

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_prediction_constant_within_leaf(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(80, 2))
        y = rng.normal(size=80)
        tree = build(x, y, max_leaves=6, min_data_in_leaf=3)
        leaves = tree.predict_leaf(x)
        preds = tree.predict(x)
        for leaf in np.unique(leaves):
            member_preds = preds[leaves == leaf]
            assert np.allclose(member_preds, member_preds[0])

    @given(seed=st.integers(0, 5000), shift=st.floats(-5, 5))
    @settings(max_examples=20, deadline=None)
    def test_target_shift_shifts_leaf_values(self, seed, shift):
        # L2 leaf values are (regularized) means, so shifting targets
        # shifts predictions by ~the same amount when structure agrees.
        rng = np.random.default_rng(seed)
        x = rng.uniform(size=(100, 2))
        y = np.where(x[:, 0] > 0.5, 1.0, -1.0)
        t_base = build(x, y, max_leaves=2, min_data_in_leaf=5, lambda_l2=0.0)
        t_shift = build(
            x, y + shift, max_leaves=2, min_data_in_leaf=5, lambda_l2=0.0
        )
        np.testing.assert_allclose(
            t_shift.predict(x), t_base.predict(x) + shift, atol=1e-9
        )


class TestBinnerProperties:
    @given(
        seed=st.integers(0, 5000),
        max_bins=st.integers(2, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_transform_within_bounds(self, seed, max_bins):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(60, 2))
        binner = FeatureBinner(max_bins=max_bins).fit(x)
        binned = binner.transform(x)
        for f in range(2):
            assert binned[:, f].max() < binner.n_bins(f)
            assert binner.n_bins(f) <= max_bins

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_unseen_values_clamped_to_valid_bins(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(60, 1))
        binner = FeatureBinner(max_bins=16).fit(x)
        extreme = np.asarray([[x.min() - 100.0], [x.max() + 100.0]])
        binned = binner.transform(extreme)
        assert binned[0, 0] == 0
        assert binned[1, 0] == binner.n_bins(0) - 1
