"""The documented public API is importable and consistent."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.analysis",
    "repro.core",
    "repro.datasets",
    "repro.design",
    "repro.distill",
    "repro.forest",
    "repro.hardware",
    "repro.matmul",
    "repro.metrics",
    "repro.nn",
    "repro.pruning",
    "repro.quickscorer",
    "repro.runtime",
    "repro.timing",
    "repro.utils",
]


class TestPublicApi:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_items_documented(self):
        # Every public class/function re-exported at the top level carries
        # a docstring.
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_exceptions_hierarchy(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not exceptions.ReproError:
                    assert issubclass(obj, exceptions.ReproError) or obj in (
                        Exception,
                    ), name

    def test_config_and_parallel_surface_pinned(self):
        # The PR-4 API additions stay importable from both repro and
        # repro.runtime; removing any of these is a breaking change.
        for name in (
            "AsyncConfig",
            "AsyncScoringService",
            "ParallelConfig",
            "ResilienceConfig",
            "ScoreCache",
            "ServiceConfig",
            "ShardedScorer",
            "TenantConfig",
        ):
            assert name in repro.__all__, f"repro.__all__ dropped {name}"
            assert hasattr(repro, name)

    def test_runtime_all_pinned(self):
        import repro.runtime as runtime

        expected = {
            "BatchEngine",
            "FallbackChain",
            "ParallelConfig",
            "ParallelError",
            "PoolClosedError",
            "ResilienceConfig",
            "ScoreCache",
            "Scorer",
            "ServiceConfig",
            "ShardPlan",
            "ShardedScorer",
            "StubScorer",
            "make_scorer",
            "plan_shards",
            "price",
            "scorer_fingerprint",
        }
        missing = expected - set(runtime.__all__)
        assert not missing, f"repro.runtime.__all__ missing {sorted(missing)}"
        assert runtime.__all__ == sorted(runtime.__all__), (
            "repro.runtime.__all__ must stay sorted"
        )

    def test_serving_all_pinned(self):
        import repro.serving as serving

        assert set(serving.__all__) == {
            "AdmissionController",
            "AsyncConfig",
            "AsyncScoringService",
            "BudgetExceededError",
            "LifecycleConfig",
            "LifecycleManager",
            "LoadReport",
            "LoadSpec",
            "ModelRegistry",
            "ModelVersion",
            "RequestShedError",
            "ScoringService",
            "ServiceConfig",
            "ServiceStats",
            "TenantConfig",
            "TenantState",
            "TokenBucket",
            "build_schedule",
            "make_queries",
            "run_load",
            "run_load_async",
        }
        assert serving.__all__ == sorted(serving.__all__), (
            "repro.serving.__all__ must stay sorted"
        )
        for name in serving.__all__:
            assert hasattr(serving, name), f"repro.serving lacks {name}"
