"""Tests for repro.forest.tree (RegressionTree)."""

import numpy as np
import pytest

from repro.forest import RegressionTree
from repro.forest.tree import NO_CHILD


def make_tree():
    """x0 <= 0.5 ? (x1 <= 0.3 ? 1.0 : 2.0) : 3.0"""
    return RegressionTree(
        feature=np.asarray([0, 1, -1, -1, -1]),
        threshold=np.asarray([0.5, 0.3, np.nan, np.nan, np.nan]),
        left=np.asarray([1, 3, NO_CHILD, NO_CHILD, NO_CHILD]),
        right=np.asarray([2, 4, NO_CHILD, NO_CHILD, NO_CHILD]),
        value=np.asarray([0.0, 0.0, 3.0, 1.0, 2.0]),
    )


class TestStructure:
    def test_counts(self):
        tree = make_tree()
        assert tree.n_nodes == 5
        assert tree.n_leaves == 3

    def test_leaf_order_left_to_right(self):
        # In-order leaves: node3 (x0<=.5,x1<=.3), node4, node2.
        assert make_tree().leaf_indices().tolist() == [3, 4, 2]

    def test_internal_nodes(self):
        assert make_tree().internal_nodes().tolist() == [0, 1]

    def test_depth(self):
        assert make_tree().depth() == 2
        assert RegressionTree.single_leaf(1.0).depth() == 0

    def test_single_leaf(self):
        stump = RegressionTree.single_leaf(5.0)
        assert stump.n_leaves == 1
        assert stump.predict(np.zeros((3, 2))).tolist() == [5.0] * 3

    def test_split_points(self):
        pts = make_tree().split_points(n_features=3)
        assert pts[0].tolist() == [0.5]
        assert pts[1].tolist() == [0.3]
        assert pts[2].tolist() == []

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree(
                feature=np.asarray([]),
                threshold=np.asarray([]),
                left=np.asarray([]),
                right=np.asarray([]),
                value=np.asarray([]),
            )

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="share length"):
            RegressionTree(
                feature=np.asarray([0]),
                threshold=np.asarray([0.5, 0.1]),
                left=np.asarray([NO_CHILD]),
                right=np.asarray([NO_CHILD]),
                value=np.asarray([0.0]),
            )


class TestPrediction:
    def test_all_paths(self):
        tree = make_tree()
        x = np.asarray(
            [
                [0.4, 0.2],  # left, left -> 1.0
                [0.4, 0.9],  # left, right -> 2.0
                [0.9, 0.0],  # right -> 3.0
                [0.5, 0.3],  # boundary: <= goes left-left -> 1.0
            ]
        )
        np.testing.assert_array_equal(tree.predict(x), [1.0, 2.0, 3.0, 1.0])

    def test_vectorized_matches_scalar(self, rng):
        tree = make_tree()
        x = rng.uniform(size=(50, 2))
        batch = tree.predict(x)
        scalar = [tree.predict_single(row) for row in x]
        np.testing.assert_allclose(batch, scalar)

    def test_predict_leaf_positions(self):
        tree = make_tree()
        x = np.asarray([[0.4, 0.2], [0.4, 0.9], [0.9, 0.0]])
        assert tree.predict_leaf(x).tolist() == [0, 1, 2]

    def test_predict_leaf_consistent_with_value(self, rng):
        tree = make_tree()
        x = rng.uniform(size=(30, 2))
        leaf_pos = tree.predict_leaf(x)
        leaf_values = tree.value[tree.leaf_indices()]
        np.testing.assert_allclose(leaf_values[leaf_pos], tree.predict(x))
