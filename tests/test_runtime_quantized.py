"""Tests for quantized int8/int16 and block-sparse compiled kernels.

Covers the quantized side of ``repro.runtime.compile``: the declared
score-tolerance contract against the float64 reference, exact-integer
chunk invariance under ``stable=True``, per-layer kernel arbitration
(including the forced-override error paths), fingerprint separation of
quantized vs float plans in :class:`~repro.runtime.ScoreCache`, the
:func:`~repro.nn.quantization.quantized_speedup_estimate` ceiling
against measured plan timings, and the extended ``repro compile`` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.network import FeedForwardNetwork
from repro.nn.quantization import quantized_speedup_estimate
from repro.pruning import ColumnBlockPruner
from repro.runtime import (
    CompileError,
    PricingContext,
    ScoreCache,
    compile_network,
    make_scorer,
    reference_scores,
)
from repro.runtime.compile import (
    BLOCK_KERNEL,
    DENSE_KERNEL,
    INT8_KERNEL,
    INT8_MAX_IN_WIDTH,
    INT16_KERNEL,
    SPARSE_KERNEL,
)


@pytest.fixture(scope="module")
def context(predictor_cache):
    return PricingContext(predictor=predictor_cache)


def _network(
    hidden=(16, 8), input_dim=12, sparsity=0.0, seed=0, block_cols=4
) -> FeedForwardNetwork:
    network = FeedForwardNetwork(input_dim, hidden, seed=seed)
    if sparsity > 0:
        ColumnBlockPruner(sparsity, block_cols=block_cols).apply(
            network.first_layer
        )
        network.apply_masks()
    return network


ARCHITECTURES = [(8,), (16, 8), (24, 12, 6)]


# ----------------------------------------------------------------------
# Tolerance contract (hypothesis property a)
# ----------------------------------------------------------------------
class TestToleranceContract:
    @given(
        arch=st.sampled_from(ARCHITECTURES),
        n=st.sampled_from([1, 2, 17, 64]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_int16_within_declared_tolerance(self, context, arch, n, seed):
        # Calibration and test batches come from the same distribution;
        # the declared tolerance (3x the measured calibration deviation,
        # floored) must bound the deviation on fresh batches too.
        network = _network(arch, seed=seed)
        rng = np.random.default_rng(seed)
        calibration = rng.standard_normal((128, network.input_dim))
        plan = compile_network(
            network,
            context=context,
            dtype="float32",
            quantize="int16",
            calibration=calibration,
        )
        assert plan.score_tolerance is not None and plan.score_tolerance > 0
        features = rng.standard_normal((n, network.input_dim))
        deviation = np.abs(
            plan.score(features) - reference_scores(network, plan, features)
        )
        assert deviation.max() <= plan.score_tolerance

    def test_int8_within_declared_tolerance(self, context, rng):
        network = _network((24, 12, 6), sparsity=0.5)
        plan = compile_network(
            network, context=context, dtype="float32", quantize="int8"
        )
        features = rng.standard_normal((96, network.input_dim))
        deviation = np.abs(
            plan.score(features) - reference_scores(network, plan, features)
        )
        assert deviation.max() <= plan.score_tolerance

    def test_forced_tolerance_is_published_or_raises(self, context):
        network = _network((16, 8))
        plan = compile_network(
            network,
            context=context,
            dtype="float32",
            quantize="int16",
            tolerance=0.5,
        )
        assert plan.score_tolerance == 0.5
        with pytest.raises(CompileError, match="above the declared"):
            compile_network(
                network,
                context=context,
                dtype="float32",
                quantize="int8",
                tolerance=1e-12,
            )

    def test_auto_meets_budget(self, context, rng):
        network = _network((24, 12, 6), sparsity=0.5)
        budget = 0.05
        plan = compile_network(
            network,
            context=context,
            dtype="float32",
            quantize="auto",
            tolerance=budget,
        )
        assert plan.score_tolerance == budget
        features = rng.standard_normal((64, network.input_dim))
        deviation = np.abs(
            plan.score(features) - reference_scores(network, plan, features)
        )
        assert deviation.max() <= budget

    def test_float_plans_declare_no_tolerance(self, context):
        plan = compile_network(_network(), context=context, dtype="float32")
        assert plan.score_tolerance is None
        assert plan.kernel_counts().keys() <= {DENSE_KERNEL, SPARSE_KERNEL}


# ----------------------------------------------------------------------
# Chunk invariance (hypothesis property b)
# ----------------------------------------------------------------------
class TestStableQuantizedInvariance:
    @given(
        quantize=st.sampled_from(["int8", "int16"]),
        n=st.integers(1, 48),
        split=st.integers(1, 48),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_stable_quantized_is_chunk_invariant(
        self, context, quantize, n, split, seed
    ):
        # Exact integer accumulation makes the quantized kernels
        # order-independent; stable=True extends the guarantee to the
        # float layers, so the whole plan must be shard-invariant.
        network = _network((16, 8), seed=seed)
        plan = compile_network(
            network,
            context=context,
            dtype="float32",
            quantize=quantize,
            stable=True,
        )
        features = np.random.default_rng(seed).standard_normal(
            (n, network.input_dim)
        )
        whole = plan.score(features)
        parts = [
            plan.score(features[i : i + split]) for i in range(0, n, split)
        ]
        np.testing.assert_array_equal(np.concatenate(parts), whole)


# ----------------------------------------------------------------------
# Per-layer arbitration and forced overrides
# ----------------------------------------------------------------------
class TestKernelArbitration:
    def test_all_kernel_names_accepted_as_overrides(self, context):
        network = _network((16, 8), input_dim=16, sparsity=0.75)
        plan = compile_network(
            network,
            context=context,
            dtype="float32",
            kernels=[BLOCK_KERNEL, INT8_KERNEL, INT16_KERNEL],
            block_shape=(16, 4),
        )
        assert [lp.kernel for lp in plan.layers] == [
            BLOCK_KERNEL,
            INT8_KERNEL,
            INT16_KERNEL,
        ]

    def test_unknown_override_rejected(self, context):
        with pytest.raises(CompileError, match="unknown kernel"):
            compile_network(
                _network((16, 8)),
                context=context,
                kernels=["dense-gemm", "int4-gemm", None],
            )

    def test_forced_int8_beyond_accumulation_bound_raises(self, context):
        network = FeedForwardNetwork(8, (INT8_MAX_IN_WIDTH + 1, 4), seed=0)
        with pytest.raises(CompileError, match="exact-accumulation bound"):
            compile_network(
                network,
                context=context,
                dtype="float32",
                kernels=[None, INT8_KERNEL, None],
            )

    def test_int8_falls_back_to_int16_on_wide_layers(self, context):
        # quantize="int8" must silently widen the layer whose input
        # exceeds the exact-accumulation bound instead of raising.
        network = FeedForwardNetwork(8, (INT8_MAX_IN_WIDTH + 1, 4), seed=0)
        plan = compile_network(
            network, context=context, dtype="float32", quantize="int8"
        )
        wide = plan.layers[1]
        assert wide.in_width > INT8_MAX_IN_WIDTH
        assert wide.kernel == INT16_KERNEL and wide.bits == 16

    def test_forced_block_without_stored_blocks_raises(self, context):
        network = _network((8,), input_dim=8)
        network.first_layer.weight.data[:] = 0.0
        with pytest.raises(CompileError, match="no stored blocks"):
            compile_network(
                network, context=context, kernels=[BLOCK_KERNEL, None]
            )

    def test_explicit_float_kernel_exempts_layer_from_quantize(
        self, context
    ):
        network = _network((16, 8))
        free = compile_network(
            network, context=context, dtype="float32", quantize="int8"
        )
        assert free.layers[-1].bits == 8  # quantized when unforced
        forced = compile_network(
            network,
            context=context,
            dtype="float32",
            quantize="int8",
            kernels=[None, None, DENSE_KERNEL],
        )
        assert forced.layers[-1].kernel == DENSE_KERNEL
        assert forced.layers[-1].bits is None

    def test_sparse_layers_stay_float_under_quantize(self, context):
        network = _network((64, 8), input_dim=64, sparsity=0.9, block_cols=8)
        plan = compile_network(
            network,
            context=context,
            dtype="float32",
            quantize="int8",
            block_sparse=True,
        )
        for lp in plan.layers:
            if lp.kernel in (SPARSE_KERNEL, BLOCK_KERNEL):
                assert lp.bits is None

    def test_kernel_counts_sums_to_layers(self, context):
        network = _network((24, 12, 6), sparsity=0.5)
        plan = compile_network(
            network, context=context, dtype="float32", quantize="int8"
        )
        counts = plan.kernel_counts()
        assert sum(counts.values()) == network.n_layers
        assert all(n > 0 for n in counts.values())


# ----------------------------------------------------------------------
# ScoreCache separation
# ----------------------------------------------------------------------
class TestScoreCacheSeparation:
    def test_int8_and_float_plans_never_share_entries(
        self, small_student, rng
    ):
        # Regression: a quantized plan's fingerprint must differ from
        # the float plan's for the same weights, so a shared ScoreCache
        # keyed by fingerprint can never serve one plan's (approximate)
        # scores to the other.
        from repro.runtime.parallel import _row_digests

        f32 = make_scorer(small_student, compiled=True, plan_dtype="float32")
        int8 = make_scorer(
            small_student, quantize="int8", plan_dtype="float32"
        )
        assert f32.fingerprint() != int8.fingerprint()

        features = rng.standard_normal((16, 136))
        digests = _row_digests(np.asarray(features, dtype=np.float64))
        cache = ScoreCache(capacity=256)
        cache.put_many(int8.fingerprint(), digests, int8.score(features))

        _, hits = cache.get_many(f32.fingerprint(), digests)
        assert not hits.any(), (
            "float32 lookups hit entries cached under the int8 plan"
        )
        values, hits = cache.get_many(int8.fingerprint(), digests)
        assert hits.all()
        np.testing.assert_array_equal(values, int8.score(features))

    def test_invalidating_one_plan_keeps_the_other(
        self, small_student, rng
    ):
        from repro.runtime.parallel import _row_digests

        f32 = make_scorer(small_student, compiled=True, plan_dtype="float32")
        int8 = make_scorer(
            small_student, quantize="int8", plan_dtype="float32"
        )
        features = rng.standard_normal((8, 136))
        digests = _row_digests(np.asarray(features, dtype=np.float64))
        cache = ScoreCache(capacity=64)
        cache.put_many(f32.fingerprint(), digests, f32.score(features))
        cache.put_many(int8.fingerprint(), digests, int8.score(features))
        assert cache.invalidate(int8.fingerprint()) == len(digests)
        _, hits = cache.get_many(f32.fingerprint(), digests)
        assert hits.all()


# ----------------------------------------------------------------------
# Speedup-estimate ceiling
# ----------------------------------------------------------------------
class TestSpeedupEstimateCeiling:
    def test_estimate_bounds_measured_plan_speedup(self, context):
        # The SIMD lane-ratio estimate is a ceiling: real kernels pay
        # quantize/dequantize overhead, so the measured int8-over-f32
        # plan speedup must not exceed the FLOPs-weighted estimate.
        import time

        network = _network((400, 200, 100), input_dim=136, seed=3)
        f32 = compile_network(network, context=context, dtype="float32")
        quant = compile_network(
            network, context=context, dtype="float32", quantize="int8"
        )
        estimate = quantized_speedup_estimate(
            network, bits_per_layer=[lp.bits for lp in quant.layers]
        )
        assert estimate > 1.0

        features = np.random.default_rng(0).standard_normal((256, 136))

        def best_of(plan, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                plan.score(features)
                best = min(best, time.perf_counter() - start)
            return best

        measured = best_of(f32) / best_of(quant)
        assert measured <= estimate, (
            f"measured int8 speedup {measured:.2f}x exceeds the "
            f"theoretical estimate {estimate:.2f}x"
        )

    def test_estimate_weights_layers_by_flops(self):
        network = _network((8, 8), input_dim=8)
        all_int8 = quantized_speedup_estimate(
            network, bits_per_layer=[8, 8, 8]
        )
        mixed = quantized_speedup_estimate(
            network, bits_per_layer=[8, 16, None]
        )
        assert all_int8 == pytest.approx(4.0)
        assert 1.0 < mixed < all_int8

    def test_bits_per_layer_length_validated(self):
        network = _network((8,), input_dim=8)
        with pytest.raises(ValueError, match="bits_per_layer"):
            quantized_speedup_estimate(network, bits_per_layer=[8])


# ----------------------------------------------------------------------
# CLI probe
# ----------------------------------------------------------------------
class TestCliProbe:
    def test_compile_command_prints_quantized_plan(self, capsys):
        from repro.cli import main

        main(
            [
                "compile",
                "--architecture",
                "32x16",
                "--features",
                "24",
                "--sparsity",
                "0.9",
                "--pruner",
                "column-block",
                "--dtype",
                "float32",
                "--quantize",
                "int8",
                "--block-sparse",
                "--block-shape",
                "32x8",
                "--batch",
                "64",
                "--repeats",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "int8" in out
        assert "declared score tolerance" in out
        assert "fingerprint" in out
        assert "dtype" in out and "fill" in out

    def test_compile_command_rejects_bad_block_shape(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["compile", "--block-shape", "64by8"])
