"""Tests for repro.analysis."""

import numpy as np
import pytest

from repro.analysis import (
    feature_selection_agreement,
    first_layer_feature_usage,
    score_agreement,
    top_feature_overlap,
)
from repro.nn import FeedForwardNetwork
from repro.pruning import LevelPruner


class TestFirstLayerUsage:
    def test_unpruned_uses_everything(self):
        net = FeedForwardNetwork(10, (8,), seed=0)
        usage = first_layer_feature_usage(net)
        np.testing.assert_array_equal(usage, 8.0)

    def test_pruned_counts_survivors(self):
        net = FeedForwardNetwork(4, (3,), seed=0)
        mask = np.zeros((3, 4))
        mask[:, 0] = 1.0  # only feature 0 survives
        mask[1, 2] = 1.0  # plus one weight on feature 2
        net.first_layer.set_mask(mask)
        usage = first_layer_feature_usage(net)
        np.testing.assert_array_equal(usage, [3.0, 0.0, 1.0, 0.0])

    def test_accepts_student(self, small_student):
        usage = first_layer_feature_usage(small_student)
        assert usage.shape == (136,)


class TestSelectionAgreement:
    def test_pruned_student_matches_forest(
        self, small_student, small_forest
    ):
        # Prune the first layer by magnitude: the surviving columns
        # should correlate with the forest's split importance, because
        # the student learned from the forest's scores.
        probe = small_student.clone()
        LevelPruner(0.95).apply(probe.network.first_layer)
        rho = feature_selection_agreement(probe, small_forest)
        assert rho > 0.1

    def test_unpruned_layer_is_nan(self, small_student, small_forest):
        rho = feature_selection_agreement(small_student, small_forest)
        assert np.isnan(rho)

    def test_feature_count_mismatch(self, small_forest):
        net = FeedForwardNetwork(7, (4,), seed=0)
        with pytest.raises(ValueError, match="input features"):
            feature_selection_agreement(net, small_forest)

    def test_top_overlap_bounds(self, small_student, small_forest):
        probe = small_student.clone()
        LevelPruner(0.9).apply(probe.network.first_layer)
        overlap = top_feature_overlap(probe, small_forest, k=10)
        assert 0.0 <= overlap <= 1.0

    def test_top_overlap_invalid_k(self, small_student, small_forest):
        with pytest.raises(ValueError):
            top_feature_overlap(small_student, small_forest, k=0)


class TestScoreAgreement:
    def test_identical_scores_tau_one(self, tiny_dataset, rng):
        scores = rng.normal(size=tiny_dataset.n_docs)
        assert score_agreement(tiny_dataset, scores, scores) == pytest.approx(1.0)

    def test_reversed_scores_tau_minus_one(self, tiny_dataset, rng):
        scores = rng.normal(size=tiny_dataset.n_docs)
        assert score_agreement(tiny_dataset, scores, -scores) == pytest.approx(
            -1.0
        )

    def test_independent_scores_near_zero(self, tiny_dataset, rng):
        a = rng.normal(size=tiny_dataset.n_docs)
        b = rng.normal(size=tiny_dataset.n_docs)
        assert abs(score_agreement(tiny_dataset, a, b)) < 0.2

    def test_student_agrees_with_teacher(
        self, tiny_splits, small_student, small_forest
    ):
        _, _, test = tiny_splits
        tau = score_agreement(
            test,
            small_student.predict(test.features),
            small_forest.predict(test.features),
        )
        assert tau > 0.3

    def test_length_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            score_agreement(tiny_dataset, np.zeros(3), np.zeros(3))
