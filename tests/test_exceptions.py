"""Every exception the library defines derives from ReproError.

One root type is the contract callers program against (``except
ReproError``).  This walks every ``repro`` module and verifies no
exception class escaped the hierarchy.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro
from repro.exceptions import ReproError


def _iter_repro_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        # Smoke entry points run workloads on import-as-__main__ only,
        # but skip anything non-importable defensively.
        yield info.name


def _defined_exceptions():
    """(module, name, class) for every exception defined under repro."""
    seen = set()
    for module_name in _iter_repro_modules():
        module = importlib.import_module(module_name)
        for name in dir(module):
            obj = getattr(module, name)
            if not (isinstance(obj, type) and issubclass(obj, BaseException)):
                continue
            if not obj.__module__.startswith("repro"):
                continue  # re-exported builtins / third-party
            if obj in seen:
                continue
            seen.add(obj)
            yield obj.__module__, name, obj


class TestExceptionHierarchy:
    def test_all_exceptions_derive_from_repro_error(self):
        offenders = [
            f"{module}.{name}"
            for module, name, obj in _defined_exceptions()
            if obj is not ReproError and not issubclass(obj, ReproError)
        ]
        assert not offenders, (
            "exception classes outside the ReproError hierarchy: "
            + ", ".join(sorted(offenders))
        )

    def test_hierarchy_is_nonempty(self):
        """The walk actually finds the known exception types."""
        found = {name for _, name, _ in _defined_exceptions()}
        assert {
            "BudgetExceededError",
            "ConfigError",
            "ParallelError",
            "PoolClosedError",
            "ResilienceError",
        } <= found

    @pytest.mark.parametrize(
        "name",
        ["ParallelError", "PoolClosedError", "ConfigError"],
    )
    def test_new_exceptions_catchable_as_repro_error(self, name):
        from repro import exceptions
        from repro.runtime import parallel

        cls = getattr(parallel, name, None) or getattr(exceptions, name)
        assert issubclass(cls, ReproError)
