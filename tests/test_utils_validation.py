"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_positive,
    check_same_length,
)


class TestCheckArray2d:
    def test_accepts_lists(self):
        out = check_array_2d([[1, 2], [3, 4]], "x")
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array_2d([1, 2, 3], "x")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_array_2d(np.empty((0, 3)), "x")

    def test_custom_dtype(self):
        out = check_array_2d([[1, 2]], "x", dtype=np.int64)
        assert out.dtype == np.int64


class TestCheckArray1d:
    def test_accepts_list(self):
        out = check_array_1d([1.0, 2.0], "y")
        assert out.shape == (2,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_array_1d([[1.0]], "y")


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(3, "v") == 3.0

    def test_zero_rejected_strict(self):
        with pytest.raises(ValueError):
            check_positive(0, "v")

    def test_zero_ok_nonstrict(self):
        assert check_positive(0, "v", strict=False) == 0.0

    def test_negative_rejected_nonstrict(self):
        with pytest.raises(ValueError):
            check_positive(-1, "v", strict=False)


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f", inclusive=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "f", inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "f")


class TestCheckSameLength:
    def test_equal_ok(self):
        check_same_length([1, 2], [3, 4], "a", "b")

    def test_unequal_raises(self):
        with pytest.raises(ValueError, match="same length"):
            check_same_length([1], [1, 2], "a", "b")
