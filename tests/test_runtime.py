"""Tests for repro.runtime — registry, pricing, and batched execution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design.cascade import CascadeStage, EarlyExitCascade
from repro.runtime import (
    BatchEngine,
    BudgetExceededError,
    ForestShape,
    NetworkShape,
    PricingContext,
    ScorerBackend,
    UnknownBackendError,
    backend_names,
    get_backend,
    is_scorer,
    make_scorer,
    price,
    register_backend,
    unregister_backend,
)
from repro.serving import ScoringService


@pytest.fixture(scope="module")
def context(predictor_cache):
    """One pricing context over the session-calibrated predictor."""
    return PricingContext(predictor=predictor_cache)


@pytest.fixture(scope="module")
def sparse_student(small_student):
    """``small_student`` with most of its first layer zeroed."""
    student = small_student.clone()
    w = student.network.first_layer.weight.data
    rng = np.random.default_rng(0)
    w[rng.random(w.shape) < 0.9] = 0.0
    assert student.first_layer_sparsity() > 0.5
    return student


@pytest.fixture(scope="module")
def features(tiny_splits):
    return tiny_splits[2].features[:300]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_round_trip_every_backend(
        self, small_forest, small_student, sparse_student, context, features
    ):
        """Each built-in backend builds, scores, and prices via its name."""
        cascade = EarlyExitCascade(
            [CascadeStage("stub", lambda x: np.asarray(x)[:, 0], 0.5)]
        )
        models = {
            "quickscorer": (small_forest, {}),
            "quickscorer-gpu": (small_forest, {}),
            "dense-network": (small_student, {}),
            "sparse-network": (sparse_student, {}),
            "quantized-network": (small_student, {"quantized_bits": 8}),
            "cascade": (cascade, {}),
            "compiled-network": (sparse_student, {"compiled": True}),
        }
        assert set(models) == set(backend_names())
        for name, (model, opts) in models.items():
            assert get_backend(name).name == name
            scorer = make_scorer(model, backend=name, context=context, **opts)
            assert is_scorer(scorer)
            assert scorer.backend == name
            scores = scorer.score(features)
            assert scores.shape == (len(features),)
            assert scorer.predicted_us_per_doc > 0.0

    def test_auto_dispatch(
        self, small_forest, small_student, sparse_student, context
    ):
        assert (
            make_scorer(small_forest, context=context).backend == "quickscorer"
        )
        assert (
            make_scorer(small_student, context=context).backend
            == "dense-network"
        )
        assert (
            make_scorer(sparse_student, context=context).backend
            == "sparse-network"
        )
        assert (
            make_scorer(small_forest, context=context, device="gpu").backend
            == "quickscorer-gpu"
        )
        assert (
            make_scorer(
                small_student, context=context, quantized_bits=8
            ).backend
            == "quantized-network"
        )
        assert (
            make_scorer(small_student, context=context, compiled=True).backend
            == "compiled-network"
        )

    def test_unknown_model_type_raises(self, context):
        with pytest.raises(TypeError, match="unsupported model"):
            make_scorer(object(), context=context)
        with pytest.raises(TypeError, match="unsupported model"):
            make_scorer(np.zeros(3), context=context)

    def test_unknown_backend_name_raises(self, small_forest, context):
        with pytest.raises(UnknownBackendError, match="no-such"):
            make_scorer(small_forest, backend="no-such", context=context)
        with pytest.raises(UnknownBackendError):
            get_backend("no-such")
        with pytest.raises(UnknownBackendError):
            unregister_backend("no-such")

    def test_plugin_backend_wins_dispatch_then_unregisters(
        self, small_forest, context
    ):
        """A later registration shadows built-ins without touching them."""

        class Sentinel:
            def __init__(self, value):
                self.value = value

        built = make_scorer(small_forest, context=context)

        def build(model, ctx, **opts):
            class _Stub:
                backend = "stub"
                batchable = True
                input_dim = None
                predicted_us_per_doc = 0.01

                def score(self, x):
                    return np.full(len(x), model.value, dtype=np.float64)

                def describe(self):
                    return "stub scorer"

            return _Stub()

        register_backend(
            ScorerBackend(
                name="stub",
                matches=lambda m, o: isinstance(m, Sentinel),
                build=build,
                description="test stub",
            )
        )
        try:
            scorer = make_scorer(Sentinel(4.0), context=context)
            assert scorer.backend == "stub"
            np.testing.assert_array_equal(
                scorer.score(np.zeros((3, 2))), np.full(3, 4.0)
            )
            # Built-ins keep working while the plug-in is installed.
            assert (
                make_scorer(small_forest, context=context).backend
                == built.backend
            )
            with pytest.raises(ValueError, match="already registered"):
                register_backend(get_backend("stub"))
        finally:
            unregister_backend("stub")
        assert "stub" not in backend_names()


# ----------------------------------------------------------------------
# Pricing
# ----------------------------------------------------------------------
class TestPrice:
    def test_forest_price_matches_cost_model(self, small_forest, context):
        expected = context.qs_cost.scoring_time_for(small_forest)
        assert price(small_forest, context=context) == expected

    def test_forest_shape_and_duck_typed_spec(self, context):
        shape_us = price(ForestShape(878, 64), context=context)
        assert shape_us == context.qs_cost.scoring_time_us(878, 64)

        class SpecLike:
            n_trees = 878
            n_leaves = 64

        assert price(SpecLike(), context=context) == shape_us

    def test_network_shapes(self, context):
        dense = price(NetworkShape(136, (100, 50)), context=context)
        hybrid = price(
            NetworkShape(136, (100, 50), first_layer_sparsity=0.98),
            context=context,
        )
        int8 = price(
            NetworkShape(136, (100, 50), quantized_bits=8), context=context
        )
        assert 0.0 < hybrid < dense
        assert 0.0 < int8 < dense

    def test_student_prices_match_legacy_blocks(
        self, small_student, sparse_student, context, predictor_cache
    ):
        """The unified prices equal the predictors' direct answers."""
        from repro.matmul import CsrMatrix

        dense_us = price(small_student, context=context, backend="dense-network")
        report = predictor_cache.predict(
            small_student.input_dim, small_student.hidden
        )
        assert dense_us == float(report.dense_total_us_per_doc)

        sparse_us = price(
            sparse_student, context=context, backend="sparse-network"
        )
        first = CsrMatrix.from_dense(
            sparse_student.network.first_layer.weight.data
        )
        report = predictor_cache.predict(
            sparse_student.input_dim,
            sparse_student.hidden,
            first_layer_matrix=first,
        )
        assert sparse_us == float(report.hybrid_total_us_per_doc)

    def test_gpu_price_differs_from_cpu(self, small_forest, context):
        cpu = price(small_forest, context=context)
        gpu = price(small_forest, context=context, device="gpu")
        assert gpu != cpu and gpu > 0.0


# ----------------------------------------------------------------------
# BatchEngine + ScoringService
# ----------------------------------------------------------------------
class TestBatchEngine:
    def test_budget_rejects_slow_sparse_student(self, sparse_student, context):
        """ISSUE satellite: budget rejection flows through shared pricing."""
        predicted = price(sparse_student, context=context)
        with pytest.raises(BudgetExceededError, match="exceeds"):
            ScoringService(
                sparse_student,
                budget_us_per_doc=predicted / 2,
                context=context,
            )
        service = ScoringService(
            sparse_student, budget_us_per_doc=predicted * 2, context=context
        )
        assert service.scorer.backend == "sparse-network"
        assert service.stats.predicted_us_per_doc == predicted

    def test_invalid_batch_size(self, small_forest, context):
        scorer = make_scorer(small_forest, context=context)
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchEngine(scorer, max_batch_size=0)

    def test_stats_percentiles(self, small_forest, context, features):
        engine = BatchEngine(
            make_scorer(small_forest, context=context), max_batch_size=64
        )
        for lo in range(0, 280, 40):
            engine.score(features[lo : lo + 40])
        stats = engine.stats
        assert stats.requests == 7
        assert stats.documents == 280
        assert stats.mean_docs_per_request == pytest.approx(40.0)
        summary = stats.latency_summary()
        assert (
            0.0
            < summary["p50_us"]
            <= summary["p95_us"]
            <= summary["p99_us"]
        )
        assert stats.wall_seconds > 0.0

    def test_top_k_matches_full_argsort(self, small_forest, context, features):
        engine = BatchEngine(make_scorer(small_forest, context=context))
        scores = engine.scorer.score(features)
        full = np.argsort(-scores, kind="stable")
        for k in (1, 5, len(features) // 2, len(features), len(features) + 10):
            np.testing.assert_array_equal(
                engine.top_k(features, k), full[:k]
            )
        with pytest.raises(ValueError, match="k must be positive"):
            engine.top_k(features, 0)

    def test_cascade_served_whole(self, small_forest, context, features):
        """Non-batchable scorers receive each request in one piece."""
        cascade = EarlyExitCascade(
            [
                CascadeStage(
                    "forest",
                    make_scorer(small_forest, context=context).score,
                    1.0,
                    keep_fraction=0.3,
                ),
                CascadeStage("copy", lambda x: np.asarray(x)[:, 0], 0.1),
            ]
        )
        engine = BatchEngine(
            make_scorer(cascade, context=context), max_batch_size=7
        )
        np.testing.assert_array_equal(
            engine.score(features), cascade.score_query(features)
        )


class TestBatchInvariance:
    """ISSUE acceptance: batched == unbatched, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=310))
    def test_network_scores_bit_identical(
        self, batch, small_student, context, features
    ):
        scorer = make_scorer(small_student, context=context)
        engine = BatchEngine(scorer, max_batch_size=batch)
        np.testing.assert_array_equal(
            engine.score(features), scorer.score(features)
        )

    @settings(max_examples=25, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=310))
    def test_forest_scores_bit_identical(
        self, batch, small_forest, context, features
    ):
        scorer = make_scorer(small_forest, context=context)
        engine = BatchEngine(scorer, max_batch_size=batch)
        np.testing.assert_array_equal(
            engine.score(features), scorer.score(features)
        )

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=310))
    def test_sparse_scores_bit_identical(
        self, batch, sparse_student, context, features
    ):
        scorer = make_scorer(sparse_student, context=context)
        engine = BatchEngine(scorer, max_batch_size=batch)
        np.testing.assert_array_equal(
            engine.score(features), scorer.score(features)
        )

    def test_none_batch_size_disables_splitting(
        self, small_student, context, features
    ):
        scorer = make_scorer(small_student, context=context)
        engine = BatchEngine(scorer, max_batch_size=None)
        np.testing.assert_array_equal(
            engine.score(features), scorer.score(features)
        )

    def test_runtime_scores_match_model_predict(
        self, small_student, context, features
    ):
        """stable_forward agrees with the network's own forward pass."""
        scorer = make_scorer(small_student, context=context)
        np.testing.assert_allclose(
            scorer.score(features),
            small_student.predict(features),
            rtol=1e-9,
            atol=1e-12,
        )
