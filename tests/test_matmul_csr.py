"""Tests for repro.matmul.csr, including hypothesis round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matmul import CsrMatrix


def random_sparse(m, k, density, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(m, k)) * (rng.random((m, k)) < density)
    return dense


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = random_sparse(10, 8, 0.2)
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)

    def test_nnz_and_sparsity(self):
        dense = np.zeros((4, 5))
        dense[0, 1] = 1.0
        dense[2, 3] = 2.0
        csr = CsrMatrix.from_dense(dense)
        assert csr.nnz == 2
        assert csr.sparsity == pytest.approx(1 - 2 / 20)

    def test_all_zero_matrix(self):
        csr = CsrMatrix.from_dense(np.zeros((3, 3)))
        assert csr.nnz == 0
        assert csr.n_active_rows == 0
        assert csr.n_active_cols == 0

    def test_invalid_row_ptr_length(self):
        with pytest.raises(ValueError, match="m\\+1"):
            CsrMatrix(
                values=np.asarray([1.0]),
                col_index=np.asarray([0]),
                row_ptr=np.asarray([0, 1]),
                shape=(2, 2),
            )

    def test_invalid_row_ptr_monotonic(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix(
                values=np.asarray([1.0, 2.0]),
                col_index=np.asarray([0, 1]),
                row_ptr=np.asarray([0, 2, 1, 2]),
                shape=(3, 2),
            )

    def test_col_index_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CsrMatrix(
                values=np.asarray([1.0]),
                col_index=np.asarray([5]),
                row_ptr=np.asarray([0, 1]),
                shape=(1, 2),
            )


class TestStructure:
    def test_active_rows_cols(self):
        dense = np.zeros((4, 4))
        dense[1, 2] = 1.0
        dense[3, 2] = 2.0
        csr = CsrMatrix.from_dense(dense)
        assert csr.active_rows().tolist() == [1, 3]
        assert csr.active_cols().tolist() == [2]

    def test_row_access(self):
        dense = np.zeros((2, 3))
        dense[1] = [0.0, 5.0, 7.0]
        csr = CsrMatrix.from_dense(dense)
        cols, vals = csr.row(1)
        assert cols.tolist() == [1, 2]
        assert vals.tolist() == [5.0, 7.0]


class TestMatmul:
    def test_matches_dense_product(self, rng):
        dense = random_sparse(20, 15, 0.1, seed=1)
        b = rng.normal(size=(15, 6))
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.matmul(b), dense @ b, atol=1e-12)

    def test_shape_mismatch(self, rng):
        csr = CsrMatrix.from_dense(random_sparse(4, 5, 0.5))
        with pytest.raises(ValueError, match="expected k"):
            csr.matmul(rng.normal(size=(4, 2)))

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 12), st.integers(1, 12)),
            elements=st.floats(-10, 10, allow_nan=False).map(
                lambda v: 0.0 if abs(v) < 5 else v  # ~ sparse
            ),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, dense):
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)
        assert csr.nnz == np.count_nonzero(dense)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 10), st.integers(1, 10)),
            elements=st.floats(-10, 10, allow_nan=False).map(
                lambda v: 0.0 if abs(v) < 5 else v  # ~ sparse
            ),
        ),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_fast_path_bit_identical_to_reference(self, dense, n_cols, seed):
        """The vectorized SpMM must reproduce Algorithm 1 bit for bit.

        Both paths accumulate each output element over the stored
        non-zeros in ascending storage order, so this is exact array
        equality — not allclose.
        """
        csr = CsrMatrix.from_dense(dense)
        b = np.random.default_rng(seed).normal(size=(dense.shape[1], n_cols))
        np.testing.assert_array_equal(csr.matmul(b), csr.matmul_reference(b))

    def test_fast_path_bit_identical_on_first_layer_shape(self, rng):
        """Paper-scale check: a 90%-sparse 400x136 layer at batch 64."""
        csr = CsrMatrix.from_dense(random_sparse(400, 136, 0.1, seed=4))
        b = rng.normal(size=(136, 64))
        np.testing.assert_array_equal(csr.matmul(b), csr.matmul_reference(b))


class TestSplitRows:
    def test_parts_stack_to_original(self):
        dense = random_sparse(10, 6, 0.3, seed=2)
        csr = CsrMatrix.from_dense(dense)
        parts = csr.split_rows(3)
        stacked = np.vstack([p.to_dense() for p in parts])
        np.testing.assert_array_equal(stacked, dense)

    def test_part_products_stack(self, rng):
        dense = random_sparse(9, 5, 0.4, seed=3)
        b = rng.normal(size=(5, 4))
        csr = CsrMatrix.from_dense(dense)
        parts = csr.split_rows(2)
        stacked = np.vstack([p.matmul(b) for p in parts])
        np.testing.assert_allclose(stacked, dense @ b, atol=1e-12)

    def test_single_part_is_copy(self):
        csr = CsrMatrix.from_dense(random_sparse(5, 5, 0.5))
        part = csr.split_rows(1)[0]
        np.testing.assert_array_equal(part.to_dense(), csr.to_dense())

    def test_invalid_parts(self):
        csr = CsrMatrix.from_dense(random_sparse(5, 5, 0.5))
        with pytest.raises(ValueError):
            csr.split_rows(0)
        with pytest.raises(ValueError):
            csr.split_rows(6)
