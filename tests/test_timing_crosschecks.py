"""Cross-model consistency checks between the timing components.

These tests pin the *relationships* the paper's design methodology rests
on: the sparse kernel must beat the dense one exactly in the regime the
paper prunes into, the hybrid network model must interpolate its parts,
and the QuickScorer and network cost models must be mutually consistent
at the published crossover points.
"""

import numpy as np
import pytest

from repro.matmul import CsrMatrix, DenseGemmExecutor, SparseGemmExecutor
from repro.quickscorer import QuickScorerCostModel
from repro.timing import NetworkTimePredictor


@pytest.fixture(scope="module")
def predictor():
    return NetworkTimePredictor()


def pruned(m, k, sparsity, seed=0):
    rng = np.random.default_rng(seed)
    nnz = int(round((1 - sparsity) * m * k))
    dense = np.zeros(m * k)
    dense[rng.choice(m * k, nnz, replace=False)] = rng.normal(size=nnz)
    return CsrMatrix.from_dense(dense.reshape(m, k))


class TestSparseVsDenseCrossover:
    def test_sparse_wins_at_paper_sparsities(self):
        # At >= 95% sparsity the sparse kernel must beat dense GEMM on
        # first-layer shapes (otherwise the paper's pipeline is moot).
        dense_ex = DenseGemmExecutor()
        sparse_ex = SparseGemmExecutor()
        for sparsity in (0.95, 0.987, 0.99):
            a = pruned(400, 136, sparsity)
            t_dense = dense_ex.report(400, 64, 136).time_ns / 1000
            t_sparse = sparse_ex.measure_time_us(a, 64)
            assert t_sparse < t_dense

    def test_dense_wins_at_low_sparsity(self):
        # Near-dense matrices should NOT benefit from the sparse kernel:
        # per-nnz scalar work exceeds vectorized dense FLOPs.
        dense_ex = DenseGemmExecutor()
        sparse_ex = SparseGemmExecutor()
        a = pruned(400, 136, 0.2, seed=1)
        t_dense = dense_ex.report(400, 64, 136).time_ns / 1000
        t_sparse = sparse_ex.measure_time_us(a, 64)
        assert t_sparse > t_dense

    def test_crossover_in_between(self):
        # Somewhere between 20% and 99% sparsity the winner flips exactly
        # once (monotone sparse cost).
        dense_ex = DenseGemmExecutor()
        sparse_ex = SparseGemmExecutor()
        t_dense = dense_ex.report(400, 64, 136).time_ns / 1000
        wins = [
            sparse_ex.measure_time_us(pruned(400, 136, s, seed=2), 64) < t_dense
            for s in (0.2, 0.5, 0.8, 0.9, 0.95, 0.99)
        ]
        # Once sparse starts winning it keeps winning.
        first_win = wins.index(True) if True in wins else len(wins)
        assert all(wins[first_win:])


class TestHybridModelConsistency:
    def test_hybrid_between_forecast_and_dense(self, predictor):
        report = predictor.predict(
            136, (400, 200, 200, 100), first_layer_sparsity=0.987
        )
        assert (
            report.pruned_forecast_us_per_doc
            <= report.hybrid_total_us_per_doc
            <= report.dense_total_us_per_doc
        )

    def test_hybrid_approaches_forecast_at_extreme_sparsity(self, predictor):
        near = predictor.predict(
            136, (400, 200, 200, 100), first_layer_sparsity=0.999
        )
        gap = near.hybrid_total_us_per_doc - near.pruned_forecast_us_per_doc
        assert gap < 0.1 * near.dense_total_us_per_doc

    def test_dense_equals_sum_of_layers(self, predictor):
        report = predictor.predict(136, (300, 200, 100))
        total = sum(lt.time_us for lt in report.layer_times)
        assert report.dense_total_us_per_doc == pytest.approx(
            total / report.batch_size
        )


class TestPaperCrossoverPoints:
    def test_table8_ordering(self, predictor):
        # Sparse flagship < 300-tree forest < dense flagship < 500-tree
        # < 878-tree (the paper's Table 8 time ordering).
        qs = QuickScorerCostModel()
        t878 = qs.scoring_time_us(878, 64)
        t500 = qs.scoring_time_us(500, 64)
        t300 = qs.scoring_time_us(300, 64)
        flagship = predictor.predict(
            136, (400, 200, 200, 100), first_layer_sparsity=0.987
        )
        t_dense = flagship.dense_total_us_per_doc
        t_sparse = flagship.hybrid_total_us_per_doc
        assert t_sparse < t300 < t_dense < t500 < t878

    def test_headline_speedup(self, predictor):
        # "up to 4.4x faster scoring time with no loss of accuracy":
        # the 300x200x100 pruned forecast vs the 878-tree forest.
        qs = QuickScorerCostModel()
        pruned_time = predictor.pruned_forecast_us(136, (300, 200, 100))
        speedup = qs.scoring_time_us(878, 64) / pruned_time
        assert speedup == pytest.approx(4.4, rel=0.25)
