"""Tests for repro.pruning (masks, pruners, sensitivity, pipeline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import PruningError
from repro.nn import FeedForwardNetwork, Linear
from repro.pruning import (
    ColumnBlockPruner,
    FirstLayerPruner,
    FirstLayerPruningConfig,
    LevelPruner,
    ThresholdPruner,
    column_block_mask,
    dynamic_sensitivity,
    level_mask,
    mask_sparsity,
    static_sensitivity,
    threshold_from_sigma,
    threshold_mask,
)
from repro.metrics import mean_ndcg


class TestMasks:
    def test_level_mask_exact_sparsity(self, rng):
        w = rng.normal(size=(20, 10))
        mask = level_mask(w, 0.7)
        assert mask_sparsity(mask) == pytest.approx(0.7)

    def test_level_mask_keeps_largest(self, rng):
        w = rng.normal(size=(10, 10))
        mask = level_mask(w, 0.5)
        kept = np.abs(w[mask == 1.0])
        pruned = np.abs(w[mask == 0.0])
        assert kept.min() >= pruned.max()

    def test_level_mask_zero_sparsity(self, rng):
        mask = level_mask(rng.normal(size=(4, 4)), 0.0)
        np.testing.assert_array_equal(mask, 1.0)

    def test_level_mask_invalid(self):
        with pytest.raises(PruningError):
            level_mask(np.ones((2, 2)), 1.5)

    def test_threshold_from_sigma_gaussian(self, rng):
        w = rng.normal(0, 2.0, size=10000)
        t = threshold_from_sigma(w, 1.0)
        assert t == pytest.approx(2.0, rel=0.05)

    def test_threshold_from_sigma_ignores_zeros(self, rng):
        w = rng.normal(0, 1.0, size=1000)
        w_with_zeros = np.concatenate([w, np.zeros(5000)])
        t = threshold_from_sigma(w_with_zeros, 1.0)
        assert t == pytest.approx(threshold_from_sigma(w, 1.0), rel=1e-9)

    def test_threshold_mask_cut(self):
        w = np.asarray([[0.1, -0.5], [0.9, 0.0]])
        mask = threshold_mask(w, 0.4)
        np.testing.assert_array_equal(mask, [[0.0, 1.0], [1.0, 0.0]])

    @given(
        arrays(np.float64, (8, 8), elements=st.floats(-5, 5, allow_nan=False)),
        st.floats(0.0, 0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_level_mask_sparsity_property(self, w, sparsity):
        mask = level_mask(w, sparsity)
        target = round(sparsity * w.size) / w.size
        assert mask_sparsity(mask) == pytest.approx(target, abs=1e-9)


class TestColumnBlockMask:
    def test_prunes_whole_aligned_groups(self, rng):
        w = rng.normal(size=(16, 32))
        mask = column_block_mask(w, 0.5, block_cols=8)
        for g in range(4):
            group = mask[:, g * 8 : (g + 1) * 8]
            assert group.min() == group.max()  # all kept or all pruned

    def test_never_exceeds_target_sparsity(self, rng):
        w = rng.normal(size=(16, 24))
        for sparsity in (0.3, 0.5, 0.9):
            mask = column_block_mask(w, sparsity, block_cols=8)
            assert mask_sparsity(mask) <= sparsity + 1e-12

    def test_weakest_groups_pruned_first(self):
        w = np.ones((4, 16))
        w[:, 4:8] = 0.01  # weakest aligned group
        mask = column_block_mask(w, 0.25, block_cols=4)
        assert mask[:, 4:8].sum() == 0
        assert mask[:, :4].min() == 1.0

    def test_at_least_one_group_survives(self, rng):
        w = rng.normal(size=(8, 16))
        mask = column_block_mask(w, 1.0, block_cols=8)
        assert mask.sum() > 0

    def test_ragged_last_group(self, rng):
        w = rng.normal(size=(8, 10))  # last group is 2 columns wide
        mask = column_block_mask(w, 0.5, block_cols=4)
        assert mask.shape == (8, 10)
        for lo, hi in ((0, 4), (4, 8), (8, 10)):
            group = mask[:, lo:hi]
            assert group.min() == group.max()

    def test_deterministic_tie_break(self):
        w = np.ones((4, 16))
        first = column_block_mask(w, 0.5, block_cols=4)
        second = column_block_mask(w, 0.5, block_cols=4)
        np.testing.assert_array_equal(first, second)

    def test_invalid_args(self):
        with pytest.raises(PruningError, match="sparsity"):
            column_block_mask(np.ones((4, 4)), 1.5)
        with pytest.raises(PruningError, match="block_cols"):
            column_block_mask(np.ones((4, 4)), 0.5, block_cols=0)
        with pytest.raises(PruningError, match="2-d"):
            column_block_mask(np.ones(4), 0.5)


class TestColumnBlockPruner:
    def test_survivors_regroup_to_full_tiles(self, rng):
        from repro.matmul import BlockCsrMatrix, CsrMatrix, regroup_to_blocks

        layer = Linear(64, 64, seed=2)
        ColumnBlockPruner(0.75, block_cols=8).apply(layer)
        pruned = layer.weight.data * layer.mask
        blocked = regroup_to_blocks(
            CsrMatrix.from_dense(pruned), (64, 8), min_fill=0.5
        )
        assert isinstance(blocked, BlockCsrMatrix)
        assert blocked.fill > 0.95

    def test_cumulative_never_revives(self, rng):
        layer = Linear(32, 32, seed=1)
        pruner = ColumnBlockPruner(0.8, block_cols=8)
        pruner.apply(layer, fraction_of_target=0.5)
        dead = layer.mask == 0
        pruner.apply(layer, fraction_of_target=1.0)
        assert np.all(layer.mask[dead] == 0)

    def test_returns_achieved_sparsity(self):
        layer = Linear(16, 16, seed=0)
        achieved = ColumnBlockPruner(0.5, block_cols=4).apply(layer)
        assert achieved == pytest.approx(layer.sparsity())
        assert achieved <= 0.5 + 1e-12

    def test_invalid_args(self):
        with pytest.raises(PruningError, match="target_sparsity"):
            ColumnBlockPruner(1.0)
        with pytest.raises(PruningError, match="block_cols"):
            ColumnBlockPruner(0.5, block_cols=0)
        with pytest.raises(PruningError, match="fraction_of_target"):
            ColumnBlockPruner(0.5).apply(Linear(4, 4, seed=0), 0.0)


class TestLevelPruner:
    def test_prunes_to_target(self, rng):
        layer = Linear(16, 16, seed=0)
        LevelPruner(0.8).apply(layer)
        assert layer.sparsity() == pytest.approx(0.8, abs=0.01)

    def test_gradual_schedule(self, rng):
        layer = Linear(16, 16, seed=0)
        pruner = LevelPruner(0.9)
        s1 = pruner.apply(layer, fraction_of_target=0.5)
        s2 = pruner.apply(layer, fraction_of_target=1.0)
        assert s1 == pytest.approx(0.45, abs=0.01)
        assert s2 == pytest.approx(0.9, abs=0.01)

    def test_cumulative_never_revives(self, rng):
        layer = Linear(10, 10, seed=0)
        pruner = LevelPruner(0.5)
        pruner.apply(layer)
        dead = layer.mask == 0.0
        layer.weight.data[:] = 1.0  # would all survive a fresh cut
        pruner.apply(layer)
        assert (layer.mask[dead] == 0.0).all()

    def test_invalid_target(self):
        with pytest.raises(PruningError):
            LevelPruner(1.0)

    def test_invalid_fraction(self):
        with pytest.raises(PruningError):
            LevelPruner(0.5).apply(Linear(4, 4, seed=0), fraction_of_target=0.0)


class TestThresholdPruner:
    def test_threshold_fixed_after_first_apply(self, rng):
        layer = Linear(32, 32, seed=0)
        pruner = ThresholdPruner(1.0)
        pruner.apply(layer)
        first_threshold = pruner.threshold_
        layer.weight.data *= 0.5  # fine-tuning shrinks weights
        layer.apply_mask()
        pruner.apply(layer)
        assert pruner.threshold_ == first_threshold

    def test_sparsity_ratchets_up(self, rng):
        layer = Linear(32, 32, seed=0)
        pruner = ThresholdPruner(1.0)
        s1 = pruner.apply(layer)
        layer.weight.data *= 0.5
        layer.apply_mask()
        s2 = pruner.apply(layer)
        assert s2 >= s1

    def test_sigma_one_prunes_about_68pct(self, rng):
        layer = Linear(64, 64, seed=0)
        pruner = ThresholdPruner(1.0)
        s = pruner.apply(layer)
        # Uniform init is not Gaussian; the pruned mass for |w| < sigma
        # of a uniform distribution is sigma/sqrt(3)/bound ~ 58%.
        assert 0.4 < s < 0.8

    def test_expected_one_step_sparsity_gaussian(self):
        pruner = ThresholdPruner(1.0)
        assert pruner.expected_one_step_sparsity(
            Linear(4, 4, seed=0)
        ) == pytest.approx(0.6827, abs=1e-3)

    def test_invalid_sensitivity(self):
        with pytest.raises(PruningError):
            ThresholdPruner(0.0)


class TestSensitivity:
    def _eval_fn(self, test_split):
        def eval_fn(student):
            return mean_ndcg(test_split, student.predict(test_split.features), 10)

        return eval_fn

    def test_static_structure(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        result = static_sensitivity(
            small_student,
            self._eval_fn(test),
            sparsities=(0.0, 0.5, 0.95),
        )
        assert set(result.curves) == {0, 1}  # head never pruned
        assert all(len(c) == 3 for c in result.curves.values())
        assert np.isfinite(result.baseline)

    def test_static_zero_sparsity_is_baseline(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        result = static_sensitivity(
            small_student, self._eval_fn(test), sparsities=(0.0,)
        )
        for curve in result.curves.values():
            assert curve[0] == pytest.approx(result.baseline)

    def test_static_extreme_sparsity_hurts(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        result = static_sensitivity(
            small_student, self._eval_fn(test), sparsities=(0.0, 0.999), layers=[0]
        )
        assert result.curves[0][1] <= result.curves[0][0] + 0.02

    def test_original_student_untouched(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        before = small_student.predict(test.features[:5])
        static_sensitivity(
            small_student, self._eval_fn(test), sparsities=(0.9,), layers=[0]
        )
        np.testing.assert_array_equal(
            small_student.predict(test.features[:5]), before
        )

    def test_dynamic_calls_finetune(self, small_student, tiny_splits):
        _, _, test = tiny_splits
        calls = []

        def finetune(student):
            calls.append(student)

        result = dynamic_sensitivity(
            small_student,
            self._eval_fn(test),
            finetune,
            sparsities=(0.0, 0.8),
            layers=[0],
        )
        assert len(calls) == 1  # only the non-zero sparsity point
        assert 0 in result.curves

    def test_result_helpers(self):
        from repro.pruning import SensitivityResult

        result = SensitivityResult(sparsities=(0.0, 0.9))
        result.curves = {0: [0.7, 0.3], 1: [0.7, 0.6]}
        assert result.most_sensitive_layer() == 0
        assert result.most_robust_layer() == 1
        assert result.layer_curve(1) == [(0.0, 0.7), (0.9, 0.6)]


class TestFirstLayerPipeline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FirstLayerPruningConfig(sensitivity=0.0)
        with pytest.raises(ValueError):
            FirstLayerPruningConfig(epochs_prune=0)

    def test_prune_reaches_high_sparsity(
        self, small_student, small_forest, tiny_splits
    ):
        config = FirstLayerPruningConfig(
            sensitivity=2.0,
            epochs_prune=4,
            epochs_finetune=2,
            steps_per_epoch=10,
            lr_milestones=(),
        )
        pruner = FirstLayerPruner(config, seed=0)
        pruned = pruner.prune(small_student, small_forest, tiny_splits[0])
        assert pruned.first_layer_sparsity() > 0.9
        assert pruner.final_sparsity == pytest.approx(
            pruned.first_layer_sparsity()
        )

    def test_only_first_layer_sparsified(
        self, small_student, small_forest, tiny_splits
    ):
        config = FirstLayerPruningConfig(
            sensitivity=2.0, epochs_prune=2, epochs_finetune=1,
            steps_per_epoch=5, lr_milestones=(),
        )
        pruned = FirstLayerPruner(config, seed=0).prune(
            small_student, small_forest, tiny_splits[0]
        )
        sparsities = pruned.layer_sparsities()
        assert sparsities[0] > 0.5
        assert all(s < 0.1 for s in sparsities[1:])

    def test_input_student_untouched(
        self, small_student, small_forest, tiny_splits
    ):
        config = FirstLayerPruningConfig(
            sensitivity=2.0, epochs_prune=2, epochs_finetune=0,
            steps_per_epoch=5, lr_milestones=(),
        )
        before = small_student.first_layer_sparsity()
        FirstLayerPruner(config, seed=0).prune(
            small_student, small_forest, tiny_splits[0]
        )
        assert small_student.first_layer_sparsity() == before

    def test_trace_recorded(self, small_student, small_forest, tiny_splits):
        config = FirstLayerPruningConfig(
            sensitivity=2.0, epochs_prune=3, epochs_finetune=2,
            steps_per_epoch=5, lr_milestones=(),
        )
        pruner = FirstLayerPruner(config, seed=0)
        pruner.prune(small_student, small_forest, tiny_splits[0])
        trace = pruner.trace_
        assert len(trace.sparsity) == 5
        # Cumulative masks: sparsity never decreases.
        assert all(
            b >= a - 1e-12 for a, b in zip(trace.sparsity, trace.sparsity[1:])
        )

    def test_final_sparsity_before_run_raises(self):
        with pytest.raises(RuntimeError):
            FirstLayerPruner().final_sparsity
