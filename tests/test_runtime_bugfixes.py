"""Regression tests for the three admission/execution bugfixes.

* a NaN-priced scorer must not pass a finite budget check
  (``nan > budget`` is ``False``, so the old code admitted it);
* zero-document requests are legal no-ops instead of ``ValueError``;
* ``top_k(x, k)`` equals ``rank(x)[:k]`` bit for bit under tied scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    BatchEngine,
    BudgetExceededError,
    ServiceStats,
    StubScorer,
)
from repro.serving import ScoringService, ServiceConfig


class PricedStub(StubScorer):
    """A stub whose predicted price is directly controllable."""

    def __init__(self, price, **kwargs):
        super().__init__(**kwargs)
        self._forced_price = price

    @property
    def predicted_us_per_doc(self):
        return self._forced_price


class TestNanPriceAdmission:
    def test_nan_price_rejected_under_finite_budget(self):
        with pytest.raises(BudgetExceededError, match="non-finite"):
            BatchEngine(PricedStub(float("nan")), budget_us_per_doc=10.0)

    def test_inf_price_rejected_under_finite_budget(self):
        with pytest.raises(BudgetExceededError, match="non-finite"):
            BatchEngine(PricedStub(float("inf")), budget_us_per_doc=10.0)

    def test_allow_unpriced_is_an_explicit_escape_hatch(self):
        engine = BatchEngine(
            PricedStub(float("nan")),
            budget_us_per_doc=10.0,
            allow_unpriced=True,
        )
        assert engine.allow_unpriced is True

    def test_nan_price_fine_without_budget(self):
        engine = BatchEngine(PricedStub(float("nan")))
        assert np.isnan(engine.stats.predicted_us_per_doc)

    def test_finite_price_still_checked(self):
        with pytest.raises(BudgetExceededError):
            BatchEngine(PricedStub(50.0), budget_us_per_doc=10.0)
        BatchEngine(PricedStub(5.0), budget_us_per_doc=10.0)

    @pytest.mark.parametrize("budget", [float("nan"), float("inf"), 0.0, -1.0])
    def test_budget_itself_must_be_finite_positive(self, budget):
        with pytest.raises(ValueError, match="budget_us_per_doc"):
            BatchEngine(PricedStub(5.0), budget_us_per_doc=budget)

    def test_service_forwards_allow_unpriced(self):
        with pytest.raises(BudgetExceededError):
            ScoringService(PricedStub(float("nan")), budget_us_per_doc=10.0)
        service = ScoringService(
            PricedStub(float("nan")),
            ServiceConfig(budget_us_per_doc=10.0, allow_unpriced=True),
        )
        assert service.budget_us_per_doc == 10.0


class TestZeroDocumentRequests:
    def test_engine_score_empty(self):
        engine = BatchEngine(StubScorer(weights=[1.0, 2.0]))
        scores = engine.score(np.empty((0, 2)))
        assert scores.shape == (0,)
        assert scores.dtype == np.float64

    def test_empty_request_does_not_touch_stats(self):
        engine = BatchEngine(StubScorer(weights=[1.0, 2.0]))
        engine.score(np.empty((0, 2)))
        assert engine.stats.requests == 0
        assert engine.stats.documents == 0
        assert engine.stats.wall_seconds == 0.0

    def test_rank_and_top_k_empty(self):
        engine = BatchEngine(StubScorer(weights=[1.0]))
        assert engine.rank(np.empty((0, 1))).shape == (0,)
        assert engine.top_k(np.empty((0, 1)), 3).shape == (0,)

    def test_service_empty_request(self, small_forest):
        service = ScoringService(small_forest)
        scores = service.score(np.empty((0, small_forest.n_features)))
        assert scores.shape == (0,)
        assert service.stats.requests == 0

    def test_stats_still_reject_zero_docs_directly(self):
        stats = ServiceStats()
        with pytest.raises(Exception, match="at least one document"):
            stats.record(0, 0.001)

    def test_non_2d_still_rejected(self):
        engine = BatchEngine(StubScorer(weights=[1.0]))
        with pytest.raises(ValueError, match="2-dimensional"):
            engine.score(np.zeros(3))


class TestTopKTieOrder:
    def engine(self):
        return BatchEngine(StubScorer(weights=[1.0]))

    def test_boundary_ties_resolve_to_lowest_index(self):
        # scores [1, 0, 1, 1, 0]: a 2-of-3 tie straddles the k=2 cut.
        x = np.array([[1.0], [0.0], [1.0], [1.0], [0.0]])
        engine = self.engine()
        assert engine.top_k(x, 2).tolist() == [0, 2]
        assert engine.top_k(x, 1).tolist() == [0]
        assert engine.top_k(x, 4).tolist() == [0, 2, 3, 1]

    def test_all_tied(self):
        x = np.ones((6, 1))
        engine = self.engine()
        for k in range(1, 7):
            assert engine.top_k(x, k).tolist() == list(range(k))

    @given(
        scores=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=40
        ),
        k=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_top_k_equals_rank_prefix(self, scores, k):
        """The satellite guarantee: top_k(x, k) == rank(x)[:k] always."""
        x = np.asarray(scores, dtype=np.float64).reshape(-1, 1)
        engine = self.engine()
        k = min(k, len(scores))
        np.testing.assert_array_equal(
            engine.top_k(x, k), engine.rank(x)[:k]
        )
