"""Tests for repro.matmul.dense (Goto executor + simulated timing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matmul import DenseGemmExecutor
from repro.matmul.dense import DenseTimingModel


@pytest.fixture(scope="module")
def executor():
    return DenseGemmExecutor()


class TestNumericalCorrectness:
    @pytest.mark.parametrize(
        "m,k,n",
        [(3, 4, 5), (24, 192, 384), (100, 200, 50), (385, 193, 400), (1, 1, 1)],
    )
    def test_matches_numpy(self, executor, m, k, n, rng):
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        c, _ = executor.multiply(a, b)
        np.testing.assert_allclose(c, a @ b, atol=1e-10 * k)

    def test_blocking_crosses_all_partitions(self, executor, rng):
        # Dimensions straddling n_c / k_c / micro tiles.
        a = rng.normal(size=(50, 400))
        b = rng.normal(size=(400, 800))
        c, _ = executor.multiply(a, b)
        np.testing.assert_allclose(c, a @ b, atol=1e-8)

    def test_inner_dim_mismatch(self, executor, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            executor.multiply(rng.normal(size=(3, 4)), rng.normal(size=(5, 2)))

    def test_compute_false_skips_numerics(self, executor, rng):
        c, report = executor.multiply(
            rng.normal(size=(10, 10)), rng.normal(size=(10, 10)), compute=False
        )
        assert c is None
        assert report.time_ns > 0

    @given(
        st.integers(1, 40), st.integers(1, 40), st.integers(1, 40),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_small_shapes(self, m, k, n):
        rng = np.random.default_rng(m * 10000 + k * 100 + n)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        c, _ = DenseGemmExecutor().multiply(a, b)
        np.testing.assert_allclose(c, a @ b, atol=1e-9)


class TestSimulatedPerformance:
    """The simulated GFLOPS surface must reproduce the paper's zones."""

    def test_three_k_zones_at_n_1000(self, executor):
        # Fig. 6: ~90 below k=128, ~110 in 128..512, ~130 above 512.
        low = executor.measure_gflops(1000, 1000, 64)
        mid = executor.measure_gflops(1000, 1000, 256)
        high = executor.measure_gflops(1000, 1000, 1024)
        assert low == pytest.approx(90.0, rel=0.10)
        assert mid == pytest.approx(110.0, rel=0.10)
        assert high == pytest.approx(130.0, rel=0.10)

    def test_gflops_grow_with_m_and_k(self, executor):
        # Fig. 4: throughput grows as m = k grows.
        values = [executor.measure_gflops(s, 1000, s) for s in (32, 128, 512, 1024)]
        assert values == sorted(values)

    def test_constant_mk_small_k_worse(self, executor):
        # Fig. 5: with m*k constant, small k + large m degrades while
        # small m + large k stays fast.
        small_m_large_k = executor.measure_gflops(100, 1000, 3000)
        large_m_small_k = executor.measure_gflops(3000, 1000, 100)
        assert small_m_large_k > large_m_small_k

    def test_gflops_grow_with_batch(self, executor):
        values = [executor.measure_gflops(500, n, 500) for n in (16, 64, 256, 1000)]
        assert values == sorted(values)

    def test_time_scales_linearly_in_batch_at_scale(self, executor):
        t1 = executor.report(500, 1000, 500).time_ns
        t2 = executor.report(500, 2000, 500).time_ns
        assert t2 == pytest.approx(2 * t1, rel=0.1)

    def test_tiny_m_pays_rounding_waste(self, executor):
        # m = 4 rounds up to the 24-row micro-tile: ~6x wasted FLOPs.
        eff = executor.report(4, 1000, 512)
        assert eff.effective_flops >= 5 * eff.flops

    def test_nopack_path_on_tiny_shapes(self, executor):
        report = executor.report(4, 1, 4)
        assert not report.packed
        assert report.pack_a_bytes == 0

    def test_pack_path_on_large_shapes(self, executor):
        report = executor.report(500, 500, 500)
        assert report.packed
        assert report.pack_a_bytes > 0
        assert report.pack_b_bytes > 0

    def test_report_validates_dimensions(self, executor):
        with pytest.raises(ValueError):
            executor.report(0, 1, 1)

    def test_gflops_definition(self, executor):
        rep = executor.report(100, 100, 100)
        assert rep.gflops == pytest.approx(rep.flops / rep.time_ns)
        assert rep.time_us == pytest.approx(rep.time_ns / 1000)


class TestTimingModel:
    def test_micro_efficiency_monotone_in_k(self):
        t = DenseTimingModel()
        effs = [t.micro_efficiency(k) for k in (16, 64, 256, 1024)]
        assert effs == sorted(effs)
        assert all(0 < e <= 1 for e in effs)

    def test_micro_efficiency_invalid_k(self):
        with pytest.raises(ValueError):
            DenseTimingModel().micro_efficiency(0)
